//! Implementation of the `graphz` command-line tool.
//!
//! The grammar is *declarative*: every subcommand is one [`CommandSpec`] row
//! in [`COMMANDS`] — name, aliases, positionals, flags (spelling, value
//! placeholder, help text). [`parse`] walks the table, so unknown flags are
//! rejected with the subcommand's own flag list, `graphz <cmd> --help` (and
//! `graphz help <cmd>`) render per-subcommand help, and the top-level usage
//! text is generated from the same rows it validates against.
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy keeps
//! clap out of the runtime tree).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_algos::runner;
use graphz_algos::{AlgoParams, Algorithm, AlgoValues};
use graphz_io::IoStats;
use graphz_serve::GraphView;
use graphz_storage::{DosGraph, EdgeListFile, IngestPipeline};
use graphz_types::{EngineOptions, GraphError, IoCtx, MemoryBudget, Result};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Generate { out: PathBuf, scale: u32, edges: u64, seed: u64 },
    Import { text: PathBuf, out: PathBuf, ingest_threads: usize },
    Convert {
        edges: PathBuf,
        dos_dir: PathBuf,
        budget_mib: u64,
        weighted: bool,
        ingest_threads: usize,
        max_bad_records: Option<u64>,
        resume: bool,
    },
    Info { path: PathBuf },
    Verify { dos_dir: PathBuf },
    Stats { path: PathBuf },
    Islands { dos_dir: PathBuf, emit: bool },
    Export { dos_dir: PathBuf, format: String, out: Option<PathBuf>, original: bool },
    Serve {
        dos_dir: PathBuf,
        addr: String,
        threads: usize,
        checkpoint_dir: Option<PathBuf>,
        generation: Option<u32>,
        max_conns: Option<u64>,
        port_file: Option<PathBuf>,
    },
    Run {
        algo: Algorithm,
        dos_dir: PathBuf,
        budget_mib: u64,
        source: u32,
        iterations: u32,
        top: usize,
        checkpoint_dir: Option<PathBuf>,
        checkpoint_every: u32,
        resume: bool,
        threads: usize,
        prefetch: bool,
        verbose: bool,
    },
    Help,
    /// Per-subcommand help (`graphz <cmd> --help`, `graphz help <cmd>`).
    HelpFor(String),
}

/// Default for `--threads`: every core the OS reports.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One flag a subcommand accepts: its spelling, the placeholder for its
/// value (`None` = boolean switch), and one help line.
pub struct FlagSpec {
    pub name: &'static str,
    pub value: Option<&'static str>,
    pub help: &'static str,
}

/// One subcommand: everything [`parse`] validates against and everything
/// the help text is rendered from.
pub struct CommandSpec {
    pub name: &'static str,
    pub aliases: &'static [&'static str],
    pub positionals: &'static [&'static str],
    pub flags: &'static [FlagSpec],
    pub summary: &'static str,
    /// Extra paragraphs for the per-subcommand help page.
    pub details: &'static str,
}

/// The whole grammar, one row per subcommand.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        aliases: &[],
        positionals: &["<out.bin>"],
        flags: &[
            FlagSpec { name: "--scale", value: Some("N"), help: "log2 of the vertex count (default 14)" },
            FlagSpec { name: "--edges", value: Some("M"), help: "number of edges (default 100000)" },
            FlagSpec { name: "--seed", value: Some("S"), help: "R-MAT seed (default 42)" },
        ],
        summary: "emit a deterministic R-MAT edge list",
        details: "",
    },
    CommandSpec {
        name: "import",
        aliases: &[],
        positionals: &["<edges.txt | matrix.mtx>", "<out.bin>"],
        flags: &[FlagSpec {
            name: "--ingest-threads",
            value: Some("N"),
            help: "parallel text-parse workers; output is byte-identical \
                   for every N (default 1)",
        }],
        summary: "convert SNAP-style text or Matrix Market to a binary edge list",
        details: "",
    },
    CommandSpec {
        name: "convert",
        aliases: &[],
        positionals: &["<edges.bin | edges.txt>", "<dos-dir>"],
        flags: &[
            FlagSpec { name: "--budget-mib", value: Some("B"), help: "sort memory budget in MiB (default 8)" },
            FlagSpec { name: "--weighted", value: None, help: "also emit weights.bin (deterministic per-edge weights)" },
            FlagSpec {
                name: "--ingest-threads",
                value: Some("N"),
                help: "parse workers and sort-run producers; the DOS \
                       directory is byte-identical for every N (default 1)",
            },
            FlagSpec {
                name: "--max-bad-records",
                value: Some("N"),
                help: "tolerate up to N malformed text lines, quarantining \
                       them to quarantine.txt (default: any bad line aborts)",
            },
            FlagSpec {
                name: "--resume",
                value: None,
                help: "reuse completed stages from a previous interrupted \
                       run's scratch directory",
            },
        ],
        summary: "build degree-ordered storage (detects text vs binary input)",
        details: "Ingest parallelism: --ingest-threads shards text parsing into fixed\n\
                  byte chunks and external-sort run formation across N producers. The\n\
                  plan depends only on the input size and budget — never on thread\n\
                  timing — so the produced directory is byte-identical for every N.\n\
                  \n\
                  Fault tolerance: each pipeline stage commits a checksummed manifest\n\
                  into a <dos-dir>.scratch directory; --resume skips stages whose\n\
                  manifests verify and restarts at the first incomplete one, producing\n\
                  a byte-identical directory. --max-bad-records N diverts up to N\n\
                  malformed text lines into <dos-dir>/quarantine.txt instead of\n\
                  aborting the import.",
    },
    CommandSpec {
        name: "info",
        aliases: &[],
        positionals: &["<dos-dir | edges.bin>"],
        flags: &[],
        summary: "print metadata and index sizes",
        details: "",
    },
    CommandSpec {
        name: "verify",
        aliases: &[],
        positionals: &["<dos-dir>"],
        flags: &[],
        summary: "check structural invariants and data-file checksums",
        details: "",
    },
    CommandSpec {
        name: "stats",
        aliases: &[],
        positionals: &["<edges.bin | dos-dir>"],
        flags: &[],
        summary: "degree distribution and unique-degree analysis (paper \u{a7}III-D)",
        details: "Accepts either a raw edge list (full degree histogram from one\n\
                  sequential scan) or a converted DOS directory, where the same\n\
                  numbers come straight from the in-memory degree-group index via\n\
                  the GraphView read API — no edge scan at all.",
    },
    CommandSpec {
        name: "islands",
        aliases: &[],
        positionals: &["<dos-dir>"],
        flags: &[FlagSpec {
            name: "--emit",
            value: None,
            help: "also print one `storage-id component-label` line per vertex",
        }],
        summary: "weakly-connected components from one sequential edge scan",
        details: "Components are labeled by their smallest storage id, so output is\n\
                  stable across runs. Uses the GraphView scan tier (union-find over\n\
                  edges.bin in storage order).",
    },
    CommandSpec {
        name: "export",
        aliases: &[],
        positionals: &["<dos-dir>"],
        flags: &[
            FlagSpec { name: "--format", value: Some("F"), help: "output format; only `dot` today (default dot)" },
            FlagSpec { name: "--out", value: Some("FILE"), help: "write to FILE instead of stdout" },
            FlagSpec {
                name: "--original",
                value: None,
                help: "emit original vertex ids (loads the new2old map) instead of storage ids",
            },
        ],
        summary: "stream the graph as Graphviz DOT",
        details: "",
    },
    CommandSpec {
        name: "serve",
        aliases: &[],
        positionals: &["<dos-dir>"],
        flags: &[
            FlagSpec { name: "--addr", value: Some("A"), help: "listen address (default 127.0.0.1:0 = OS-assigned port)" },
            FlagSpec { name: "--threads", value: Some("N"), help: "reader threads, each with its own GraphView (default 4)" },
            FlagSpec { name: "--checkpoint-dir", value: Some("D"), help: "pin a checkpoint snapshot from D (enables value queries)" },
            FlagSpec { name: "--generation", value: Some("G"), help: "pin generation G instead of the newest usable one" },
            FlagSpec { name: "--max-conns", value: Some("N"), help: "exit after serving N connections (scripted sessions)" },
            FlagSpec { name: "--port-file", value: Some("FILE"), help: "write the bound address to FILE once listening" },
        ],
        summary: "serve point queries over a live DOS image (line protocol over TCP)",
        details: "Requests are single lines: ping, stats, snapshot, degree <v>,\n\
                  neighbors <v>, khop <v> <k>, value <v>, resolve <orig>,\n\
                  original <storage>, quit. Responses are one `OK ...` or\n\
                  `ERR <kind> ...` line each. All ids are storage ids except\n\
                  resolve's argument; `value` returns the pinned checkpoint's raw\n\
                  record in hex plus u32/f32 readings of its first word.\n\
                  \n\
                  Isolation: the snapshot is pinned (manifest + CRC verified, loaded\n\
                  into memory) before the listener accepts anything, so every\n\
                  connection sees one generation; a concurrent `run --checkpoint-dir`\n\
                  writer is never observed mid-write (DESIGN.md \u{a7}6l).",
    },
    CommandSpec {
        name: "run",
        aliases: &[],
        positionals: &["<pr|bfs|cc|sssp|bp|rw>", "<dos-dir>"],
        flags: &[
            FlagSpec { name: "--budget-mib", value: Some("B"), help: "partition memory budget in MiB (default 8)" },
            FlagSpec { name: "--source", value: Some("V"), help: "source vertex for bfs/sssp/rw (default 0)" },
            FlagSpec { name: "--iterations", value: Some("N"), help: "iteration cap (default 100)" },
            FlagSpec { name: "--top", value: Some("K"), help: "result rows to print (default 10)" },
            FlagSpec { name: "--checkpoint-dir", value: Some("D"), help: "write crash-safe generations under D" },
            FlagSpec { name: "--checkpoint-every", value: Some("N"), help: "iterations per generation (default 1)" },
            FlagSpec { name: "--resume", value: None, help: "continue from the newest valid generation" },
            FlagSpec { name: "--threads", value: Some("N"), help: "worker threads (default: core count)" },
            FlagSpec { name: "--no-prefetch", value: None, help: "disable the background partition loader" },
            FlagSpec { name: "--verbose", value: None, help: "print per-stage wall times and prefetch counters" },
        ],
        summary: "run an algorithm out-of-core and print the top-K vertices",
        details: "Checkpointing: with --checkpoint-dir, a crash-safe generation is written\n\
                  under D after every N completed iterations (default 1); --resume continues\n\
                  from the newest valid generation, skipping any damaged by a crash.\n\
                  \n\
                  Parallelism: --threads defaults to the core count. With N >= 2 the Worker\n\
                  runs a fixed 8-shard schedule per partition, so every N >= 2 produces\n\
                  bit-identical results; --threads 1 is the paper's sequential schedule.\n\
                  --no-prefetch disables the background partition loader (results are\n\
                  identical either way). --verbose prints per-stage wall times and prefetch\n\
                  hit/stall counters.",
    },
];

fn find_command(name: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == name || c.aliases.contains(&name))
}

/// The subcommand names from [`COMMANDS`], comma-separated — shared by every
/// "no such command" error so the list can never drift from the table.
pub fn command_names() -> String {
    COMMANDS.iter().map(|c| c.name).collect::<Vec<_>>().join(", ")
}

/// The top-level usage page, rendered from [`COMMANDS`].
pub fn usage() -> String {
    let mut out = String::from("graphz — out-of-core graph analytics (GraphZ, ICDE'18)\n\nUSAGE:\n");
    for c in COMMANDS {
        let mut line = format!("  graphz {:<9}", c.name);
        for p in c.positionals {
            line.push_str(&format!(" {p}"));
        }
        if !c.flags.is_empty() {
            line.push_str(" [flags]");
        }
        out.push_str(&format!("{line}\n{:21}{}\n", "", c.summary));
    }
    out.push_str("  graphz help [command]\n\n");
    out.push_str("Run `graphz <command> --help` for that command's flags.\n");
    out
}

/// The per-subcommand help page (`graphz <cmd> --help`).
pub fn usage_for(name: &str) -> String {
    let Some(c) = find_command(name) else {
        return usage();
    };
    let mut out = format!("graphz {} — {}\n\nUSAGE:\n  graphz {}", c.name, c.summary, c.name);
    for p in c.positionals {
        out.push_str(&format!(" {p}"));
    }
    if !c.flags.is_empty() {
        out.push_str(" [flags]\n\nFLAGS:\n");
        for f in c.flags {
            let spelled = match f.value {
                Some(v) => format!("{} {v}", f.name),
                None => f.name.to_string(),
            };
            out.push_str(&format!("  {spelled:<22} {}\n", f.help));
        }
    } else {
        out.push('\n');
    }
    if !c.details.is_empty() {
        out.push_str(&format!("\n{}\n", c.details));
    }
    out
}

/// Arguments validated against one [`CommandSpec`]: positionals in order,
/// flag values, switches.
struct ParsedArgs<'a> {
    spec: &'static CommandSpec,
    positionals: Vec<&'a str>,
    values: Vec<(&'static str, &'a str)>,
    switches: Vec<&'static str>,
}

impl<'a> ParsedArgs<'a> {
    /// Walk the tokens left to right, classifying each against the spec.
    /// Unknown flags and surplus positionals are errors naming the command.
    fn collect(spec: &'static CommandSpec, args: &'a [String]) -> Result<Self> {
        let mut parsed = ParsedArgs { spec, positionals: Vec::new(), values: Vec::new(), switches: Vec::new() };
        let mut it = args.iter();
        while let Some(tok) = it.next() {
            if let Some(flag) = spec.flags.iter().find(|f| f.name == tok.as_str()) {
                if flag.value.is_some() {
                    let raw = it.next().ok_or_else(|| {
                        GraphError::InvalidConfig(format!(
                            "flag {} expects a value ({})",
                            flag.name,
                            flag.value.unwrap_or("?")
                        ))
                    })?;
                    parsed.values.push((flag.name, raw.as_str()));
                } else {
                    parsed.switches.push(flag.name);
                }
            } else if tok.starts_with("--") {
                return Err(GraphError::InvalidConfig(format!(
                    "unknown flag `{tok}` for `graphz {}` — see `graphz {} --help`",
                    spec.name, spec.name
                )));
            } else if parsed.positionals.len() < spec.positionals.len() {
                parsed.positionals.push(tok.as_str());
            } else {
                return Err(GraphError::InvalidConfig(format!(
                    "unexpected argument `{tok}` for `graphz {}`",
                    spec.name
                )));
            }
        }
        Ok(parsed)
    }

    fn pos(&self, idx: usize) -> Result<PathBuf> {
        self.positionals.get(idx).map(PathBuf::from).ok_or_else(|| {
            GraphError::InvalidConfig(format!(
                "missing argument: {}",
                self.spec.positionals.get(idx).unwrap_or(&"<arg>")
            ))
        })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        // Last spelling wins, like every getopt descendant.
        self.values.iter().rev().find(|(n, _)| *n == flag).map(|(_, v)| *v)
    }

    fn parse_value<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T> {
        match self.value(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| GraphError::InvalidConfig(format!("bad value for {flag}: `{raw}`"))),
        }
    }

    fn switch(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        return Ok(match args.get(1).and_then(|n| find_command(n)) {
            Some(spec) => Command::HelpFor(spec.name.to_string()),
            None => Command::Help,
        });
    }
    let spec = find_command(cmd).ok_or_else(|| {
        GraphError::InvalidConfig(format!(
            "unknown command `{cmd}` — available: {} (see `graphz help`)",
            command_names()
        ))
    })?;
    let rest = &args[1..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::HelpFor(spec.name.to_string()));
    }
    let p = ParsedArgs::collect(spec, rest)?;
    match spec.name {
        "generate" => Ok(Command::Generate {
            out: p.pos(0)?,
            scale: p.parse_value("--scale", 14)?,
            edges: p.parse_value("--edges", 100_000)?,
            seed: p.parse_value("--seed", 42)?,
        }),
        "import" => Ok(Command::Import {
            text: p.pos(0)?,
            out: p.pos(1)?,
            ingest_threads: p.parse_value("--ingest-threads", 1usize)?.max(1),
        }),
        "convert" => Ok(Command::Convert {
            edges: p.pos(0)?,
            dos_dir: p.pos(1)?,
            budget_mib: p.parse_value("--budget-mib", 8)?,
            weighted: p.switch("--weighted"),
            ingest_threads: p.parse_value("--ingest-threads", 1usize)?.max(1),
            max_bad_records: p
                .value("--max-bad-records")
                .map(|raw| {
                    raw.parse().map_err(|_| {
                        GraphError::InvalidConfig(format!(
                            "bad value for --max-bad-records: `{raw}`"
                        ))
                    })
                })
                .transpose()?,
            resume: p.switch("--resume"),
        }),
        "info" => Ok(Command::Info { path: p.pos(0)? }),
        "verify" => Ok(Command::Verify { dos_dir: p.pos(0)? }),
        "stats" => Ok(Command::Stats { path: p.pos(0)? }),
        "islands" => Ok(Command::Islands { dos_dir: p.pos(0)?, emit: p.switch("--emit") }),
        "export" => {
            let format = p.value("--format").unwrap_or("dot").to_string();
            if format != "dot" {
                return Err(GraphError::InvalidConfig(format!(
                    "unknown export format `{format}` — only `dot` is supported"
                )));
            }
            Ok(Command::Export {
                dos_dir: p.pos(0)?,
                format,
                out: p.value("--out").map(PathBuf::from),
                original: p.switch("--original"),
            })
        }
        "serve" => Ok(Command::Serve {
            dos_dir: p.pos(0)?,
            addr: p.value("--addr").unwrap_or("127.0.0.1:0").to_string(),
            threads: p.parse_value("--threads", 4usize)?.max(1),
            checkpoint_dir: p.value("--checkpoint-dir").map(PathBuf::from),
            generation: p
                .value("--generation")
                .map(|raw| {
                    raw.parse().map_err(|_| {
                        GraphError::InvalidConfig(format!("bad value for --generation: `{raw}`"))
                    })
                })
                .transpose()?,
            max_conns: p
                .value("--max-conns")
                .map(|raw| {
                    raw.parse().map_err(|_| {
                        GraphError::InvalidConfig(format!("bad value for --max-conns: `{raw}`"))
                    })
                })
                .transpose()?,
            port_file: p.value("--port-file").map(PathBuf::from),
        }),
        "run" => {
            let algo_raw = p.pos(0)?;
            let algo = match algo_raw.to_string_lossy().to_lowercase().as_str() {
                "pr" | "pagerank" => Algorithm::PageRank,
                "bfs" => Algorithm::Bfs,
                "cc" => Algorithm::Cc,
                "sssp" => Algorithm::Sssp,
                "bp" => Algorithm::Bp,
                "rw" | "randomwalk" => Algorithm::RandomWalk,
                other => {
                    return Err(GraphError::InvalidConfig(format!("unknown algorithm `{other}`")))
                }
            };
            Ok(Command::Run {
                algo,
                dos_dir: p.pos(1)?,
                budget_mib: p.parse_value("--budget-mib", 8)?,
                source: p.parse_value("--source", 0)?,
                iterations: p.parse_value("--iterations", 100)?,
                top: p.parse_value("--top", 10)?,
                checkpoint_dir: p.value("--checkpoint-dir").map(PathBuf::from),
                checkpoint_every: p.parse_value("--checkpoint-every", 1)?,
                resume: p.switch("--resume"),
                threads: p.parse_value("--threads", default_threads())?.max(1),
                prefetch: !p.switch("--no-prefetch"),
                verbose: p.switch("--verbose"),
            })
        }
        // `COMMANDS` and this match are maintained together; a row without
        // an arm is a bug caught by the exhaustive-table test.
        other => Err(GraphError::InvalidConfig(format!(
            "unimplemented command `{other}` — available: {}",
            command_names()
        ))),
    }
}

/// Execute a parsed command; returns the text to print.
pub fn execute(cmd: Command) -> Result<String> {
    let stats = IoStats::new();
    match cmd {
        Command::Help => Ok(usage()),
        Command::HelpFor(name) => Ok(usage_for(&name)),
        Command::Generate { out, scale, edges, seed } => {
            let el = EdgeListFile::create(
                &out,
                Arc::clone(&stats),
                graphz_gen::rmat_edges(scale, edges, Default::default(), seed),
            )?;
            let m = el.meta();
            Ok(format!(
                "wrote {}: {} vertices, {} edges, {} unique degrees\n",
                out.display(),
                m.num_vertices,
                m.num_edges,
                m.unique_degrees
            ))
        }
        Command::Import { text, out, ingest_threads } => {
            // `.mtx` files go through the Matrix Market reader; anything
            // else is SNAP-style `src dst` text, parsed in parallel byte
            // chunks (byte-identical output for every thread count).
            let el = if text.extension().is_some_and(|e| e == "mtx") {
                EdgeListFile::import_matrix_market(&text, &out, Arc::clone(&stats))?
            } else {
                graphz_storage::import_text_chunked(
                    &text,
                    &out,
                    Arc::clone(&stats),
                    ingest_threads,
                    graphz_storage::chunked::DEFAULT_CHUNK_BYTES,
                )?
            };
            Ok(format!(
                "imported {} edges over {} vertices into {}\n",
                el.meta().num_edges,
                el.meta().num_vertices,
                out.display()
            ))
        }
        Command::Convert {
            edges,
            dos_dir,
            budget_mib,
            weighted,
            ingest_threads,
            max_bad_records,
            resume,
        } => {
            let mut pipeline = IngestPipeline::builder()
                .budget(MemoryBudget::from_mib(budget_mib))
                .stats(Arc::clone(&stats))
                .threads(ingest_threads)
                .resume(resume);
            if weighted {
                // Deterministic weights derived from original endpoint ids.
                pipeline = pipeline.weights(graphz_types::derive_weight);
            }
            if let Some(n) = max_bad_records {
                pipeline = pipeline.max_bad_records(n);
            }
            let dos = pipeline.build()?.run(&edges, &dos_dir)?;
            let quarantine = dos_dir.join("quarantine.txt");
            let quarantined = if quarantine.is_file() {
                format!("quarantined malformed lines listed in {}\n", quarantine.display())
            } else {
                String::new()
            };
            Ok(format!(
                "converted to degree-ordered storage at {}\n\
                 index: {} bytes for {} unique degrees (dense CSR would need {} bytes)\n\
                 {quarantined}",
                dos_dir.display(),
                dos.index().index_bytes(),
                dos.index().unique_degrees(),
                (dos.meta().num_vertices + 1) * 8
            ))
        }
        Command::Info { path } => {
            if path.is_dir() {
                // Read through GraphView, like every other interactive
                // consumer of a converted image.
                let view = GraphView::open(&path, Arc::clone(&stats))?;
                let m = view.graph().meta();
                Ok(format!(
                    "degree-ordered storage at {}\n\
                     vertices: {}\nedges: {}\nunique degrees: {}\nmax degree: {}\n\
                     index bytes: {}\n",
                    path.display(),
                    m.num_vertices,
                    m.num_edges,
                    m.unique_degrees,
                    m.max_degree,
                    view.stats().index_bytes
                ))
            } else {
                let el = EdgeListFile::open(&path)?;
                let m = el.meta();
                Ok(format!(
                    "edge list at {}\nvertices: {}\nedges: {}\nunique degrees: {}\nmax degree: {}\n",
                    path.display(),
                    m.num_vertices,
                    m.num_edges,
                    m.unique_degrees,
                    m.max_degree
                ))
            }
        }
        Command::Verify { dos_dir } => {
            let report = graphz_storage::verify_dos(&dos_dir, Arc::clone(&stats))?;
            if report.is_clean() {
                let checksums = if report.files_checksummed > 0 {
                    format!("{} data files checksum-verified", report.files_checksummed)
                } else {
                    "no checksums.txt sidecar; structural checks only".to_string()
                };
                Ok(format!("{}: OK ({checksums})\n", dos_dir.display()))
            } else {
                let mut out = format!(
                    "{}: {} violation(s)\n",
                    dos_dir.display(),
                    report.violations.len()
                );
                for v in &report.violations {
                    out.push_str(&format!("  {v}\n"));
                }
                Err(GraphError::Corrupt(out))
            }
        }
        Command::Stats { path } => {
            if path.is_dir() {
                // A converted image: everything comes from the degree-group
                // index through the unified GraphView read API.
                let view = GraphView::open(&path, Arc::clone(&stats))?;
                Ok(dos_stats(&view, &path))
            } else {
                let el = EdgeListFile::open(&path)?;
                Ok(degree_stats(&el, &stats)?)
            }
        }
        Command::Islands { dos_dir, emit } => {
            let view = GraphView::open(&dos_dir, Arc::clone(&stats))?;
            let islands = view.islands()?;
            let mut out = format!(
                "{}: {} component(s), largest {} vertices, {} isolated\n",
                dos_dir.display(),
                islands.components(),
                islands.largest(),
                islands.isolated()
            );
            if emit {
                for (v, label) in islands.labels().iter().enumerate() {
                    out.push_str(&format!("{v} {label}\n"));
                }
            }
            Ok(out)
        }
        Command::Export { dos_dir, format: _, out, original } => {
            let view = GraphView::open(&dos_dir, Arc::clone(&stats))?;
            let mut buf = Vec::new();
            let edges = view.export_dot(&mut buf, original)?;
            let rendered = String::from_utf8(buf)
                .map_err(|_| GraphError::Corrupt("export produced non-UTF-8 output".into()))?;
            match out {
                Some(file) => {
                    std::fs::write(&file, rendered).ctx("write", &file)?;
                    Ok(format!("wrote {} edges as dot to {}\n", edges, file.display()))
                }
                None => Ok(rendered),
            }
        }
        Command::Serve { dos_dir, addr, threads, checkpoint_dir, generation, max_conns, port_file } => {
            let mut builder = graphz_serve::ServeOptions::builder(&dos_dir)
                .addr(&addr)
                .threads(threads)
                .stats(Arc::clone(&stats));
            if let Some(dir) = &checkpoint_dir {
                builder = builder.checkpoint_dir(dir);
            }
            if let Some(g) = generation {
                builder = builder.generation(g);
            }
            if let Some(n) = max_conns {
                builder = builder.max_conns(n);
            }
            let server = graphz_serve::Server::start(builder.build()?)?;
            let bound = server.addr();
            if let Some(file) = &port_file {
                std::fs::write(file, format!("{bound}\n")).map_err(GraphError::Io)?;
            }
            // Status goes to stderr immediately — the returned string is only
            // printed after the server exits.
            eprintln!("graphz serve: listening on {bound} ({threads} reader threads)");
            let served = server.wait()?;
            Ok(format!("served {served} connection(s) on {bound}\n"))
        }
        Command::Run {
            algo,
            dos_dir,
            budget_mib,
            source,
            iterations,
            top,
            checkpoint_dir,
            checkpoint_every,
            resume,
            threads,
            prefetch,
            verbose,
        } => {
            let dos = DosGraph::open(&dos_dir, Arc::clone(&stats))?;
            let params = AlgoParams::new(algo)
                .with_source(source)
                .with_max_iterations(iterations);
            let budget = MemoryBudget::from_mib(budget_mib);
            let ckpt = runner::CheckpointSpec {
                dir: checkpoint_dir,
                every: checkpoint_every,
                resume,
            };
            // Any thread count >= 2 executes the same fixed shard schedule,
            // so results depend only on whether workers are parallel at all.
            let mut options = if threads > 1 {
                EngineOptions::with_parallel_workers(threads)
            } else {
                EngineOptions::full()
            };
            options.prefetch = prefetch;
            let outcome = runner::run_graphz_configured(
                &dos,
                &params,
                budget,
                options,
                &ckpt,
                Arc::clone(&stats),
            )?;
            let mut out = format!(
                "{algo} on {}: {} iterations ({}), {} partitions, {} messages\n\
                 io: {} read / {} written / {} seeks, wall {:?}\n",
                dos_dir.display(),
                outcome.iterations,
                if outcome.converged { "converged" } else { "hit iteration cap" },
                outcome.partitions,
                outcome.messages,
                outcome.io.bytes_read,
                outcome.io.bytes_written,
                outcome.io.seeks,
                outcome.wall,
            );
            if verbose {
                if let Some(st) = outcome.stages {
                    out.push_str(&format!(
                        "stage times: load {:?} / replay {:?} / compute {:?} / flush {:?}\n",
                        st.load, st.replay, st.compute, st.flush,
                    ));
                }
                if let Some(pf) = outcome.prefetch {
                    out.push_str(&format!(
                        "prefetch: {} hits / {} stalls / {} wasted\n",
                        pf.hits, pf.stalls, pf.wasted,
                    ));
                }
            }
            out.push_str(&render_top(&outcome.values, top));
            Ok(out)
        }
    }
}

/// The stats page for a converted DOS image: the same §III-D numbers as the
/// edge-list path, but read straight off the degree-group index (one entry
/// per unique degree) through [`GraphView`] — no edge scan at all.
fn dos_stats(view: &GraphView, path: &Path) -> String {
    let st = view.stats();
    let bound = graphz_storage::dos::unique_degree_bound(st.num_edges);
    let mut out = format!(
        "{}\nvertices: {}\nedges: {}\n\
         unique out-degrees: {} (Claim-1 bound 2*sqrt(E) = {})\n\
         max out-degree: {}\nindex bytes: {}\n",
        path.display(),
        st.num_vertices,
        st.num_edges,
        st.unique_degrees,
        bound,
        st.max_degree,
        st.index_bytes,
    );
    // The index *is* the histogram: each group covers the vertices
    // `first_id .. next.first_id`, all with the same degree. Groups are
    // stored by descending degree; print ascending like the edge-list path.
    let groups = view.graph().index().groups();
    let n = st.num_vertices;
    out.push_str("degree histogram (first 10 buckets):\n");
    for (gi, g) in groups.iter().enumerate().rev().take(10) {
        let end = groups.get(gi + 1).map_or(n, |ng| u64::from(ng.first_id));
        let count = end - u64::from(g.first_id);
        out.push_str(&format!("  degree {:>6}: {count} vertices\n", g.degree));
    }
    out
}

/// The §III-D analysis as a tool: degree distribution, unique-degree count
/// against Claim 1's bound, and a rough power-law tail exponent.
fn degree_stats(el: &EdgeListFile, stats: &Arc<IoStats>) -> Result<String> {
    use std::collections::HashMap;
    let meta = el.meta();
    let mut degrees: HashMap<u32, u64> = HashMap::new();
    for e in el.reader(Arc::clone(stats))? {
        *degrees.entry(e?.src).or_default() += 1;
    }
    // Histogram: degree -> number of vertices with that degree.
    let mut histogram: HashMap<u64, u64> = HashMap::new();
    for &d in degrees.values() {
        *histogram.entry(d).or_default() += 1;
    }
    let zero_degree = meta.num_vertices - degrees.len() as u64;
    if zero_degree > 0 {
        histogram.insert(0, zero_degree);
    }
    let bound = graphz_storage::dos::unique_degree_bound(meta.num_edges);
    let mut out = format!(
        "{}
vertices: {}
edges: {}
unique out-degrees: {} (Claim-1 bound 2*sqrt(E) = {})
         max out-degree: {}
zero-out-degree vertices: {}
",
        el.path().display(),
        meta.num_vertices,
        meta.num_edges,
        histogram.len(),
        bound,
        meta.max_degree,
        zero_degree,
    );
    // Least-squares slope of log(count) over log(degree) for degree >= 1 —
    // a quick power-law tail exponent estimate (natural graphs: ~2-3).
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .filter(|&(&d, _)| d >= 1)
        .map(|(&d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() >= 3 {
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        out.push_str(&format!("power-law tail exponent (least squares): {:.2}
", -slope));
    }
    let mut buckets: Vec<(u64, u64)> = histogram.into_iter().collect();
    buckets.sort();
    out.push_str("degree histogram (first 10 buckets):
");
    for (d, c) in buckets.iter().take(10) {
        out.push_str(&format!("  degree {d:>6}: {c} vertices
"));
    }
    Ok(out)
}

/// The `--top K` listing: the K most interesting vertices for the value
/// kind (highest rank/visits, lowest distances, largest components...).
fn render_top(values: &AlgoValues, k: usize) -> String {
    let mut out = String::new();
    match values {
        AlgoValues::Ranks(v) => {
            out.push_str("top vertices by rank:\n");
            for (id, val) in top_by(v, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  {val:.4}\n"));
            }
        }
        AlgoValues::Visits(v) => {
            out.push_str("top vertices by visit mass:\n");
            for (id, val) in top_by(v, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  {val:.4}\n"));
            }
        }
        AlgoValues::Hops(v) => {
            let reached = v.iter().filter(|&&d| d != u32::MAX).count();
            out.push_str(&format!("reached {reached} of {} vertices; nearest:\n", v.len()));
            for (id, val) in
                top_by(&v.iter().map(|&d| d as f64).collect::<Vec<_>>(), k, |a, b| a.total_cmp(b))
            {
                if val == u32::MAX as f64 {
                    break;
                }
                out.push_str(&format!("  {id:>8}  {val:.0} hops\n"));
            }
        }
        AlgoValues::Costs(v) => {
            let reached = v.iter().filter(|d| d.is_finite()).count();
            out.push_str(&format!("reached {reached} of {} vertices; nearest:\n", v.len()));
            for (id, val) in top_by(v, k, |a, b| a.total_cmp(b)) {
                if !val.is_finite() {
                    break;
                }
                out.push_str(&format!("  {id:>8}  {val:.3}\n"));
            }
        }
        AlgoValues::Labels(v) => {
            let mut sizes: std::collections::HashMap<u32, u64> = Default::default();
            for &l in v {
                *sizes.entry(l).or_default() += 1;
            }
            let mut by_size: Vec<(u32, u64)> = sizes.into_iter().collect();
            by_size.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            out.push_str(&format!("{} components; largest:\n", by_size.len()));
            for (label, n) in by_size.into_iter().take(k) {
                out.push_str(&format!("  component {label:>8}: {n} vertices\n"));
            }
        }
        AlgoValues::Beliefs(v) => {
            out.push_str("most state-0-confident vertices:\n");
            let confidences: Vec<f32> = v.iter().map(|b| b[0]).collect();
            for (id, val) in top_by(&confidences, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  P(state 0) = {val:.4}\n"));
            }
        }
    }
    out
}

fn top_by<T: Copy + Into<f64>>(
    values: &[T],
    k: usize,
    cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering,
) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> =
        values.iter().enumerate().map(|(i, &v)| (i, v.into())).collect();
    pairs.sort_by(|a, b| cmp(&a.1, &b.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate_with_flags() {
        let cmd = parse(&args("generate g.bin --scale 12 --edges 5000 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate { out: "g.bin".into(), scale: 12, edges: 5000, seed: 7 }
        );
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse(&args("run pr dos-dir")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                algo: Algorithm::PageRank,
                dos_dir: "dos-dir".into(),
                budget_mib: 8,
                source: 0,
                iterations: 100,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1,
                resume: false,
                threads: default_threads(),
                prefetch: true,
                verbose: false,
            }
        );
    }

    #[test]
    fn parses_run_parallelism_flags() {
        let cmd = parse(&args("run pr dos-dir --threads 4 --no-prefetch --verbose")).unwrap();
        match cmd {
            Command::Run { threads, prefetch, verbose, .. } => {
                assert_eq!(threads, 4);
                assert!(!prefetch);
                assert!(verbose);
            }
            other => panic!("parsed {other:?}"),
        }
        // --threads 0 is clamped rather than rejected.
        match parse(&args("run pr dos-dir --threads 0")).unwrap() {
            Command::Run { threads, .. } => assert_eq!(threads, 1),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_checkpoint_flags() {
        let cmd =
            parse(&args("run cc dos-dir --checkpoint-dir ckpts --checkpoint-every 5 --resume"))
                .unwrap();
        match cmd {
            Command::Run { checkpoint_dir, checkpoint_every, resume, .. } => {
                assert_eq!(checkpoint_dir, Some("ckpts".into()));
                assert_eq!(checkpoint_every, 5);
                assert!(resume);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_command_and_algorithm() {
        assert!(parse(&args("frobnicate x")).is_err());
        assert!(parse(&args("run dijkstra dos")).is_err());
    }

    #[test]
    fn unknown_command_error_lists_available_subcommands() {
        let err = parse(&args("frobnicate x")).unwrap_err();
        let msg = err.to_string();
        // The error enumerates the table so users see what *is* spelled right.
        for spec in COMMANDS {
            assert!(msg.contains(spec.name), "`{}` missing from: {msg}", spec.name);
        }
        assert!(msg.contains("unknown command `frobnicate`"), "{msg}");
        // The same table renders the helper, so the two can never disagree.
        assert_eq!(command_names().matches(", ").count() + 1, COMMANDS.len());
        assert!(command_names().contains("convert"), "{}", command_names());
    }

    #[test]
    fn parses_convert_fault_tolerance_flags() {
        match parse(&args("convert e.txt dos --max-bad-records 5 --resume")).unwrap() {
            Command::Convert { max_bad_records, resume, .. } => {
                assert_eq!(max_bad_records, Some(5));
                assert!(resume);
            }
            other => panic!("parsed {other:?}"),
        }
        // Defaults: strict parsing, fresh scratch.
        match parse(&args("convert e.txt dos")).unwrap() {
            Command::Convert { max_bad_records, resume, .. } => {
                assert_eq!(max_bad_records, None);
                assert!(!resume);
            }
            other => panic!("parsed {other:?}"),
        }
        let err = parse(&args("convert e.txt dos --max-bad-records lots")).unwrap_err();
        assert!(err.to_string().contains("--max-bad-records"), "{err}");
    }

    #[test]
    fn convert_quarantines_bad_lines_when_budgeted() {
        let dir = graphz_io::ScratchDir::new("cli-quarantine").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 oops\n1 2\n2 0\n").unwrap();
        let dos = dir.path().join("dos");
        // Strict by default: the malformed line aborts the conversion.
        let line = format!("convert {} {}", txt.display(), dos.display());
        assert!(execute(parse(&args(&line)).unwrap()).is_err());
        // With a budget the line is quarantined and conversion succeeds.
        let line = format!("convert {} {} --max-bad-records 1", txt.display(), dos.display());
        let out = execute(parse(&args(&line)).unwrap()).unwrap();
        assert!(out.contains("degree-ordered storage"), "{out}");
        assert!(out.contains("quarantine.txt"), "{out}");
        let sidecar = std::fs::read_to_string(dos.join("quarantine.txt")).unwrap();
        assert!(sidecar.contains("line 2"), "{sidecar}");
        assert!(sidecar.contains("1 oops"), "{sidecar}");
    }

    #[test]
    fn rejects_unknown_flags_naming_the_command() {
        let err = parse(&args("run pr dos --banana")).unwrap_err();
        assert!(err.to_string().contains("graphz run"), "{err}");
        // A flag valid elsewhere is still unknown here.
        let err = parse(&args("generate g.bin --ingest-threads 4")).unwrap_err();
        assert!(err.to_string().contains("--ingest-threads"), "{err}");
        // Surplus positionals are rejected, not silently dropped.
        assert!(parse(&args("info a b")).is_err());
        // A value-taking flag at the end of the line is an error.
        let err = parse(&args("generate g.bin --scale")).unwrap_err();
        assert!(err.to_string().contains("--scale"), "{err}");
        // The new read-API rows reject strangers too, naming themselves.
        let err = parse(&args("serve dos --checkpoint-every 2")).unwrap_err();
        assert!(err.to_string().contains("graphz serve"), "{err}");
        let err = parse(&args("islands dos --format dot")).unwrap_err();
        assert!(err.to_string().contains("graphz islands"), "{err}");
        let err = parse(&args("export dos --emit")).unwrap_err();
        assert!(err.to_string().contains("graphz export"), "{err}");
    }

    #[test]
    fn parses_serve_with_flags_and_defaults() {
        assert_eq!(
            parse(&args("serve dos")).unwrap(),
            Command::Serve {
                dos_dir: "dos".into(),
                addr: "127.0.0.1:0".into(),
                threads: 4,
                checkpoint_dir: None,
                generation: None,
                max_conns: None,
                port_file: None,
            }
        );
        match parse(&args(
            "serve dos --addr 127.0.0.1:4167 --threads 2 --checkpoint-dir ck \
             --generation 3 --max-conns 10 --port-file p.txt",
        ))
        .unwrap()
        {
            Command::Serve { addr, threads, checkpoint_dir, generation, max_conns, port_file, .. } => {
                assert_eq!(addr, "127.0.0.1:4167");
                assert_eq!(threads, 2);
                assert_eq!(checkpoint_dir, Some("ck".into()));
                assert_eq!(generation, Some(3));
                assert_eq!(max_conns, Some(10));
                assert_eq!(port_file, Some("p.txt".into()));
            }
            other => panic!("parsed {other:?}"),
        }
        // --threads 0 is clamped like run's.
        match parse(&args("serve dos --threads 0")).unwrap() {
            Command::Serve { threads, .. } => assert_eq!(threads, 1),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("serve dos --generation nope")).is_err());
        assert!(parse(&args("serve dos --max-conns many")).is_err());
    }

    #[test]
    fn parses_islands_and_export() {
        assert_eq!(
            parse(&args("islands dos --emit")).unwrap(),
            Command::Islands { dos_dir: "dos".into(), emit: true }
        );
        assert_eq!(
            parse(&args("export dos --out g.dot --original")).unwrap(),
            Command::Export {
                dos_dir: "dos".into(),
                format: "dot".into(),
                out: Some("g.dot".into()),
                original: true,
            }
        );
        let err = parse(&args("export dos --format gexf")).unwrap_err();
        assert!(err.to_string().contains("gexf"), "{err}");
    }

    #[test]
    fn stats_islands_export_read_through_graphview() {
        let dir = graphz_io::ScratchDir::new("cli-view").unwrap();
        let txt = dir.file("g.txt");
        // Two 3-cycles, disjoint: components {0,1,2} and {3,4,5}.
        std::fs::write(&txt, "0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n").unwrap();
        let dos = dir.path().join("dos").display().to_string();
        execute(parse(&args(&format!("convert {} {dos}", txt.display()))).unwrap()).unwrap();

        let out = execute(parse(&args(&format!("stats {dos}"))).unwrap()).unwrap();
        assert!(out.contains("vertices: 6"), "{out}");
        assert!(out.contains("unique out-degrees: 1"), "{out}");
        assert!(out.contains("degree histogram"), "{out}");

        let out = execute(parse(&args(&format!("islands {dos} --emit"))).unwrap()).unwrap();
        assert!(out.contains("2 component(s), largest 3 vertices, 0 isolated"), "{out}");
        // --emit prints a line per vertex.
        assert_eq!(out.lines().count(), 1 + 6, "{out}");

        let dot = dir.file("g.dot");
        let out = execute(
            parse(&args(&format!("export {dos} --out {} --original", dot.display()))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("wrote 6 edges"), "{out}");
        let text = std::fs::read_to_string(&dot).unwrap();
        assert!(text.contains("0 -> 1;"), "{text}");
        assert!(text.contains("5 -> 3;"), "{text}");
        // Without --out the DOT text itself is the command output.
        let inline = execute(parse(&args(&format!("export {dos}"))).unwrap()).unwrap();
        assert!(inline.starts_with("digraph graphz {"), "{inline}");
    }

    #[test]
    fn serve_command_answers_queries_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        let dir = graphz_io::ScratchDir::new("cli-serve").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n").unwrap();
        let dos = dir.path().join("dos").display().to_string();
        execute(parse(&args(&format!("convert {} {dos}", txt.display()))).unwrap()).unwrap();

        let port_file = dir.file("port.txt");
        let line = format!(
            "serve {dos} --threads 2 --max-conns 1 --port-file {}",
            port_file.display()
        );
        let cmd = parse(&args(&line)).unwrap();
        let server = std::thread::spawn(move || execute(cmd));
        // The port file appears once the listener is bound.
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if s.ends_with('\n') {
                    break s.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut resp = String::new();
        for (req, want) in [("ping", "OK pong"), ("degree 0", "OK 1"), ("quit", "OK bye")] {
            conn.write_all(req.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            resp.clear();
            reader.read_line(&mut resp).unwrap();
            assert_eq!(resp.trim_end(), want);
        }
        drop(conn);
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("served 1 connection(s)"), "{out}");
    }

    #[test]
    fn per_subcommand_help_renders_from_the_table() {
        for spelled in ["convert --help", "convert -h", "help convert"] {
            let cmd = parse(&args(spelled)).unwrap();
            assert_eq!(cmd, Command::HelpFor("convert".into()), "{spelled}");
        }
        let page = execute(Command::HelpFor("convert".into())).unwrap();
        assert!(page.contains("--ingest-threads"), "{page}");
        assert!(page.contains("byte-identical"), "{page}");
        assert!(page.contains("--weighted"), "{page}");
        // `--help` wins even when the rest of the line is malformed.
        assert_eq!(
            parse(&args("run --help --banana")).unwrap(),
            Command::HelpFor("run".into())
        );
        // `help <unknown>` falls back to the top-level page.
        assert_eq!(parse(&args("help frobnicate")).unwrap(), Command::Help);
    }

    #[test]
    fn every_table_row_parses_and_renders_help() {
        for spec in COMMANDS {
            // The parse() match has an arm for every row: a minimal
            // invocation must never hit the `unimplemented command` arm.
            let mut line = vec![spec.name.to_string()];
            line.extend(spec.positionals.iter().map(|p| match *p {
                "<pr|bfs|cc|sssp|bp|rw>" => "pr".to_string(),
                other => other.trim_matches(['<', '>']).replace(" | ", "-"),
            }));
            match parse(&line) {
                Ok(_) => {}
                Err(e) => {
                    assert!(
                        !e.to_string().contains("unimplemented"),
                        "`{}` has a table row but no parse arm: {e}",
                        spec.name
                    );
                    panic!("minimal `{}` invocation failed to parse: {e}", spec.name);
                }
            }
            let page = usage_for(spec.name);
            assert!(page.contains(spec.summary), "{page}");
            for f in spec.flags {
                assert!(page.contains(f.name), "help for `{}` misses {}", spec.name, f.name);
            }
            assert!(usage().contains(spec.name));
        }
    }

    #[test]
    fn parses_ingest_threads_on_import_and_convert() {
        let cmd = parse(&args("import e.txt e.bin --ingest-threads 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Import { text: "e.txt".into(), out: "e.bin".into(), ingest_threads: 4 }
        );
        match parse(&args("convert e.bin dos --ingest-threads 0")).unwrap() {
            Command::Convert { ingest_threads, .. } => assert_eq!(ingest_threads, 1),
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("convert e.bin dos")).unwrap() {
            Command::Convert { ingest_threads, .. } => assert_eq!(ingest_threads, 1),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(execute(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn bad_flag_value_is_config_error() {
        let err = parse(&args("generate g.bin --scale banana")).unwrap_err();
        assert!(matches!(err, GraphError::InvalidConfig(_)));
    }

    #[test]
    fn end_to_end_generate_convert_info_run() {
        let dir = graphz_io::ScratchDir::new("cli").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos").display().to_string();
        let out = execute(
            parse(&args(&format!("generate {g} --scale 10 --edges 4000"))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("4000 edges"), "{out}");
        let out = execute(parse(&args(&format!("convert {g} {dos}"))).unwrap()).unwrap();
        assert!(out.contains("degree-ordered storage"));
        let out = execute(parse(&args(&format!("info {dos}"))).unwrap()).unwrap();
        assert!(out.contains("edges: 4000"));
        let out = execute(
            parse(&args(&format!("run bfs {dos} --budget-mib 1 --source 0 --top 3"))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("reached"), "{out}");
        let out =
            execute(parse(&args(&format!("run pr {dos} --iterations 20"))).unwrap()).unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 10 --threads 2 --verbose"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("stage times:"), "{out}");
        assert!(out.contains("prefetch:"), "{out}");
    }

    #[test]
    fn convert_accepts_text_directly_and_parallel_matches_serial() {
        let dir = graphz_io::ScratchDir::new("cli-text-convert").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n0 2\n3 1\n").unwrap();
        let serial = dir.path().join("serial");
        let par = dir.path().join("par");
        let out = execute(
            parse(&args(&format!("convert {} {}", txt.display(), serial.display()))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("degree-ordered storage"), "{out}");
        execute(
            parse(&args(&format!(
                "convert {} {} --ingest-threads 4",
                txt.display(),
                par.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            std::fs::read(serial.join("edges.bin")).unwrap(),
            std::fs::read(par.join("edges.bin")).unwrap()
        );
        assert_eq!(
            std::fs::read(serial.join("checksums.txt")).unwrap(),
            std::fs::read(par.join("checksums.txt")).unwrap()
        );
    }

    #[test]
    fn import_dispatches_on_extension() {
        let dir = graphz_io::ScratchDir::new("cli-import").unwrap();
        let mtx = dir.file("m.mtx");
        std::fs::write(&mtx, "%%MatrixMarket matrix coordinate
2 2 1
1 2
").unwrap();
        let out = execute(
            parse(&args(&format!(
                "import {} {}",
                mtx.display(),
                dir.file("m.bin").display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("imported 1 edges"), "{out}");
    }

    #[test]
    fn stats_command_reports_distribution() {
        let dir = graphz_io::ScratchDir::new("cli-stats").unwrap();
        let g = dir.file("g.bin").display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 10 --edges 8000"))).unwrap())
            .unwrap();
        let out = execute(parse(&args(&format!("stats {g}"))).unwrap()).unwrap();
        assert!(out.contains("unique out-degrees"), "{out}");
        assert!(out.contains("power-law tail exponent"), "{out}");
        assert!(out.contains("degree histogram"), "{out}");
    }

    #[test]
    fn verify_command_reports_ok_and_corruption() {
        let dir = graphz_io::ScratchDir::new("cli-verify").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos");
        let dos_s = dos.display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 8 --edges 500"))).unwrap()).unwrap();
        execute(parse(&args(&format!("convert {g} {dos_s}"))).unwrap()).unwrap();
        let out = execute(parse(&args(&format!("verify {dos_s}"))).unwrap()).unwrap();
        assert!(out.contains("OK"));
        assert!(out.contains("checksum-verified"), "{out}");
        // Corrupt and re-verify.
        let edges = dos.join("edges.bin");
        let len = std::fs::metadata(&edges).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&edges).unwrap().set_len(len - 4).unwrap();
        let err = execute(parse(&args(&format!("verify {dos_s}"))).unwrap()).unwrap_err();
        assert!(err.to_string().contains("violation"), "{err}");
    }

    #[test]
    fn run_writes_checkpoints_and_resumes() {
        let dir = graphz_io::ScratchDir::new("cli-ckpt").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos").display().to_string();
        let ck = dir.path().join("ckpts");
        let ck_s = ck.display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 9 --edges 2000"))).unwrap()).unwrap();
        execute(parse(&args(&format!("convert {g} {dos}"))).unwrap()).unwrap();

        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 30 --checkpoint-dir {ck_s}"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
        let generations = std::fs::read_dir(&ck)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().starts_with("gen-")
            })
            .count();
        assert!(generations >= 2, "expected checkpoint generations, found {generations}");

        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 30 --checkpoint-dir {ck_s} \
                 --checkpoint-every 0 --resume"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
    }

    #[test]
    fn top_by_orders_and_truncates() {
        let v = [3.0f32, 1.0, 2.0];
        let top = top_by(&v, 2, |a, b| b.total_cmp(a));
        assert_eq!(top, vec![(0, 3.0), (2, 2.0)]);
    }
}
