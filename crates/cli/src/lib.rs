//! Implementation of the `graphz` command-line tool.
//!
//! Subcommands:
//!
//! * `graphz generate <out.bin> --scale N --edges M [--seed S]` — emit a
//!   deterministic R-MAT edge list.
//! * `graphz import <edges.txt> <out.bin>` — convert SNAP-style text.
//! * `graphz convert <edges.bin> <dos-dir>` — build degree-ordered storage.
//! * `graphz info <dos-dir | edges.bin>` — print metadata and index sizes.
//! * `graphz run <algo> <dos-dir> [--budget-mib B] [--source V]
//!   [--iterations N] [--top K]` — run an algorithm out-of-core and print
//!   the top-K vertices.
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy keeps
//! clap out of the runtime tree); see [`parse`] for the grammar.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::sync::Arc;

use graphz_algos::runner;
use graphz_algos::{AlgoParams, Algorithm, AlgoValues};
use graphz_io::IoStats;
use graphz_storage::{DosGraph, EdgeListFile};
use graphz_types::{EngineOptions, GraphError, MemoryBudget, Result};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Generate { out: PathBuf, scale: u32, edges: u64, seed: u64 },
    Import { text: PathBuf, out: PathBuf },
    Convert { edges: PathBuf, dos_dir: PathBuf, budget_mib: u64, weighted: bool },
    Info { path: PathBuf },
    Verify { dos_dir: PathBuf },
    Stats { edges: PathBuf },
    Run {
        algo: Algorithm,
        dos_dir: PathBuf,
        budget_mib: u64,
        source: u32,
        iterations: u32,
        top: usize,
        checkpoint_dir: Option<PathBuf>,
        checkpoint_every: u32,
        resume: bool,
        threads: usize,
        prefetch: bool,
        verbose: bool,
    },
    Help,
}

/// Default for `--threads`: every core the OS reports.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub const USAGE: &str = "graphz — out-of-core graph analytics (GraphZ, ICDE'18)

USAGE:
  graphz generate <out.bin> --scale N --edges M [--seed S]
  graphz import   <edges.txt | matrix.mtx> <out.bin>
  graphz convert  <edges.bin> <dos-dir> [--budget-mib B] [--weighted]
  graphz info     <dos-dir | edges.bin>
  graphz verify   <dos-dir>
  graphz stats    <edges.bin>
  graphz run      <pr|bfs|cc|sssp|bp|rw> <dos-dir>
                  [--budget-mib B] [--source V] [--iterations N] [--top K]
                  [--checkpoint-dir D] [--checkpoint-every N] [--resume]
                  [--threads N] [--no-prefetch] [--verbose]
  graphz help

Checkpointing: with --checkpoint-dir, a crash-safe generation is written
under D after every N completed iterations (default 1); --resume continues
from the newest valid generation, skipping any damaged by a crash.

Parallelism: --threads defaults to the core count. With N >= 2 the Worker
runs a fixed 8-shard schedule per partition, so every N >= 2 produces
bit-identical results; --threads 1 is the paper's sequential schedule.
--no-prefetch disables the background partition loader (results are
identical either way). --verbose prints per-stage wall times and prefetch
hit/stall counters.
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| GraphError::InvalidConfig(format!("bad value for {flag}: `{raw}`"))),
    }
}

fn positional(args: &[String], idx: usize, what: &str) -> Result<PathBuf> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip flag values: an arg immediately following a --flag.
            let pos = args.iter().position(|x| x == *a).unwrap();
            pos == 0 || !args[pos - 1].starts_with("--")
        })
        .nth(idx)
        .map(PathBuf::from)
        .ok_or_else(|| GraphError::InvalidConfig(format!("missing argument: {what}")))
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => Ok(Command::Generate {
            out: positional(rest, 0, "<out.bin>")?,
            scale: parse_flag(rest, "--scale", 14)?,
            edges: parse_flag(rest, "--edges", 100_000)?,
            seed: parse_flag(rest, "--seed", 42)?,
        }),
        "import" => Ok(Command::Import {
            text: positional(rest, 0, "<edges.txt>")?,
            out: positional(rest, 1, "<out.bin>")?,
        }),
        "convert" => Ok(Command::Convert {
            edges: positional(rest, 0, "<edges.bin>")?,
            dos_dir: positional(rest, 1, "<dos-dir>")?,
            budget_mib: parse_flag(rest, "--budget-mib", 8)?,
            weighted: rest.iter().any(|a| a == "--weighted"),
        }),
        "info" => Ok(Command::Info { path: positional(rest, 0, "<path>")? }),
        "verify" => Ok(Command::Verify { dos_dir: positional(rest, 0, "<dos-dir>")? }),
        "stats" => Ok(Command::Stats { edges: positional(rest, 0, "<edges.bin>")? }),
        "run" => {
            let algo_raw = positional(rest, 0, "<algorithm>")?;
            let algo = match algo_raw.to_string_lossy().to_lowercase().as_str() {
                "pr" | "pagerank" => Algorithm::PageRank,
                "bfs" => Algorithm::Bfs,
                "cc" => Algorithm::Cc,
                "sssp" => Algorithm::Sssp,
                "bp" => Algorithm::Bp,
                "rw" | "randomwalk" => Algorithm::RandomWalk,
                other => {
                    return Err(GraphError::InvalidConfig(format!("unknown algorithm `{other}`")))
                }
            };
            Ok(Command::Run {
                algo,
                dos_dir: positional(rest, 1, "<dos-dir>")?,
                budget_mib: parse_flag(rest, "--budget-mib", 8)?,
                source: parse_flag(rest, "--source", 0)?,
                iterations: parse_flag(rest, "--iterations", 100)?,
                top: parse_flag(rest, "--top", 10)?,
                checkpoint_dir: flag_value(rest, "--checkpoint-dir").map(PathBuf::from),
                checkpoint_every: parse_flag(rest, "--checkpoint-every", 1)?,
                resume: rest.iter().any(|a| a == "--resume"),
                threads: parse_flag(rest, "--threads", default_threads())?.max(1),
                prefetch: !rest.iter().any(|a| a == "--no-prefetch"),
                verbose: rest.iter().any(|a| a == "--verbose"),
            })
        }
        other => Err(GraphError::InvalidConfig(format!("unknown command `{other}`"))),
    }
}

/// Execute a parsed command; returns the text to print.
pub fn execute(cmd: Command) -> Result<String> {
    let stats = IoStats::new();
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate { out, scale, edges, seed } => {
            let el = EdgeListFile::create(
                &out,
                Arc::clone(&stats),
                graphz_gen::rmat_edges(scale, edges, Default::default(), seed),
            )?;
            let m = el.meta();
            Ok(format!(
                "wrote {}: {} vertices, {} edges, {} unique degrees\n",
                out.display(),
                m.num_vertices,
                m.num_edges,
                m.unique_degrees
            ))
        }
        Command::Import { text, out } => {
            // `.mtx` files go through the Matrix Market reader; anything
            // else is treated as SNAP-style `src dst` text.
            let el = if text.extension().is_some_and(|e| e == "mtx") {
                EdgeListFile::import_matrix_market(&text, &out, Arc::clone(&stats))?
            } else {
                EdgeListFile::import_text(&text, &out, Arc::clone(&stats))?
            };
            Ok(format!(
                "imported {} edges over {} vertices into {}\n",
                el.meta().num_edges,
                el.meta().num_vertices,
                out.display()
            ))
        }
        Command::Convert { edges, dos_dir, budget_mib, weighted } => {
            let el = EdgeListFile::open(&edges)?;
            let mut converter = graphz_storage::DosConverter::new(
                MemoryBudget::from_mib(budget_mib),
                Arc::clone(&stats),
            );
            if weighted {
                // Deterministic weights derived from original endpoint ids.
                converter = converter.with_weights(graphz_types::derive_weight);
            }
            let dos = converter.convert(&el, &dos_dir)?;
            Ok(format!(
                "converted to degree-ordered storage at {}\n\
                 index: {} bytes for {} unique degrees (dense CSR would need {} bytes)\n",
                dos_dir.display(),
                dos.index().index_bytes(),
                dos.index().unique_degrees(),
                (dos.meta().num_vertices + 1) * 8
            ))
        }
        Command::Info { path } => {
            if path.is_dir() {
                let dos = DosGraph::open(&path, Arc::clone(&stats))?;
                let m = dos.meta();
                Ok(format!(
                    "degree-ordered storage at {}\n\
                     vertices: {}\nedges: {}\nunique degrees: {}\nmax degree: {}\n\
                     index bytes: {}\n",
                    path.display(),
                    m.num_vertices,
                    m.num_edges,
                    m.unique_degrees,
                    m.max_degree,
                    dos.index().index_bytes()
                ))
            } else {
                let el = EdgeListFile::open(&path)?;
                let m = el.meta();
                Ok(format!(
                    "edge list at {}\nvertices: {}\nedges: {}\nunique degrees: {}\nmax degree: {}\n",
                    path.display(),
                    m.num_vertices,
                    m.num_edges,
                    m.unique_degrees,
                    m.max_degree
                ))
            }
        }
        Command::Verify { dos_dir } => {
            let report = graphz_storage::verify_dos(&dos_dir, Arc::clone(&stats))?;
            if report.is_clean() {
                let checksums = if report.files_checksummed > 0 {
                    format!("{} data files checksum-verified", report.files_checksummed)
                } else {
                    "no checksums.txt sidecar; structural checks only".to_string()
                };
                Ok(format!("{}: OK ({checksums})\n", dos_dir.display()))
            } else {
                let mut out = format!(
                    "{}: {} violation(s)\n",
                    dos_dir.display(),
                    report.violations.len()
                );
                for v in &report.violations {
                    out.push_str(&format!("  {v}\n"));
                }
                Err(GraphError::Corrupt(out))
            }
        }
        Command::Stats { edges } => {
            let el = EdgeListFile::open(&edges)?;
            Ok(degree_stats(&el, &stats)?)
        }
        Command::Run {
            algo,
            dos_dir,
            budget_mib,
            source,
            iterations,
            top,
            checkpoint_dir,
            checkpoint_every,
            resume,
            threads,
            prefetch,
            verbose,
        } => {
            let dos = DosGraph::open(&dos_dir, Arc::clone(&stats))?;
            let params = AlgoParams::new(algo)
                .with_source(source)
                .with_max_iterations(iterations);
            let budget = MemoryBudget::from_mib(budget_mib);
            let ckpt = runner::CheckpointSpec {
                dir: checkpoint_dir,
                every: checkpoint_every,
                resume,
            };
            // Any thread count >= 2 executes the same fixed shard schedule,
            // so results depend only on whether workers are parallel at all.
            let mut options = if threads > 1 {
                EngineOptions::with_parallel_workers(threads)
            } else {
                EngineOptions::full()
            };
            options.prefetch = prefetch;
            let outcome = runner::run_graphz_configured(
                &dos,
                &params,
                budget,
                options,
                &ckpt,
                Arc::clone(&stats),
            )?;
            let mut out = format!(
                "{algo} on {}: {} iterations ({}), {} partitions, {} messages\n\
                 io: {} read / {} written / {} seeks, wall {:?}\n",
                dos_dir.display(),
                outcome.iterations,
                if outcome.converged { "converged" } else { "hit iteration cap" },
                outcome.partitions,
                outcome.messages,
                outcome.io.bytes_read,
                outcome.io.bytes_written,
                outcome.io.seeks,
                outcome.wall,
            );
            if verbose {
                if let Some(st) = outcome.stages {
                    out.push_str(&format!(
                        "stage times: load {:?} / replay {:?} / compute {:?} / flush {:?}\n",
                        st.load, st.replay, st.compute, st.flush,
                    ));
                }
                if let Some(pf) = outcome.prefetch {
                    out.push_str(&format!(
                        "prefetch: {} hits / {} stalls / {} wasted\n",
                        pf.hits, pf.stalls, pf.wasted,
                    ));
                }
            }
            out.push_str(&render_top(&outcome.values, top));
            Ok(out)
        }
    }
}

/// The §III-D analysis as a tool: degree distribution, unique-degree count
/// against Claim 1's bound, and a rough power-law tail exponent.
fn degree_stats(el: &EdgeListFile, stats: &Arc<IoStats>) -> Result<String> {
    use std::collections::HashMap;
    let meta = el.meta();
    let mut degrees: HashMap<u32, u64> = HashMap::new();
    for e in el.reader(Arc::clone(stats))? {
        *degrees.entry(e?.src).or_default() += 1;
    }
    // Histogram: degree -> number of vertices with that degree.
    let mut histogram: HashMap<u64, u64> = HashMap::new();
    for &d in degrees.values() {
        *histogram.entry(d).or_default() += 1;
    }
    let zero_degree = meta.num_vertices - degrees.len() as u64;
    if zero_degree > 0 {
        histogram.insert(0, zero_degree);
    }
    let bound = graphz_storage::dos::unique_degree_bound(meta.num_edges);
    let mut out = format!(
        "{}
vertices: {}
edges: {}
unique out-degrees: {} (Claim-1 bound 2*sqrt(E) = {})
         max out-degree: {}
zero-out-degree vertices: {}
",
        el.path().display(),
        meta.num_vertices,
        meta.num_edges,
        histogram.len(),
        bound,
        meta.max_degree,
        zero_degree,
    );
    // Least-squares slope of log(count) over log(degree) for degree >= 1 —
    // a quick power-law tail exponent estimate (natural graphs: ~2-3).
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .filter(|&(&d, _)| d >= 1)
        .map(|(&d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() >= 3 {
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        out.push_str(&format!("power-law tail exponent (least squares): {:.2}
", -slope));
    }
    let mut buckets: Vec<(u64, u64)> = histogram.into_iter().collect();
    buckets.sort();
    out.push_str("degree histogram (first 10 buckets):
");
    for (d, c) in buckets.iter().take(10) {
        out.push_str(&format!("  degree {d:>6}: {c} vertices
"));
    }
    Ok(out)
}

/// The `--top K` listing: the K most interesting vertices for the value
/// kind (highest rank/visits, lowest distances, largest components...).
fn render_top(values: &AlgoValues, k: usize) -> String {
    let mut out = String::new();
    match values {
        AlgoValues::Ranks(v) => {
            out.push_str("top vertices by rank:\n");
            for (id, val) in top_by(v, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  {val:.4}\n"));
            }
        }
        AlgoValues::Visits(v) => {
            out.push_str("top vertices by visit mass:\n");
            for (id, val) in top_by(v, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  {val:.4}\n"));
            }
        }
        AlgoValues::Hops(v) => {
            let reached = v.iter().filter(|&&d| d != u32::MAX).count();
            out.push_str(&format!("reached {reached} of {} vertices; nearest:\n", v.len()));
            for (id, val) in
                top_by(&v.iter().map(|&d| d as f64).collect::<Vec<_>>(), k, |a, b| a.total_cmp(b))
            {
                if val == u32::MAX as f64 {
                    break;
                }
                out.push_str(&format!("  {id:>8}  {val:.0} hops\n"));
            }
        }
        AlgoValues::Costs(v) => {
            let reached = v.iter().filter(|d| d.is_finite()).count();
            out.push_str(&format!("reached {reached} of {} vertices; nearest:\n", v.len()));
            for (id, val) in top_by(v, k, |a, b| a.total_cmp(b)) {
                if !val.is_finite() {
                    break;
                }
                out.push_str(&format!("  {id:>8}  {val:.3}\n"));
            }
        }
        AlgoValues::Labels(v) => {
            let mut sizes: std::collections::HashMap<u32, u64> = Default::default();
            for &l in v {
                *sizes.entry(l).or_default() += 1;
            }
            let mut by_size: Vec<(u32, u64)> = sizes.into_iter().collect();
            by_size.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            out.push_str(&format!("{} components; largest:\n", by_size.len()));
            for (label, n) in by_size.into_iter().take(k) {
                out.push_str(&format!("  component {label:>8}: {n} vertices\n"));
            }
        }
        AlgoValues::Beliefs(v) => {
            out.push_str("most state-0-confident vertices:\n");
            let confidences: Vec<f32> = v.iter().map(|b| b[0]).collect();
            for (id, val) in top_by(&confidences, k, |a, b| b.total_cmp(a)) {
                out.push_str(&format!("  {id:>8}  P(state 0) = {val:.4}\n"));
            }
        }
    }
    out
}

fn top_by<T: Copy + Into<f64>>(
    values: &[T],
    k: usize,
    cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering,
) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> =
        values.iter().enumerate().map(|(i, &v)| (i, v.into())).collect();
    pairs.sort_by(|a, b| cmp(&a.1, &b.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate_with_flags() {
        let cmd = parse(&args("generate g.bin --scale 12 --edges 5000 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate { out: "g.bin".into(), scale: 12, edges: 5000, seed: 7 }
        );
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse(&args("run pr dos-dir")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                algo: Algorithm::PageRank,
                dos_dir: "dos-dir".into(),
                budget_mib: 8,
                source: 0,
                iterations: 100,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1,
                resume: false,
                threads: default_threads(),
                prefetch: true,
                verbose: false,
            }
        );
    }

    #[test]
    fn parses_run_parallelism_flags() {
        let cmd = parse(&args("run pr dos-dir --threads 4 --no-prefetch --verbose")).unwrap();
        match cmd {
            Command::Run { threads, prefetch, verbose, .. } => {
                assert_eq!(threads, 4);
                assert!(!prefetch);
                assert!(verbose);
            }
            other => panic!("parsed {other:?}"),
        }
        // --threads 0 is clamped rather than rejected.
        match parse(&args("run pr dos-dir --threads 0")).unwrap() {
            Command::Run { threads, .. } => assert_eq!(threads, 1),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_checkpoint_flags() {
        let cmd =
            parse(&args("run cc dos-dir --checkpoint-dir ckpts --checkpoint-every 5 --resume"))
                .unwrap();
        match cmd {
            Command::Run { checkpoint_dir, checkpoint_every, resume, .. } => {
                assert_eq!(checkpoint_dir, Some("ckpts".into()));
                assert_eq!(checkpoint_every, 5);
                assert!(resume);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_command_and_algorithm() {
        assert!(parse(&args("frobnicate x")).is_err());
        assert!(parse(&args("run dijkstra dos")).is_err());
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(execute(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn bad_flag_value_is_config_error() {
        let err = parse(&args("generate g.bin --scale banana")).unwrap_err();
        assert!(matches!(err, GraphError::InvalidConfig(_)));
    }

    #[test]
    fn end_to_end_generate_convert_info_run() {
        let dir = graphz_io::ScratchDir::new("cli").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos").display().to_string();
        let out = execute(
            parse(&args(&format!("generate {g} --scale 10 --edges 4000"))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("4000 edges"), "{out}");
        let out = execute(parse(&args(&format!("convert {g} {dos}"))).unwrap()).unwrap();
        assert!(out.contains("degree-ordered storage"));
        let out = execute(parse(&args(&format!("info {dos}"))).unwrap()).unwrap();
        assert!(out.contains("edges: 4000"));
        let out = execute(
            parse(&args(&format!("run bfs {dos} --budget-mib 1 --source 0 --top 3"))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("reached"), "{out}");
        let out =
            execute(parse(&args(&format!("run pr {dos} --iterations 20"))).unwrap()).unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 10 --threads 2 --verbose"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("stage times:"), "{out}");
        assert!(out.contains("prefetch:"), "{out}");
    }

    #[test]
    fn import_dispatches_on_extension() {
        let dir = graphz_io::ScratchDir::new("cli-import").unwrap();
        let mtx = dir.file("m.mtx");
        std::fs::write(&mtx, "%%MatrixMarket matrix coordinate
2 2 1
1 2
").unwrap();
        let out = execute(
            parse(&args(&format!(
                "import {} {}",
                mtx.display(),
                dir.file("m.bin").display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("imported 1 edges"), "{out}");
    }

    #[test]
    fn stats_command_reports_distribution() {
        let dir = graphz_io::ScratchDir::new("cli-stats").unwrap();
        let g = dir.file("g.bin").display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 10 --edges 8000"))).unwrap())
            .unwrap();
        let out = execute(parse(&args(&format!("stats {g}"))).unwrap()).unwrap();
        assert!(out.contains("unique out-degrees"), "{out}");
        assert!(out.contains("power-law tail exponent"), "{out}");
        assert!(out.contains("degree histogram"), "{out}");
    }

    #[test]
    fn verify_command_reports_ok_and_corruption() {
        let dir = graphz_io::ScratchDir::new("cli-verify").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos");
        let dos_s = dos.display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 8 --edges 500"))).unwrap()).unwrap();
        execute(parse(&args(&format!("convert {g} {dos_s}"))).unwrap()).unwrap();
        let out = execute(parse(&args(&format!("verify {dos_s}"))).unwrap()).unwrap();
        assert!(out.contains("OK"));
        assert!(out.contains("checksum-verified"), "{out}");
        // Corrupt and re-verify.
        let edges = dos.join("edges.bin");
        let len = std::fs::metadata(&edges).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&edges).unwrap().set_len(len - 4).unwrap();
        let err = execute(parse(&args(&format!("verify {dos_s}"))).unwrap()).unwrap_err();
        assert!(err.to_string().contains("violation"), "{err}");
    }

    #[test]
    fn run_writes_checkpoints_and_resumes() {
        let dir = graphz_io::ScratchDir::new("cli-ckpt").unwrap();
        let g = dir.file("g.bin").display().to_string();
        let dos = dir.path().join("dos").display().to_string();
        let ck = dir.path().join("ckpts");
        let ck_s = ck.display().to_string();
        execute(parse(&args(&format!("generate {g} --scale 9 --edges 2000"))).unwrap()).unwrap();
        execute(parse(&args(&format!("convert {g} {dos}"))).unwrap()).unwrap();

        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 30 --checkpoint-dir {ck_s}"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
        let generations = std::fs::read_dir(&ck)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().starts_with("gen-")
            })
            .count();
        assert!(generations >= 2, "expected checkpoint generations, found {generations}");

        let out = execute(
            parse(&args(&format!(
                "run pr {dos} --budget-mib 1 --iterations 30 --checkpoint-dir {ck_s} \
                 --checkpoint-every 0 --resume"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("top vertices by rank"), "{out}");
    }

    #[test]
    fn top_by_orders_and_truncates() {
        let v = [3.0f32, 1.0, 2.0];
        let top = top_by(&v, 2, |a, b| b.total_cmp(a));
        assert_eq!(top, vec![(0, 3.0), (2, 2.0)]);
    }
}
