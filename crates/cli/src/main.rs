//! The `graphz` binary: see [`graphz_cli::usage`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match graphz_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", graphz_cli::usage());
            std::process::exit(2);
        }
    };
    match graphz_cli::execute(cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
