//! End-to-end gate for `graphz-flow` (ISSUE 8 acceptance): the real
//! repository — including this crate analyzing itself — must flow clean,
//! and seeded fixture trees must trip every rule: a raw `File::create`
//! bypassing the fault surface, an `AtomicFile` committed on only one
//! path, a HashMap-iteration value reaching a `push` sink, and a raw
//! `std::fs` call `?`-propagating without `.ctx`. Fixture trees are
//! *scanned*, not compiled, so they only need to be token-plausible Rust.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use graphz_check::flow::{flow_tree, FLOW_RULES};

/// A scratch directory under the target dir, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, contents).expect("write fixture file");
}

fn repo_root() -> &'static Path {
    // crates/check/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

/// One file per rule; `suppress: true` adds a `flow:allow` marker directly
/// above every seeded violation so the suppression path is tested on the
/// same sources.
fn seed_fixture(root: &Path, suppress: bool) {
    let allow = |rule: &str| {
        if suppress {
            format!("    // flow:allow({rule}) seeded fixture\n")
        } else {
            String::new()
        }
    };

    // fault-surface-bypass: a raw File::create in an ingest crate with no
    // surface gate on any path to it.
    write(
        root,
        "crates/io/src/rawdump.rs",
        &format!(
            "pub fn dump(path: &Path, bytes: &[u8]) -> Result<()> {{\n\
             {}    let mut f = File::create(path)?;\n\
             f.write_all(bytes)?;\n    Ok(())\n}}\n",
            allow("fault-surface-bypass"),
        ),
    );

    // must-consume-paths: an AtomicFile committed only under a flag — the
    // fall-through success path silently drops the staged bytes.
    write(
        root,
        "crates/io/src/stagecond.rs",
        &format!(
            "pub fn stage(dest: &Path, flag: bool) -> Result<()> {{\n\
             {}    let mut f = AtomicFile::create(dest)?;\n\
             f.write_all(b\"data\")?;\n\
             if flag {{\n        f.commit()?;\n    }}\n    Ok(())\n}}\n",
            allow("must-consume-paths"),
        ),
    );

    // determinism-taint: a HashMap-iteration value reaching a push sink.
    write(
        root,
        "crates/core/src/order.rs",
        &format!(
            "pub fn collect(out: &mut Vec<u32>) {{\n\
             let m = HashMap::new();\n\
             for v in m.iter() {{\n\
             {}        out.push(v);\n    }}\n}}\n",
            allow("determinism-taint"),
        ),
    );

    // error-context: a raw fs call whose error `?`-propagates bare.
    write(
        root,
        "crates/storage/src/readraw.rs",
        &format!(
            "pub fn read(p: &Path) -> Result<String> {{\n\
             {}    let text = fs::read_to_string(p)?;\n\
             Ok(text)\n}}\n",
            allow("error-context"),
        ),
    );
}

#[test]
fn repository_flows_clean() {
    let findings = flow_tree(repo_root()).expect("flow repo");
    assert!(
        findings.is_empty(),
        "repository must flow clean, got:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_fixtures_trip_every_rule() {
    let root = scratch("flow_fixture_bad");
    seed_fixture(&root, false);
    let findings = flow_tree(&root).expect("flow fixture");
    let tripped: BTreeSet<&str> = findings.iter().map(|v| v.rule).collect();
    let all: BTreeSet<&str> = FLOW_RULES.iter().map(|r| r.name).collect();
    assert_eq!(tripped, all, "every flow rule must trip, got:\n{findings:?}");
}

#[test]
fn suppressions_silence_seeded_violations() {
    let root = scratch("flow_fixture_allowed");
    seed_fixture(&root, true);
    let findings = flow_tree(&root).expect("flow fixture");
    assert!(findings.is_empty(), "flow:allow must silence every finding:\n{findings:?}");
}

/// The analyses are path-sensitive, not presence-based: a surface gate on
/// one branch does not cover the other, while a gate that dominates the
/// sink is clean; a commit on every success path consumes the stage.
#[test]
fn path_sensitivity_distinguishes_branches() {
    let root = scratch("flow_fixture_paths");
    // Gate under `if` only — the else path reaches the sink ungated.
    write(
        &root,
        "crates/io/src/halfgate.rs",
        "pub fn half(surface: &FaultSurface, path: &Path) -> Result<()> {\n\
         if cheap() {\n        surface.op(\"gate\")?;\n    }\n\
         let f = File::create(path)?;\n    Ok(())\n}\n",
    );
    // Gate before the sink on the single path — clean.
    write(
        &root,
        "crates/io/src/fullgate.rs",
        "pub fn full(surface: &FaultSurface, path: &Path) -> Result<()> {\n\
         surface.op(\"gate\")?;\n\
         let f = File::create(path)?;\n    Ok(())\n}\n",
    );
    // Commit on both success paths — clean; the `?`-error paths are the
    // implicit abort and must not be reported.
    write(
        &root,
        "crates/io/src/bothcommit.rs",
        "pub fn both(dest: &Path, flag: bool) -> Result<()> {\n\
         let mut f = AtomicFile::create(dest)?;\n\
         if flag {\n        f.write_all(b\"a\")?;\n        f.commit()?;\n    } \
         else {\n        f.commit()?;\n    }\n    Ok(())\n}\n",
    );
    let findings = flow_tree(&root).expect("flow fixture");
    assert_eq!(findings.len(), 1, "only the half-gated sink may fire:\n{findings:?}");
    assert_eq!(findings[0].rule, "fault-surface-bypass");
    assert_eq!(findings[0].path, Path::new("crates/io/src/halfgate.rs"));
}

#[test]
fn findings_name_file_line_and_rule() {
    let root = scratch("flow_fixture_report");
    seed_fixture(&root, false);
    let findings = flow_tree(&root).expect("flow fixture");
    let ec = findings.iter().find(|v| v.rule == "error-context").expect("errctx finding");
    assert_eq!(ec.path, Path::new("crates/storage/src/readraw.rs"));
    assert_eq!(ec.line, 2);
    assert!(ec.snippet.contains("read_to_string"), "{ec:?}");
    let shown = ec.to_string();
    assert!(shown.contains("crates/storage/src/readraw.rs:2"), "{shown}");
    assert!(shown.contains("[error-context]"), "{shown}");
}

/// Exit-code contract for the CI gate: clean tree ⇒ 0, the seeded fixture
/// (a deliberate fault-surface bypass among others) ⇒ 1 with every rule
/// named on stdout, usage errors ⇒ 2. Also covers the `--json` artifact
/// both clean and dirty.
#[test]
fn flow_binary_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_graphz-flow");

    // Clean repository ⇒ exit 0 and a clean JSON artifact.
    let json_clean = scratch("flow_json_clean").join("flow_findings.json");
    let out = Command::new(bin)
        .args(["--root", &repo_root().to_string_lossy()])
        .args(["--json", &json_clean.to_string_lossy()])
        .output()
        .expect("run graphz-flow");
    assert!(out.status.success(), "clean tree must exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
    let json = fs::read_to_string(&json_clean).expect("json artifact");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(json.contains("\"tool\": \"graphz-flow\""));

    // Seeded fixture ⇒ exit 1, every rule named on stdout, findings in JSON.
    let root = scratch("flow_fixture_exit");
    seed_fixture(&root, false);
    let json_bad = root.join("flow_findings.json");
    let out = Command::new(bin)
        .args(["--root", &root.to_string_lossy()])
        .args(["--json", &json_bad.to_string_lossy()])
        .output()
        .expect("run graphz-flow");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in FLOW_RULES {
        assert!(stdout.contains(rule.name), "stdout must name {}: {stdout}", rule.name);
    }
    assert!(stdout.contains("flow:allow("), "must print the suppression hint: {stdout}");
    let json = fs::read_to_string(&json_bad).expect("json artifact");
    assert!(json.contains("\"rule\": \"fault-surface-bypass\""), "{json}");

    // Usage error ⇒ exit 2.
    let out = Command::new(bin).arg("--no-such-flag").output().expect("run graphz-flow");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --list-rules names every rule and exits 0.
    let out = Command::new(bin).arg("--list-rules").output().expect("run graphz-flow");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in FLOW_RULES {
        assert!(stdout.contains(rule.name), "{stdout}");
    }
}

/// `graphz-report` merges per-tool artifacts: the combined document embeds
/// each input and its top-level count is the sum of theirs.
#[test]
fn report_binary_merges_artifacts() {
    let bin = env!("CARGO_BIN_EXE_graphz-report");
    let dir = scratch("flow_report_merge");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    fs::write(&a, "{\n    \"tool\": \"graphz-lint\",\n    \"count\": 2\n}\n").unwrap();
    fs::write(&b, "{\n    \"tool\": \"graphz-flow\",\n    \"count\": 3\n}\n").unwrap();
    let out_path = dir.join("analysis_findings.json");
    let out = Command::new(bin)
        .args(["--out", &out_path.to_string_lossy()])
        .arg(format!("graphz-lint={}", a.display()))
        .arg(format!("graphz-flow={}", b.display()))
        .output()
        .expect("run graphz-report");
    assert!(out.status.success(), "{out:?}");
    let json = fs::read_to_string(&out_path).expect("combined artifact");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"count\": 5"), "{json}");
    assert!(json.contains("\"graphz-lint\""), "{json}");
    assert!(json.contains("\"graphz-flow\""), "{json}");

    // Missing --out or unreadable inputs ⇒ exit 2.
    let out = Command::new(bin).arg("tool=/no/such/file.json").output().expect("run");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
