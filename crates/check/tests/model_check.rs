//! Schedule-exploration gate over the pipeline model (ISSUE 3 tentpole).
//!
//! Three layers of evidence, all offline and deterministic:
//!
//! 1. **Seeded sweeps** — hundreds of pseudo-random schedules of the full
//!    7-node pipeline (Sio → Dispatcher → Worker×N → Engine ⇄ MsgManager /
//!    Prefetcher), at default queue capacities and at the adversarial
//!    capacity-1 setting. Every schedule must complete (no deadlock, no
//!    livelock) and leave bit-identical vertex state on the model disk.
//! 2. **Exhaustive pass** — *every* schedule of a 2-shard / capacity-1
//!    configuration, enumerated to completion (`complete == true`). The
//!    full pipeline's schedule tree is beyond exhaustive enumeration (a
//!    2M-schedule bounded probe did not exhaust it), so completeness is
//!    proven on the minimal sub-model that still contains the race we care
//!    about: two parallel Workers racing their barrier flushes into the
//!    shared results queue, merged in (shard, send-order).
//! 3. **Bounded exhaustive prefix** — the first `max_schedules` schedules
//!    of the full pipeline's DFS tree at capacity 1, as a structured (not
//!    random) probe of the exact interleavings nearest the all-zeros
//!    schedule, again asserting completion + bit-identical output.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crossbeam::model::{
    explore_exhaustive, explore_seeded, ChanId, ModelSpec, Node, Outcome, Poll, Queues,
    RecvState, Want,
};
use graphz_check::pipeline::{build_with_plan, golden, Disk, Msg, Pipeline, TinyGraph};
use graphz_core::model_hooks::shard_of;
use graphz_types::EngineOptions;

/// Per-run output logs, index-aligned with a sweep's `runs` (the explorers
/// call `make` exactly once per run, in order).
type DiskLog = Rc<RefCell<Vec<Disk>>>;
type Counters = Rc<RefCell<Vec<u64>>>;
type CounterLog = Rc<RefCell<Vec<Counters>>>;

/// Build-per-run helper: returns the `make` closure `explore_*` needs and a
/// shared log of each run's disk.
fn pipeline_factory(
    graph: TinyGraph,
    rounds: u32,
    options: EngineOptions,
    plan: Vec<(u32, u32)>,
) -> (impl FnMut() -> Vec<Box<dyn Node<Msg>>>, DiskLog) {
    let disks: DiskLog = Rc::new(RefCell::new(Vec::new()));
    let log = Rc::clone(&disks);
    let make = move || {
        let p: Pipeline = build_with_plan(&graph, rounds, &options, plan.clone());
        log.borrow_mut().push(Rc::clone(&p.disk));
        p.nodes
    };
    (make, disks)
}

#[test]
fn seeded_sweep_explores_100_distinct_schedules_bit_identical() {
    let graph = TinyGraph::ring_with_chords();
    let rounds = 2;
    let want = golden(&graph, rounds);
    let (make, disks) = pipeline_factory(
        graph,
        rounds,
        EngineOptions::default(),
        vec![(0, 3), (3, 6)],
    );
    let mut spec_pipe = build_with_plan(
        &TinyGraph::ring_with_chords(),
        rounds,
        &EngineOptions::default(),
        vec![(0, 3), (3, 6)],
    );
    spec_pipe.nodes.clear(); // only the spec is needed here
    let sweep = explore_seeded(&spec_pipe.spec, make, 0..160, 500_000);

    assert_eq!(sweep.runs.len(), 160);
    assert!(
        sweep.distinct >= 100,
        "want >= 100 distinct schedules, got {}",
        sweep.distinct
    );
    for ((seed, run), disk) in sweep.runs.iter().zip(disks.borrow().iter()) {
        assert_eq!(run.outcome, Outcome::Completed, "seed {seed} did not complete");
        assert_eq!(*disk.borrow(), want, "seed {seed} diverged from golden output");
    }
}

#[test]
fn seeded_sweep_capacity_one_no_deadlock_bit_identical() {
    let graph = TinyGraph::ring_with_chords();
    let rounds = 2;
    let want = golden(&graph, rounds);
    let options = EngineOptions::default().with_queue_cap(1);
    let (make, disks) =
        pipeline_factory(graph, rounds, options, vec![(0, 2), (2, 4), (4, 6)]);
    let spec_pipe = build_with_plan(
        &TinyGraph::ring_with_chords(),
        rounds,
        &options,
        vec![(0, 2), (2, 4), (4, 6)],
    );
    let sweep = explore_seeded(&spec_pipe.spec, make, 0..160, 500_000);

    assert!(sweep.distinct >= 100, "got {} distinct", sweep.distinct);
    for ((seed, run), disk) in sweep.runs.iter().zip(disks.borrow().iter()) {
        assert!(
            !matches!(run.outcome, Outcome::Deadlock { .. }),
            "seed {seed} deadlocked: {:?}",
            run.outcome
        );
        assert_eq!(run.outcome, Outcome::Completed, "seed {seed} did not complete");
        assert_eq!(*disk.borrow(), want, "seed {seed} diverged at capacity 1");
    }
}

#[test]
fn bounded_exhaustive_prefix_full_pipeline_capacity_one() {
    // 4-vertex cycle, 2 real shards, every queue at capacity 1, 1 round.
    // The full tree exceeds 2M schedules; this enumerates the DFS prefix.
    let graph = TinyGraph { edges: vec![vec![1], vec![2], vec![3], vec![0]] };
    let want = golden(&graph, 1);
    let options = EngineOptions::default().with_queue_cap(1);
    let (make, disks) =
        pipeline_factory(graph, 1, options, vec![(0, 2), (2, 4)]);
    let spec_pipe = build_with_plan(
        &TinyGraph { edges: vec![vec![1], vec![2], vec![3], vec![0]] },
        1,
        &options,
        vec![(0, 2), (2, 4)],
    );
    let sweep = explore_exhaustive(&spec_pipe.spec, make, 100_000, 3_000);

    assert!(!sweep.runs.is_empty());
    for (i, run) in sweep.runs.iter().enumerate() {
        assert!(
            !matches!(run.outcome, Outcome::Deadlock { .. }),
            "schedule {i} deadlocked: {:?}",
            run.outcome
        );
        assert_eq!(run.outcome, Outcome::Completed, "schedule {i} did not complete");
        assert_eq!(*disks.borrow()[i].borrow(), want, "schedule {i} diverged");
    }
}

// ---------------------------------------------------------------------------
// Exhaustive (complete) pass on the minimal 2-shard / capacity-1 sub-model.
// ---------------------------------------------------------------------------

/// Dispatcher half of the sub-model: routes each vertex's batch to its
/// shard's capacity-1 queue via the engine's real [`shard_of`], then closes.
struct MiniDispatcher {
    items: VecDeque<(usize, Msg)>,
    outs: Vec<ChanId>,
    closed: bool,
}

impl Node<Msg> for MiniDispatcher {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some((shard, msg)) = self.items.pop_front() {
            match q.try_send(self.outs[shard], msg) {
                Ok(()) => Poll::Ran,
                Err(msg) => {
                    self.items.push_front((shard, msg));
                    Poll::Blocked(Want::Send(self.outs[shard]))
                }
            }
        } else {
            if !self.closed {
                for &c in &self.outs {
                    q.close(c);
                }
                self.closed = true;
            }
            Poll::Done
        }
    }
}

/// Worker half: defers one message per out-edge, flushes the shard's
/// barrier result into the shared capacity-1 results queue on close.
struct MiniWorker {
    shard: usize,
    input: ChanId,
    output: ChanId,
    deferred: Vec<(u32, u64)>,
    pending: Option<Msg>,
    done: bool,
}

impl Node<Msg> for MiniWorker {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some(msg) = self.pending.take() {
            return match q.try_send(self.output, msg) {
                Ok(()) => Poll::Done,
                Err(msg) => {
                    self.pending = Some(msg);
                    Poll::Blocked(Want::Send(self.output))
                }
            };
        }
        if self.done {
            return Poll::Done;
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::Batch { neighbors, .. }) => {
                for d in neighbors {
                    self.deferred.push((d, 1));
                }
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran,
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => {
                self.done = true;
                self.pending = Some(Msg::ShardDone {
                    shard: self.shard,
                    deferred: std::mem::take(&mut self.deferred),
                });
                Poll::Ran
            }
        }
    }
}

/// Merger half: slot-per-shard collection, merge strictly in (shard,
/// send-order) — arrival order must not matter, which is exactly what the
/// exhaustive sweep proves.
struct MiniMerger {
    input: ChanId,
    slots: Vec<Option<Vec<(u32, u64)>>>,
    got: usize,
    out: Rc<RefCell<Vec<u64>>>,
}

impl Node<Msg> for MiniMerger {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if self.got == self.slots.len() {
            return Poll::Done;
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::ShardDone { shard, deferred }) => {
                self.slots[shard] = Some(deferred);
                self.got += 1;
                if self.got == self.slots.len() {
                    let mut counters = self.out.borrow_mut();
                    for slot in &mut self.slots {
                        for (dst, value) in slot.take().unwrap_or_default() {
                            counters[dst as usize] += value;
                        }
                    }
                    return Poll::Done;
                }
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran,
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => Poll::Done,
        }
    }
}

fn mini_model(
    graph: &TinyGraph,
    plan: &[(u32, u32)],
) -> (ModelSpec, impl FnMut() -> Vec<Box<dyn Node<Msg>>>, CounterLog)
{
    let shards = plan.len();
    let mut spec = ModelSpec::default();
    let work: Vec<ChanId> = (0..shards).map(|_| spec.channel("disp2work", 1)).collect();
    let merge = spec.channel("work2merge", 1);
    spec.node("dispatcher", work.clone(), vec![]);
    for &w in &work {
        spec.node("worker", vec![merge], vec![w]);
    }
    spec.node("merger", vec![], vec![merge]);

    let graph = graph.clone();
    let plan: Vec<(u32, u32)> = plan.to_vec();
    let outs: CounterLog = Rc::new(RefCell::new(Vec::new()));
    let log = Rc::clone(&outs);
    let make = move || {
        let items: VecDeque<(usize, Msg)> = (0..graph.num_vertices())
            .map(|v| {
                (
                    shard_of(&plan, v),
                    Msg::Batch { vertex: v, neighbors: graph.edges[v as usize].clone() },
                )
            })
            .collect();
        let out = Rc::new(RefCell::new(vec![0u64; graph.num_vertices() as usize]));
        log.borrow_mut().push(Rc::clone(&out));
        let mut nodes: Vec<Box<dyn Node<Msg>>> = Vec::new();
        nodes.push(Box::new(MiniDispatcher { items, outs: work.clone(), closed: false }));
        for (s, &w) in work.iter().enumerate() {
            nodes.push(Box::new(MiniWorker {
                shard: s,
                input: w,
                output: merge,
                deferred: Vec::new(),
                pending: None,
                done: false,
            }));
        }
        nodes.push(Box::new(MiniMerger {
            input: merge,
            slots: (0..shards).map(|_| None).collect(),
            got: 0,
            out,
        }));
        nodes
    };
    (spec, make, outs)
}

#[test]
fn exhaustive_two_shard_capacity_one_complete_and_bit_identical() {
    // 2-vertex cycle, one vertex per shard; every queue capacity 1. Small
    // enough that the DFS enumerates the *entire* schedule tree (even the
    // 4-vertex sub-model exceeds 500k schedules — interleaving explosion).
    let graph = TinyGraph { edges: vec![vec![1], vec![0]] };
    let plan = [(0u32, 1u32), (1, 2)];
    let want = golden(&graph, 1);
    let (spec, make, outs) = mini_model(&graph, &plan);
    let sweep = explore_exhaustive(&spec, make, 10_000, 500_000);

    assert!(
        sweep.complete,
        "schedule tree not exhausted within bound ({} runs)",
        sweep.runs.len()
    );
    assert!(sweep.runs.len() >= 2, "expected real scheduling freedom");
    for (i, run) in sweep.runs.iter().enumerate() {
        assert!(
            !matches!(run.outcome, Outcome::Deadlock { .. }),
            "schedule {i} deadlocked: {:?}",
            run.outcome
        );
        assert_eq!(run.outcome, Outcome::Completed, "schedule {i} did not complete");
        assert_eq!(*outs.borrow()[i].borrow(), want, "schedule {i} diverged");
    }
}
