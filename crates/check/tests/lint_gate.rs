//! End-to-end gate for `graphz-lint`: the real repository must lint clean,
//! and a fixture tree seeded with one violation per rule must trip every
//! rule (ISSUE 3 acceptance: "exits non-zero when a seeded violation is
//! introduced in a fixture test").

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use graphz_check::lint::{lint_tree, RULES};
use graphz_check::stale::stale_tree;

/// A scratch directory under the target dir, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, contents).expect("write fixture file");
}

#[test]
fn repository_lints_clean() {
    // crates/check/ → workspace root.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let mut violations = lint_tree(repo).expect("lint repo");
    violations.extend(stale_tree(repo).expect("stale-suppression scan"));
    assert!(
        violations.is_empty(),
        "repository must lint clean, got:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let root = scratch("lint_fixture_bad");

    // no-unwrap: in-scope core source using unwrap outside tests.
    write(
        &root,
        "crates/core/src/engine.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    // no-thread-spawn: raw spawn outside the pipeline allowlist.
    write(
        &root,
        "crates/core/src/rogue.rs",
        "pub fn g() { std::thread::spawn(|| {}); }\n",
    );
    // no-wall-clock: timing a deterministic compute path.
    write(
        &root,
        "crates/core/src/worker.rs",
        "pub fn h() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // no-unordered-iter: iterating a HashMap feeding the ordered merge.
    write(
        &root,
        "crates/core/src/msgmanager.rs",
        "use std::collections::HashMap;\n\
         pub fn k() -> u64 {\n\
             let m: HashMap<u32, u64> = HashMap::new();\n\
             let mut s = 0;\n\
             for (_k, v) in m.iter() { s += v; }\n\
             s\n\
         }\n",
    );
    // no-new-deps: a version-pinned external dependency.
    write(
        &root,
        "crates/core/Cargo.toml",
        "[package]\nname = \"fixture\"\n[dependencies]\nserde = \"1.0\"\n",
    );
    // no-unsafe: an unsafe block anywhere.
    write(
        &root,
        "crates/io/src/lib.rs",
        "pub fn p(x: *const u8) -> u8 { unsafe { *x } }\n",
    );
    // stale-suppression: a marker with nothing underneath it to suppress.
    write(
        &root,
        "crates/io/src/clean.rs",
        "// lint:allow(no-unwrap)\npub fn q() -> u8 { 0 }\n",
    );

    let mut violations = lint_tree(&root).expect("lint fixture");
    violations.extend(stale_tree(&root).expect("stale-suppression scan"));
    let tripped: BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
    let all: BTreeSet<&str> = RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        tripped, all,
        "every rule must fire on the seeded fixture; violations:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn suppressions_silence_seeded_violations() {
    let root = scratch("lint_fixture_allowed");
    write(
        &root,
        "crates/core/src/engine.rs",
        "// lint:allow(no-unwrap)\n\
         pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n\
         pub fn g() { std::thread::spawn(|| {}); } // lint:allow(no-thread-spawn)\n",
    );
    let violations = lint_tree(&root).expect("lint fixture");
    assert!(
        violations.is_empty(),
        "lint:allow must suppress, got:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn violation_report_names_file_line_and_rule() {
    let root = scratch("lint_fixture_report");
    write(
        &root,
        "crates/core/src/engine.rs",
        "// first line\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let violations = lint_tree(&root).expect("lint fixture");
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.rule, "no-unwrap");
    assert_eq!(v.line, 2);
    assert!(v.path.ends_with("crates/core/src/engine.rs"));
    let rendered = v.to_string();
    assert!(rendered.contains("engine.rs:2"), "rendered: {rendered}");
    assert!(rendered.contains("[no-unwrap]"), "rendered: {rendered}");
}
