//! End-to-end gate for `graphz-audit` (ISSUE 4 acceptance): the real
//! repository must audit clean, and seeded fixture trees must trip every
//! rule — a lock-order cycle, an unchecked Eq. 1 multiply, a dropped
//! atomic-write tempfile, an unconsumed MsgManager claim, and a silently
//! dropped Result — with the binary exiting non-zero and naming the rule
//! on stdout. Fixture trees are *scanned*, not compiled, so they only need
//! to be token-plausible Rust.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use graphz_check::audit::{audit_tree, AUDIT_RULES};

/// A scratch directory under the target dir, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, contents).expect("write fixture file");
}

fn repo_root() -> &'static Path {
    // crates/check/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

/// One file per rule; `suppress: true` adds an `audit:allow` marker above
/// every seeded violation so the suppression path is tested on the same
/// sources.
fn seed_fixture(root: &Path, suppress: bool) {
    let allow = |rule: &str| {
        if suppress {
            format!("    // audit:allow({rule}) seeded fixture\n")
        } else {
            String::new()
        }
    };

    // lock-order: two functions acquire m1/m2 in opposite orders.
    write(
        root,
        "crates/core/src/locks.rs",
        &format!(
            "pub struct S {{ m1: Mutex<u32>, m2: Mutex<u32> }}\n\
             impl S {{\n\
             pub fn ab(&self) -> u32 {{ let a = self.m1.lock(); \n{}let b = self.m2.lock(); *a + *b }}\n\
             pub fn ba(&self) -> u32 {{ let b = self.m2.lock(); \n{}let a = self.m1.lock(); *a + *b }}\n\
             }}\n",
            allow("lock-order"),
            allow("lock-order"),
        ),
    );

    // unchecked-offset-arith: the paper's Eq. 1 written with bare `+`/`*`,
    // plus a byte-offset multiply.
    write(
        root,
        "crates/storage/src/eq1.rs",
        &format!(
            "pub fn eq1(id_offset: u64, v: u32, first: u32, d: u32) -> u64 {{\n\
             {}    id_offset + u64::from(v - first) * u64::from(d)\n}}\n\
             pub fn byte_offset(offset: u64) -> u64 {{\n{}    offset * 4\n}}\n",
            allow("unchecked-offset-arith"),
            allow("unchecked-offset-arith"),
        ),
    );

    // unchecked-cast: a bare truncating cast in storage.
    write(
        root,
        "crates/storage/src/cast.rs",
        &format!(
            "pub fn truncate(n: u64) -> u32 {{\n{}    n as u32\n}}\n",
            allow("unchecked-cast"),
        ),
    );

    // must-consume: a tempfile written but never committed, and a claim
    // that is read but never retired.
    write(
        root,
        "crates/io/src/leak.rs",
        &format!(
            "pub fn write(dest: &Path, bytes: &[u8]) -> Result<()> {{\n\
             {}    let mut f = AtomicFile::create(dest)?;\n\
             f.write_all(bytes)?;\n    Ok(())\n}}\n",
            allow("must-consume"),
        ),
    );
    write(
        root,
        "crates/core/src/claimleak.rs",
        &format!(
            "pub fn peek(mgr: &mut MsgManager) -> Result<u64> {{\n\
             {}    let c = mgr.claim(0)?;\n    Ok(c.total)\n}}\n",
            allow("must-consume"),
        ),
    );

    // dropped-result: a Result-returning helper called as a bare statement.
    write(
        root,
        "crates/core/src/dropres.rs",
        &format!(
            "fn flush_segment(p: u32) -> Result<()> {{ Ok(()) }}\n\
             pub fn caller(p: u32) {{\n{}    flush_segment(p);\n}}\n",
            allow("dropped-result"),
        ),
    );
}

#[test]
fn repository_audits_clean() {
    let findings = audit_tree(repo_root()).expect("audit repo");
    assert!(
        findings.is_empty(),
        "repository must audit clean, got:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_fixtures_trip_every_rule() {
    let root = scratch("audit_fixture_bad");
    seed_fixture(&root, false);
    let findings = audit_tree(&root).expect("audit fixture");
    let tripped: BTreeSet<&str> = findings.iter().map(|v| v.rule).collect();
    let all: BTreeSet<&str> = AUDIT_RULES.iter().map(|r| r.name).collect();
    assert_eq!(tripped, all, "every audit rule must trip, got:\n{findings:?}");
    // The Eq. 1 fixture is flagged on the offset addition, and the
    // byte-offset multiply separately.
    let arith: Vec<_> =
        findings.iter().filter(|v| v.rule == "unchecked-offset-arith").collect();
    assert!(arith.len() >= 2, "{arith:?}");
    // Both resource leaks (tempfile and claim) are reported.
    let consume: Vec<_> = findings.iter().filter(|v| v.rule == "must-consume").collect();
    assert_eq!(consume.len(), 2, "{consume:?}");
    assert!(consume.iter().any(|v| v.message.contains("AtomicFile")));
    assert!(consume.iter().any(|v| v.message.contains("message claim")));
}

#[test]
fn suppressions_silence_seeded_violations() {
    let root = scratch("audit_fixture_allowed");
    seed_fixture(&root, true);
    let findings = audit_tree(&root).expect("audit fixture");
    assert!(findings.is_empty(), "audit:allow must silence every finding:\n{findings:?}");
}

#[test]
fn findings_name_file_line_and_rule() {
    let root = scratch("audit_fixture_report");
    seed_fixture(&root, false);
    let findings = audit_tree(&root).expect("audit fixture");
    let cast = findings.iter().find(|v| v.rule == "unchecked-cast").expect("cast finding");
    assert_eq!(cast.path, Path::new("crates/storage/src/cast.rs"));
    assert_eq!(cast.line, 2);
    assert!(cast.snippet.contains("n as u32"));
    let shown = cast.to_string();
    assert!(shown.contains("crates/storage/src/cast.rs:2"), "{shown}");
    assert!(shown.contains("[unchecked-cast]"), "{shown}");
}

/// Exit-code contract for the CI gate: clean tree ⇒ 0, each seeded fixture
/// ⇒ non-zero with the rule named on stdout, usage errors ⇒ 2. Also covers
/// the `--json` artifact both clean and dirty.
#[test]
fn audit_binary_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_graphz-audit");

    // Clean repository ⇒ exit 0 and a clean JSON artifact.
    let json_clean = scratch("audit_json_clean").join("audit_findings.json");
    let out = Command::new(bin)
        .args(["--root", &repo_root().to_string_lossy()])
        .args(["--json", &json_clean.to_string_lossy()])
        .output()
        .expect("run graphz-audit");
    assert!(out.status.success(), "clean tree must exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
    let json = fs::read_to_string(&json_clean).expect("json artifact");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(json.contains("\"tool\": \"graphz-audit\""));

    // Seeded fixture ⇒ exit 1, every rule named on stdout, findings in JSON.
    let root = scratch("audit_fixture_exit");
    seed_fixture(&root, false);
    let json_bad = root.join("audit_findings.json");
    let out = Command::new(bin)
        .args(["--root", &root.to_string_lossy()])
        .args(["--json", &json_bad.to_string_lossy()])
        .output()
        .expect("run graphz-audit");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in AUDIT_RULES {
        assert!(stdout.contains(rule.name), "stdout must name {}: {stdout}", rule.name);
    }
    let json = fs::read_to_string(&json_bad).expect("json artifact");
    assert!(json.contains("\"rule\": \"lock-order\""), "{json}");

    // Usage error ⇒ exit 2.
    let out = Command::new(bin).arg("--no-such-flag").output().expect("run graphz-audit");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --list-rules names every rule and exits 0.
    let out = Command::new(bin).arg("--list-rules").output().expect("run graphz-audit");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in AUDIT_RULES {
        assert!(stdout.contains(rule.name), "{stdout}");
    }
}

/// The lint binary shares the JSON artifact contract.
#[test]
fn lint_binary_emits_json() {
    let bin = env!("CARGO_BIN_EXE_graphz-lint");
    let json_path = scratch("lint_json_clean").join("lint_findings.json");
    let out = Command::new(bin)
        .args(["--root", &repo_root().to_string_lossy()])
        .args(["--json", &json_path.to_string_lossy()])
        .output()
        .expect("run graphz-lint");
    assert!(out.status.success(), "{out:?}");
    let json = fs::read_to_string(&json_path).expect("json artifact");
    assert!(json.contains("\"tool\": \"graphz-lint\""), "{json}");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"count\": 0"), "{json}");
}
