//! End-to-end gate for `graphz-ipa` (ISSUE 9 acceptance): the real
//! repository — including the engine hot path this crate certifies — must
//! analyze clean, and seeded fixture trees must trip every rule through a
//! *call chain*: an allocation in a helper the Worker loop calls, an
//! unchecked index behind the Executor feed path, an ungated file-creating
//! sink reached through a mechanism file the flow pass exempts wholesale,
//! a bare fs error `?`-crossing a crate boundary, and an allocation behind
//! a GraphView point query on the serve read path. Fixture trees are
//! *scanned*, not compiled, so they only need to be token-plausible Rust.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use graphz_check::flow::flow_tree;
use graphz_check::ipa::{ipa_tree, IPA_RULES};

/// A scratch directory under the target dir, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, contents).expect("write fixture file");
}

fn repo_root() -> &'static Path {
    // crates/check/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

/// One seeded violation per rule, each reached through at least one call
/// edge; `suppress: true` adds an `ipa:allow` marker directly above every
/// offending site so the suppression path is tested on the same sources.
fn seed_fixture(root: &Path, suppress: bool) {
    let allow = |rule: &str| {
        if suppress {
            format!("    // ipa:allow({rule}) seeded fixture\n")
        } else {
            String::new()
        }
    };

    // hot-path-alloc: the per-message loop calls a helper that allocates.
    write(
        root,
        "crates/core/src/worker.rs",
        &format!(
            "pub struct ShardState {{ sent: u64 }}\n\
             impl ShardState {{\n\
             \x20   pub fn process(&mut self, n: usize) -> u64 {{\n\
             \x20       let buf = staging(n);\n\
             \x20       buf.len() as u64\n\
             \x20   }}\n\
             }}\n\
             fn staging(n: usize) -> Vec<u8> {{\n\
             {}    vec![0u8; n]\n\
             }}\n",
            allow("hot-path-alloc"),
        ),
    );

    // panic-freedom: an unchecked index in a helper the feed path calls.
    write(
        root,
        "crates/core/src/exec.rs",
        &format!(
            "pub struct Executor {{ shards: usize }}\n\
             impl Executor {{\n\
             \x20   pub fn feed(&self, xs: &[u32], i: usize) -> u32 {{\n\
             \x20       pick(xs, i)\n\
             \x20   }}\n\
             }}\n\
             fn pick(xs: &[u32], i: usize) -> u32 {{\n\
             {}    xs[i]\n\
             }}\n",
            allow("panic-freedom"),
        ),
    );

    // fault-surface-reach: an ungated file-creating sink inside a
    // mechanism file (exempt from flow's intraprocedural rule), reached
    // from an ungated storage-crate root.
    write(
        root,
        "crates/io/src/record.rs",
        &format!(
            "pub fn raw_writer(path: &Path) -> Result<File> {{\n\
             {}    Ok(File::create(path)?)\n\
             }}\n",
            allow("fault-surface-reach"),
        ),
    );
    write(
        root,
        "crates/storage/src/pipe.rs",
        "pub fn emit(path: &Path) {\n    let _w = raw_writer(path);\n}\n",
    );

    // serve-read-alloc: a GraphView point query calls a helper that
    // allocates per request.
    write(
        root,
        "crates/serve/src/view.rs",
        &format!(
            "pub struct GraphView {{ hits: u64 }}\n\
             impl GraphView {{\n\
             \x20   pub fn degree(&mut self, v: u32) -> u64 {{\n\
             \x20       label(v)\n\
             \x20   }}\n\
             }}\n\
             fn label(v: u32) -> u64 {{\n\
             {}    let s = format!(\"v{{v}}\");\n\
             \x20   s.len() as u64\n\
             }}\n",
            allow("serve-read-alloc"),
        ),
    );

    // error-context-prop: a bare fs error `?`-crossing io → core.
    write(
        root,
        "crates/io/src/rawread.rs",
        "pub fn read_bare(p: &Path) -> Result<Vec<u8>> {\n    Ok(fs::read(p)?)\n}\n",
    );
    write(
        root,
        "crates/core/src/loader.rs",
        &format!(
            "pub fn load(p: &Path) -> Result<Vec<u8>> {{\n\
             {}    let bytes = read_bare(p)?;\n\
             \x20   Ok(bytes)\n\
             }}\n",
            allow("error-context-prop"),
        ),
    );
}

#[test]
fn repository_is_ipa_clean() {
    let findings = ipa_tree(repo_root()).expect("analyze repo");
    assert!(
        findings.is_empty(),
        "repository must be ipa-clean, got:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_fixtures_trip_every_rule() {
    let root = scratch("ipa_fixture_bad");
    seed_fixture(&root, false);
    let findings = ipa_tree(&root).expect("analyze fixture");
    let tripped: BTreeSet<&str> = findings.iter().map(|v| v.rule).collect();
    let all: BTreeSet<&str> = IPA_RULES.iter().map(|r| r.name).collect();
    assert_eq!(tripped, all, "every ipa rule must trip, got:\n{findings:?}");
}

#[test]
fn suppressions_silence_seeded_violations() {
    let root = scratch("ipa_fixture_allowed");
    seed_fixture(&root, true);
    let findings = ipa_tree(&root).expect("analyze fixture");
    assert!(findings.is_empty(), "ipa:allow must silence every finding:\n{findings:?}");
}

/// The two holes interprocedural analysis closes, demonstrated on cases
/// the flow pass *provably* misses on the same sources: an allocation one
/// call away from the per-message loop (flow has no reachability notion),
/// and an ungated sink inside a mechanism file flow exempts wholesale,
/// reached from an ungated caller in another crate.
#[test]
fn helper_chain_cases_flow_misses() {
    let root = scratch("ipa_fixture_flow_miss");
    // Allocation behind a helper on the hot path.
    write(
        &root,
        "crates/core/src/worker.rs",
        "pub struct ShardState { sent: u64 }\n\
         impl ShardState {\n\
         \x20   pub fn process(&mut self, n: usize) -> u64 {\n\
         \x20       let buf = staging(n);\n\
         \x20       buf.len() as u64\n\
         \x20   }\n\
         }\n\
         fn staging(n: usize) -> Vec<u8> {\n\
         \x20   vec![0u8; n]\n\
         }\n",
    );
    // Ungated sink inside a flow-exempt mechanism file, reached from an
    // ungated storage-crate root.
    write(
        &root,
        "crates/io/src/record.rs",
        "pub fn raw_writer(path: &Path) -> Result<File> {\n    Ok(File::create(path)?)\n}\n",
    );
    write(
        &root,
        "crates/storage/src/pipe.rs",
        "pub fn emit(path: &Path) {\n    let _w = raw_writer(path);\n}\n",
    );

    let flow = flow_tree(&root).expect("flow fixture");
    assert!(flow.is_empty(), "flow must miss both helper-chain cases:\n{flow:?}");

    let ipa = ipa_tree(&root).expect("analyze fixture");
    let alloc = ipa
        .iter()
        .find(|v| v.rule == "hot-path-alloc")
        .expect("hot-path-alloc through the helper");
    assert!(
        alloc.message.contains("core::ShardState::process → core::staging"),
        "finding must show the call chain: {}",
        alloc.message
    );
    let sink = ipa
        .iter()
        .find(|v| v.rule == "fault-surface-reach")
        .expect("fault-surface-reach through the mechanism file");
    assert!(
        sink.message.contains("storage::emit → io::raw_writer"),
        "finding must show the call chain: {}",
        sink.message
    );
}

/// The serve rule's offends set deliberately admits file reads — adjacency
/// stays out-of-core, so `File::open`/`fs::read` behind a point query are
/// the design — while an allocation one call away still trips, with the
/// chain named from the `GraphView` entry method.
#[test]
fn serve_read_path_allows_file_io_but_not_alloc() {
    let root = scratch("ipa_fixture_serve");
    write(
        &root,
        "crates/serve/src/view.rs",
        "pub struct GraphView { hits: u64 }\n\
         impl GraphView {\n\
         \x20   pub fn neighbors_into(&mut self, v: u32) -> u64 {\n\
         \x20       page_in(v) + label(v)\n\
         \x20   }\n\
         }\n\
         fn page_in(v: u32) -> u64 {\n\
         \x20   let _f = File::open(\"edges.bin\");\n\
         \x20   v as u64\n\
         }\n\
         fn label(v: u32) -> u64 {\n\
         \x20   let s = format!(\"v{v}\");\n\
         \x20   s.len() as u64\n\
         }\n",
    );
    let findings = ipa_tree(&root).expect("analyze fixture");
    let serve: Vec<_> = findings.iter().filter(|v| v.rule == "serve-read-alloc").collect();
    assert_eq!(serve.len(), 1, "only the alloc helper must trip:\n{findings:?}");
    assert!(
        serve[0].message.contains("serve::GraphView::neighbors_into → serve::label"),
        "finding must show the call chain: {}",
        serve[0].message
    );
    assert!(serve[0].snippet.contains("format!"), "{:?}", serve[0]);
}

#[test]
fn findings_name_file_line_and_rule() {
    let root = scratch("ipa_fixture_report");
    seed_fixture(&root, false);
    let findings = ipa_tree(&root).expect("analyze fixture");
    let sink = findings
        .iter()
        .find(|v| v.rule == "fault-surface-reach")
        .expect("fault-surface-reach finding");
    assert_eq!(sink.path, Path::new("crates/io/src/record.rs"));
    assert_eq!(sink.line, 2);
    assert!(sink.snippet.contains("File::create"), "{sink:?}");
    let shown = sink.to_string();
    assert!(shown.contains("crates/io/src/record.rs:2"), "{shown}");
    assert!(shown.contains("[fault-surface-reach]"), "{shown}");

    let errctx = findings
        .iter()
        .find(|v| v.rule == "error-context-prop")
        .expect("error-context-prop finding");
    assert_eq!(errctx.path, Path::new("crates/core/src/loader.rs"));
    assert!(errctx.message.contains("io→core"), "{}", errctx.message);
}

/// Exit-code contract for the CI gate: clean tree ⇒ 0, seeded fixture ⇒ 1
/// with every rule named on stdout, usage errors ⇒ 2. Covers the `--json`
/// artifact (schema_version pinned) and the `--dump-callgraph` debug view.
#[test]
fn ipa_binary_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_graphz-ipa");

    // Clean repository ⇒ exit 0 and a clean JSON artifact.
    let json_clean = scratch("ipa_json_clean").join("ipa_findings.json");
    let out = Command::new(bin)
        .args(["--root", &repo_root().to_string_lossy()])
        .args(["--json", &json_clean.to_string_lossy()])
        .output()
        .expect("run graphz-ipa");
    assert!(out.status.success(), "clean tree must exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
    let json = fs::read_to_string(&json_clean).expect("json artifact");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(json.contains("\"tool\": \"graphz-ipa\""));

    // Seeded fixture ⇒ exit 1, every rule named on stdout, findings in JSON.
    let root = scratch("ipa_fixture_exit");
    seed_fixture(&root, false);
    let json_bad = root.join("ipa_findings.json");
    let out = Command::new(bin)
        .args(["--root", &root.to_string_lossy()])
        .args(["--json", &json_bad.to_string_lossy()])
        .output()
        .expect("run graphz-ipa");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in IPA_RULES {
        assert!(stdout.contains(rule.name), "stdout must name {}: {stdout}", rule.name);
    }
    assert!(stdout.contains("ipa:allow("), "must print the suppression hint: {stdout}");
    let json = fs::read_to_string(&json_bad).expect("json artifact");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"hot-path-alloc\""), "{json}");

    // Usage error ⇒ exit 2.
    let out = Command::new(bin).arg("--no-such-flag").output().expect("run graphz-ipa");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // --list-rules names every rule and exits 0.
    let out = Command::new(bin).arg("--list-rules").output().expect("run graphz-ipa");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in IPA_RULES {
        assert!(stdout.contains(rule.name), "{stdout}");
    }

    // --dump-callgraph shows nodes with summaries and resolved edges.
    let out = Command::new(bin)
        .args(["--root", &root.to_string_lossy()])
        .arg("--dump-callgraph")
        .output()
        .expect("run graphz-ipa");
    assert!(out.status.success(), "{out:?}");
    let dump = String::from_utf8_lossy(&out.stdout);
    assert!(dump.contains("core::ShardState::process"), "{dump}");
    assert!(dump.contains("core::staging"), "{dump}");
    assert!(dump.contains("[alloc]"), "summary bits: {dump}");
}
