//! Must-consume protocol analysis and dropped-`Result` detection.
//!
//! **Must-consume** tracks two resource protocols per function:
//!
//! * atomic writes — `AtomicFile::create[_with_faults]` and
//!   `StagedDir::stage[_with_faults]` stage work in a tempfile/tempdir that
//!   only becomes durable on `commit()` (sync + rename). Dropping the value
//!   silently discards the staged bytes.
//! * message claims — `mgr.claim(p)` hands out segments that must be
//!   retired (`consume_claimed`) or released, or the engine replays them.
//!
//! The state machine is escape-based: a bound resource is OK the moment it
//! is *consumed* (a `commit`/`abort`/`release`/`consume*` method call) or
//! *escapes* (appears anywhere not as a method/field receiver — returned,
//! passed as an argument, stored in a struct, `drop`ped explicitly). Only a
//! value that is bound, used exclusively as a receiver of non-consuming
//! methods, and then falls off the end of the function is a finding —
//! exactly the "wrote to the tempfile, forgot the rename" bug. Creation in
//! expression position (`Ok(AtomicFile::create(p)?)`) and explicit
//! discards (`let _ = …`) escape by construction.
//!
//! **Dropped-result** collects the name of every `fn` in the workspace that
//! returns a `Result`, then flags bare call statements (`helper(x);`) whose
//! final call resolves to such a name with the value unused. Statements
//! containing any binding, `?`, control flow, macro `!`, or closure bars
//! are conservatively skipped. Matching is by name only (the parser has no
//! type information), so *method* calls are flagged only when the name is
//! unambiguous: not also defined as a non-Result function anywhere in the
//! workspace, and not one of the ubiquitous std collection/IO method names
//! (`Vec::push` would otherwise match a repo `push` that returns Result).
//! Free-function and `Type::fn` calls match by name directly. The rule
//! backstops `#[must_use]` for the repo's own helpers in positions the
//! compiler cannot see through.

use std::collections::BTreeSet;

use crate::lint::Violation;
use crate::parser::{fn_return_kinds, Function, SourceFile, Token};

use super::{binding_before, finding, path_start, Binding};

/// Fn-name sets split by return type, for the dropped-result rule.
struct ReturnKinds {
    result: BTreeSet<String>,
    plain: BTreeSet<String>,
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    let mut kinds = ReturnKinds { result: BTreeSet::new(), plain: BTreeSet::new() };
    for f in files {
        fn_return_kinds(&f.tokens, &mut kinds.result, &mut kinds.plain);
    }
    for f in files {
        for func in &f.functions {
            must_consume_in(f, func, out);
            dropped_results_in(f, func, &kinds, out);
        }
    }
}

/// Methods that settle a must-consume resource.
fn is_consumer(method: &str) -> bool {
    method == "commit" || method == "abort" || method == "release" || method.starts_with("consume")
}

/// If tokens at `i` start a resource creation, return `(label, expression
/// start index, report line)`.
fn creation_at(t: &[Token], i: usize) -> Option<(&'static str, usize, usize)> {
    // AtomicFile::create(…) / StagedDir::stage(…) (and their fault-injecting
    // variants), plus StageManifest::new(…) — a manifest records a stage's
    // artifacts but only marks the stage durable on `commit()`.
    let ty = t[i].text.as_str();
    if (ty == "AtomicFile" || ty == "StagedDir" || ty == "StageManifest")
        && t.get(i + 1).is_some_and(|x| x.text == "::")
        && t.get(i + 3).is_some_and(|x| x.text == "(")
    {
        let method = t[i + 2].text.as_str();
        let ok = match ty {
            "AtomicFile" => method == "create" || method == "create_with_faults",
            "StageManifest" => method == "new",
            _ => method == "stage" || method == "stage_with_faults",
        };
        if ok {
            let label = match ty {
                "AtomicFile" => "AtomicFile",
                "StageManifest" => "StageManifest",
                _ => "StagedDir",
            };
            // Skip over a leading module path (`io::AtomicFile::create`).
            let mut start = i;
            while start >= 2 && t[start - 1].text == "::" && t[start - 2].is_word() {
                start -= 2;
            }
            return Some((label, start, t[i].line));
        }
    }
    // recv.claim(…): a MsgManager segment claim.
    if t[i].text == "."
        && i > 0
        && t[i - 1].is_name()
        && t.get(i + 1).is_some_and(|x| x.text == "claim")
        && t.get(i + 2).is_some_and(|x| x.text == "(")
    {
        return Some(("message claim", path_start(t, i - 1), t[i + 1].line));
    }
    None
}

fn must_consume_in(file: &SourceFile, func: &Function, out: &mut Vec<Violation>) {
    let t = &file.tokens;
    for i in func.body.clone() {
        let Some((label, start, line)) = creation_at(t, i) else { continue };
        // Expression position and `let _ =` escape by construction.
        let Binding::Named(name) = binding_before(t, start) else { continue };
        check_usage(file, func, i, &name, label, line, out);
    }
}

fn check_usage(
    file: &SourceFile,
    func: &Function,
    creation: usize,
    name: &str,
    label: &'static str,
    line: usize,
    out: &mut Vec<Violation>,
) {
    let t = &file.tokens;
    // Uses begin after the creation statement ends.
    let mut i = creation;
    while i < func.body.end && t[i].text != ";" {
        i += 1;
    }
    let mut consumed = false;
    let mut escaped = false;
    while i < func.body.end {
        if t[i].text == name {
            // `x.name` is a different field, not our binding.
            let is_projection = i > 0 && (t[i - 1].text == "." || t[i - 1].text == "::");
            if !is_projection {
                match t.get(i + 1).map(|x| x.text.as_str()) {
                    Some(".") => {
                        if t.get(i + 2).is_some_and(|m| is_consumer(&m.text)) {
                            consumed = true;
                        }
                        // Other methods/fields are neutral receiver uses.
                    }
                    // Bare occurrence: returned, passed, stored, dropped —
                    // responsibility moves with the value.
                    _ => escaped = true,
                }
            }
        }
        i += 1;
    }
    if !consumed && !escaped {
        finding(
            file,
            "must-consume",
            line,
            format!(
                "`{name}` ({label}) in `{}` is neither consumed \
                 (commit/abort/release/consume_*) nor moved out — dropping it \
                 silently discards the staged work",
                func.name
            ),
            out,
        );
    }
}

/// Tokens whose presence makes a statement ineligible for the
/// dropped-result rule (bindings, control flow, macros, closures,
/// assignments all give the value somewhere to go or make the shape
/// ambiguous).
const STMT_SKIP: &[&str] = &[
    "let", "=", "==", "?", "return", "match", "if", "while", "for", "loop", "else", "=>", "!",
    "break", "continue", "await", "move", "|", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "..",
];

/// Method names so common on std types that a receiver-less name match is
/// meaningless — never flagged as method calls, whatever the repo defines.
const STD_METHODS: &[&str] = &[
    "push", "push_str", "insert", "remove", "extend", "write", "write_all", "read", "flush",
    "send", "recv", "wait", "clear", "sort", "set", "get", "next", "clone",
];

fn dropped_results_in(
    file: &SourceFile,
    func: &Function,
    kinds: &ReturnKinds,
    out: &mut Vec<Violation>,
) {
    let t = &file.tokens;
    let mut start = func.body.start;
    for i in func.body.clone() {
        match t[i].text.as_str() {
            "{" | "}" => start = i + 1,
            ";" => {
                check_statement(file, func, &t[start..i], kinds, out);
                start = i + 1;
            }
            _ => {}
        }
    }
}

fn check_statement(
    file: &SourceFile,
    func: &Function,
    stmt: &[Token],
    kinds: &ReturnKinds,
    out: &mut Vec<Violation>,
) {
    if stmt.last().is_none_or(|x| x.text != ")") {
        return;
    }
    if stmt.iter().any(|x| STMT_SKIP.contains(&x.text.as_str())) {
        return;
    }
    // The last call at paren depth 0 produces the statement's value.
    let mut depth = 0i64;
    let mut callee: Option<usize> = None;
    for (k, x) in stmt.iter().enumerate() {
        match x.text.as_str() {
            "(" => {
                if depth == 0 && k >= 1 && stmt[k - 1].is_name() {
                    callee = Some(k - 1);
                }
                depth += 1;
            }
            ")" => depth -= 1,
            _ => {}
        }
    }
    let Some(at) = callee else { return };
    let c = &stmt[at];
    if !kinds.result.contains(&c.text) {
        return;
    }
    // Method calls resolve by receiver type, which a token scan does not
    // have: require the name to be unambiguous across the workspace and
    // not a ubiquitous std method.
    let is_method = at >= 1 && stmt[at - 1].text == ".";
    if is_method && (kinds.plain.contains(&c.text) || STD_METHODS.contains(&c.text.as_str())) {
        return;
    }
    finding(
        file,
        "dropped-result",
        c.line,
        format!(
            "result of `{}` (returns Result) is silently dropped in `{}` — \
             handle it, `?` it, or bind `let _ =` deliberately",
            c.text, func.name
        ),
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn audit(src: &str) -> Vec<Violation> {
        let files = vec![parse_source("crates/core/src/a.rs", src)];
        let mut out = Vec::new();
        analyze(&files, &mut out);
        out
    }

    #[test]
    fn committed_atomic_file_is_clean() {
        let src = "fn w(dest: &Path, b: &[u8]) -> Result<()> {\n\
                   let mut f = AtomicFile::create(dest)?;\n f.write_all(b)?;\n f.commit()?;\n Ok(())\n}";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn dropped_tempfile_is_flagged() {
        let src = "fn w(dest: &Path, b: &[u8]) -> Result<()> {\n\
                   let mut f = AtomicFile::create(dest)?;\n f.write_all(b)?;\n Ok(())\n}";
        let v = audit(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "must-consume");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn escape_counts_as_handing_over() {
        // Returned, passed as an argument, or explicitly dropped: all fine.
        let src = "fn a(d: &Path) -> Result<AtomicFile> { let f = AtomicFile::create(d)?; Ok(f) }\n\
                   fn b(d: &Path) -> Result<()> { let f = AtomicFile::create(d)?; finish(f) }\n\
                   fn c(d: &Path) -> Result<()> { let f = AtomicFile::create(d)?; drop(f); Ok(()) }";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn expression_position_and_let_underscore_are_ok() {
        let src = "fn a(d: &Path) -> Result<AtomicFile> { Ok(AtomicFile::create(d)?) }\n\
                   fn b(d: &Path) { let _ = StagedDir::stage(d); }";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn uncommitted_stage_manifest_is_flagged() {
        let src = "fn record(dir: &Path) -> Result<()> {\n\
                   let mut m = StageManifest::new(\"triads\");\n\
                   m.set(\"assigned\", \"7\");\n Ok(())\n}";
        let v = audit(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("StageManifest"), "{}", v[0].message);
        let src = "fn record(dir: &Path, s: &FaultSurface) -> Result<()> {\n\
                   let mut m = StageManifest::new(\"triads\");\n\
                   m.set(\"assigned\", \"7\");\n m.commit(&dir.join(\"m\"), s)?;\n Ok(())\n}";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn unconsumed_claim_is_flagged() {
        let src = "fn peek(mgr: &mut MsgManager) -> Result<u64> {\n\
                   let c = mgr.claim(0)?;\n Ok(c.total)\n}";
        let v = audit(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("message claim"), "{}", v[0].message);
    }

    #[test]
    fn claim_passed_to_the_manager_is_clean() {
        let src = "fn run(mgr: &mut MsgManager) -> Result<()> {\n\
                   let c = mgr.claim(0)?;\n mgr.consume_claimed(&c, 0)?;\n Ok(())\n}";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn dropped_result_statement_is_flagged() {
        let src = "fn helper(x: u32) -> Result<()> { Ok(()) }\n\
                   fn caller(x: u32) { helper(x); }";
        let v = audit(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "dropped-result");
        assert!(v[0].message.contains("helper"));
    }

    #[test]
    fn handled_results_are_clean() {
        let src = "fn helper(x: u32) -> Result<()> { Ok(()) }\n\
                   fn a(x: u32) -> Result<()> { helper(x)?; Ok(()) }\n\
                   fn b(x: u32) { let _ = helper(x); }\n\
                   fn c(x: u32) { if helper(x).is_ok() { } }\n\
                   fn d(x: u32) { other(x); }";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn suppression_marker_works() {
        let src = "fn w(dest: &Path) -> Result<()> {\n\
                   // audit:allow(must-consume) intentionally abandoned on error\n\
                   let f = AtomicFile::create(dest)?;\n Ok(())\n}";
        assert!(audit(src).is_empty());
    }
}
