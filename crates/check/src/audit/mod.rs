//! graphz-audit: per-function dataflow and protocol analysis.
//!
//! Three analyses over the token streams produced by [`crate::parser`],
//! documented in DESIGN.md §6f:
//!
//! * [`lockorder`] — extracts every `Mutex`/`RwLock` acquisition and the
//!   static nesting between them, builds the global acquisition-order
//!   graph, and fails on any cycle (inconsistent lock ordering deadlocks).
//! * [`offsets`] — flags `+`/`*`/`as` arithmetic directly adjacent to
//!   offset-like identifiers, and every bare `as <int>` cast in the storage
//!   and extsort crates; both must flow through `graphz_types::cast` so
//!   overflow surfaces as `GraphError::OffsetOverflow`.
//! * [`protocol`] — must-consume state machines for atomic-write staging
//!   (`AtomicFile`/`StagedDir` must commit, abort, or escape) and
//!   `MsgManager` claims (consume, release, or escape), plus detection of
//!   call statements that silently drop a `Result`.
//!
//! Findings reuse the lint pass's [`Violation`] shape and suppression
//! convention: `// audit:allow(<rule>)` on the offending line or the line
//! above silences one rule at one site.

pub mod lockorder;
pub mod offsets;
pub mod protocol;

use std::path::{Path, PathBuf};

use crate::lint::{Rule, Violation};
use crate::parser::{parse_tree, SourceFile, Token};

/// Every audit rule, in reporting order. The `scope` path substrings bound
/// where each analysis *reports*; the token scans themselves are global so
/// cross-crate facts (lock declarations, Result-returning function names)
/// are complete.
pub const AUDIT_RULES: &[Rule] = &[
    Rule {
        name: "lock-order",
        why: "two code paths that acquire the same locks in different orders \
              can deadlock; the acquisition graph must stay acyclic",
        scope: &[
            "crates/core/",
            "crates/io/",
            "crates/storage/",
            "crates/check/",
            // The sharded extsort (PR 5) is deliberately lock-free — chunks
            // move over channels — so keeping it in scope is a cheap
            // invariant: any future Mutex here joins the global order graph.
            "crates/extsort/",
            // The serve read path is lock-free by design (each reader owns
            // its view); in-scope so any future lock joins the order graph.
            "crates/serve/",
        ],
        allow: &[],
    },
    Rule {
        name: "unchecked-offset-arith",
        why: "file offsets, cursors, and byte lengths must use checked or \
              explicitly widening arithmetic (graphz_types::cast) so overflow \
              becomes GraphError::OffsetOverflow, not a wrapped seek",
        scope: &["crates/storage/src/", "crates/extsort/src/", "crates/io/src/"],
        allow: &[],
    },
    Rule {
        name: "unchecked-cast",
        why: "bare `as` integer casts truncate silently; narrowing flows \
              through graphz_types::cast / try_into with a typed error",
        scope: &["crates/storage/src/", "crates/extsort/src/"],
        allow: &[],
    },
    Rule {
        name: "must-consume",
        why: "an AtomicFile/StagedDir that is dropped without commit silently \
              discards staged work, and an unretired MsgManager claim replays \
              segments; every claim must be consumed, released, or moved on",
        scope: &[],
        allow: &[],
    },
    Rule {
        name: "dropped-result",
        why: "a bare call statement that ignores a Result hides the error \
              path; handle it, `?` it, or bind `let _ =` deliberately",
        scope: &[],
        allow: &[],
    },
];

pub(crate) fn audit_rule(name: &str) -> &'static Rule {
    AUDIT_RULES
        .iter()
        .find(|r| r.name == name)
        .unwrap_or(&AUDIT_RULES[0]) // names are compile-time constants; unreachable
}

pub(crate) fn in_scope(name: &str, rel: &str) -> bool {
    let r = audit_rule(name);
    (r.scope.is_empty() || r.scope.iter().any(|s| rel.contains(s)))
        && !r.allow.iter().any(|a| rel.contains(a))
}

/// Record a finding unless the rule is out of scope for this file or an
/// `audit:allow(<rule>)` marker on the line (or the line above) suppresses
/// it. All three analyses report through here.
pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
    out: &mut Vec<Violation>,
) {
    if !in_scope(rule, &file.rel) {
        return;
    }
    let raw = file.raw.get(line.wrapping_sub(1)).map(String::as_str).unwrap_or("");
    let prev = line.checked_sub(2).and_then(|p| file.raw.get(p)).map(String::as_str);
    let marker = format!("audit:allow({rule})");
    if raw.contains(&marker) || prev.is_some_and(|p| p.contains(&marker)) {
        return;
    }
    out.push(Violation { rule, path: PathBuf::from(&file.rel), line, snippet: raw.to_string(), message });
}

/// How the value of an expression starting at token index `start` is bound.
pub(crate) enum Binding {
    /// Bound to a named variable (`let name = …`, `let mut name = …`, or a
    /// reassignment `name = …`).
    Named(String),
    /// Explicitly discarded with `let _ = …`.
    Discard,
    /// Expression position — the value flows onward (returned, passed as an
    /// argument, chained) rather than being bound here.
    Expression,
}

/// Walk left from the first token of a receiver/path expression over
/// `seg.`/`seg::` pairs to the start of the whole path.
pub(crate) fn path_start(t: &[Token], mut r: usize) -> usize {
    while r >= 2 && (t[r - 1].text == "." || t[r - 1].text == "::") && t[r - 2].is_word() {
        r -= 2;
    }
    r
}

/// Classify how the expression beginning at token index `start` is bound,
/// by looking at the tokens immediately before it.
pub(crate) fn binding_before(t: &[Token], start: usize) -> Binding {
    if start == 0 || t[start - 1].text != "=" {
        return Binding::Expression;
    }
    match t.get(start.wrapping_sub(2)) {
        Some(prev) if prev.text == "_" => Binding::Discard,
        Some(prev) if prev.is_name() => Binding::Named(prev.text.clone()),
        _ => Binding::Expression,
    }
}

/// Run every analysis over already-parsed files; findings are sorted by
/// path and line and deduplicated.
pub fn audit_files(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    lockorder::analyze(files, &mut out);
    offsets::analyze(files, &mut out);
    protocol::analyze(files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| (&a.path, a.line, a.rule, &a.message) == (&b.path, b.line, b.rule, &b.message));
    out
}

/// Parse and audit the tree rooted at `root` (see [`parse_tree`] for the
/// file scope).
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(audit_files(&parse_tree(root)?))
}
