//! Lock-order analysis: build the global lock-acquisition graph and fail
//! on cycles.
//!
//! Lock identity is the *declared binding name* — the identifier bound to a
//! `Mutex<…>`/`RwLock<…>` type annotation or a `Mutex::new(…)` initializer,
//! collected across every scanned file. Acquisitions are `.lock()` on any
//! receiver, and `.read()`/`.write()` only on receivers whose name is a
//! declared `RwLock` (plain `.read()`/`.write()` are ubiquitous IO methods).
//! The receiver's last path segment names the lock, so `self.state.completed
//! .lock()` and `thread_state.completed.lock()` are the same lock — which is
//! exactly the aliasing that makes runtime lock ordering hard to see.
//!
//! Guard lifetime is tracked statically: a guard bound with `let g = …`
//! lives until its enclosing brace closes or an explicit `drop(g)`; an
//! unbound temporary (`x.lock().…;`) dies at the end of its statement.
//! Acquiring lock B while A is held adds the edge A → B; a cycle in the
//! resulting graph means two code paths disagree about ordering and can
//! deadlock each other. Re-acquiring a lock already held is reported
//! immediately (self-deadlock for non-reentrant `std::sync` locks).

use std::collections::{BTreeMap, BTreeSet};

use crate::lint::Violation;
use crate::parser::{Function, SourceFile, Token};

use super::{binding_before, finding, in_scope, path_start, Binding};

const RULE: &str = "lock-order";

/// `name → "Mutex" | "RwLock"` for every binding declared with a lock type.
fn declared_locks(files: &[SourceFile]) -> BTreeMap<String, &'static str> {
    let mut locks = BTreeMap::new();
    for f in files {
        let t = &f.tokens;
        for i in 0..t.len() {
            let kind = match t[i].text.as_str() {
                "Mutex" => "Mutex",
                "RwLock" => "RwLock",
                _ => continue,
            };
            let next = t.get(i + 1).map(|x| x.text.as_str());
            let is_type = next == Some("<");
            let is_ctor = next == Some("::") && t.get(i + 2).is_some_and(|x| x.text == "new");
            if !is_type && !is_ctor {
                continue;
            }
            if let Some(name) = bound_name(t, i) {
                locks.insert(name, kind);
            }
        }
    }
    locks
}

/// Walk left from a lock type/constructor token over generic wrappers
/// (`Arc<`, `&`), path segments, and the type name itself to the `name:` or
/// `name =` that binds it. Bounded lookback keeps pathological lines cheap.
fn bound_name(t: &[Token], at: usize) -> Option<String> {
    let stop = at.saturating_sub(12);
    let mut j = at;
    while j > stop {
        j -= 1;
        match t[j].text.as_str() {
            "<" | "::" | "&" => {}
            ":" | "=" => {
                return t
                    .get(j.checked_sub(1)?)
                    .filter(|x| x.is_name())
                    .map(|x| x.text.clone());
            }
            _ if t[j].is_name() => {} // wrapper type like Arc / std path segment
            _ => return None,
        }
    }
    None
}

/// A lock currently held at some point of the static scan.
struct Held {
    lock: String,
    /// Brace depth (relative to the function body) at acquisition.
    depth: i64,
    /// Guard variable, when bound by name (releasable via `drop(name)`).
    guard: Option<String>,
    /// Unbound temporary: released at the end of the statement.
    temporary: bool,
}

type Edges = BTreeMap<(String, String), (usize, usize)>;

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    let locks = declared_locks(files);
    // (held, acquired) → first witness (file index, line).
    let mut edges: Edges = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !in_scope(RULE, &f.rel) {
            continue;
        }
        for func in &f.functions {
            scan_function(f, fi, func, &locks, &mut edges, out);
        }
    }
    report_cycles(files, &edges, out);
}

fn is_acquisition(t: &[Token], i: usize, locks: &BTreeMap<String, &'static str>) -> bool {
    if t[i].text != "." || i == 0 || !t[i - 1].is_name() {
        return false;
    }
    let method = match t.get(i + 1) {
        Some(m) => m.text.as_str(),
        None => return false,
    };
    if t.get(i + 2).is_none_or(|x| x.text != "(") {
        return false;
    }
    match method {
        "lock" => t.get(i + 3).is_some_and(|x| x.text == ")"),
        "read" | "write" => locks.get(&t[i - 1].text) == Some(&"RwLock"),
        _ => false,
    }
}

fn scan_function(
    file: &SourceFile,
    fi: usize,
    func: &Function,
    locks: &BTreeMap<String, &'static str>,
    edges: &mut Edges,
    out: &mut Vec<Violation>,
) {
    let t = &file.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    for i in func.body.clone() {
        match t[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            ";" => held.retain(|h| !(h.temporary && h.depth == depth)),
            "drop" if t.get(i + 1).is_some_and(|x| x.text == "(") => {
                if let Some(g) = t.get(i + 2).filter(|x| x.is_name()) {
                    held.retain(|h| h.guard.as_deref() != Some(g.text.as_str()));
                }
            }
            "." if is_acquisition(t, i, locks) => {
                let lock = t[i - 1].text.clone();
                let line = t[i + 1].line;
                for h in &held {
                    if h.lock == lock {
                        finding(
                            file,
                            RULE,
                            line,
                            format!(
                                "`{lock}` acquired while a guard for it is still live in \
                                 `{}` — std::sync locks are not reentrant (self-deadlock)",
                                func.name
                            ),
                            out,
                        );
                    } else {
                        edges.entry((h.lock.clone(), lock.clone())).or_insert((fi, line));
                    }
                }
                let (guard, temporary) = match binding_before(t, path_start(t, i - 1)) {
                    Binding::Named(name) => (Some(name), false),
                    // `let _ = x.lock()` drops the guard immediately.
                    Binding::Discard | Binding::Expression => (None, true),
                };
                held.push(Held { lock, depth, guard, temporary });
            }
            _ => {}
        }
    }
}

fn report_cycles(files: &[SourceFile], edges: &Edges, out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    // Colors: 0 unvisited, 1 on the current DFS path, 2 done.
    let mut color: BTreeMap<&str, u8> = adj.keys().map(|&n| (n, 0u8)).collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color[n] == 0 {
            let mut path = Vec::new();
            dfs(n, &adj, &mut color, &mut path, files, edges, &mut reported, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
    path: &mut Vec<&'a str>,
    files: &[SourceFile],
    edges: &Edges,
    reported: &mut BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    color.insert(node, 1);
    path.push(node);
    for &next in &adj[node] {
        match color[next] {
            0 => dfs(next, adj, color, path, files, edges, reported, out),
            1 => {
                let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                let cycle: Vec<&str> = path[pos..].to_vec();
                // Canonical form (rotated to the smallest element) so the
                // same cycle discovered from different entry points reports
                // once.
                let min = cycle.iter().enumerate().min_by_key(|(_, n)| **n).map_or(0, |(k, _)| k);
                let canon: Vec<&str> =
                    cycle[min..].iter().chain(cycle[..min].iter()).copied().collect();
                if reported.insert(canon.join("->")) {
                    let &(fi, line) = edges
                        .get(&(node.to_string(), next.to_string()))
                        .unwrap_or(&(0, 1));
                    let chain = canon.join(" -> ");
                    finding(
                        &files[fi],
                        RULE,
                        line,
                        format!(
                            "lock acquisition cycle {chain} -> {} — two paths order these \
                             locks inconsistently and can deadlock each other",
                            canon[0]
                        ),
                        out,
                    );
                }
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(node, 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn audit(src: &str) -> Vec<Violation> {
        let files = vec![parse_source("crates/core/src/a.rs", src)];
        let mut out = Vec::new();
        analyze(&files, &mut out);
        out
    }

    const DECLS: &str = "struct S { m1: Mutex<u32>, m2: Mutex<u32>, rw: RwLock<u32> }\n";

    #[test]
    fn consistent_nesting_is_clean() {
        let src = format!(
            "{DECLS}impl S {{\n fn a(&self) {{ let g1 = self.m1.lock(); let g2 = self.m2.lock(); }}\n \
             fn b(&self) {{ let g1 = self.m1.lock(); let g2 = self.m2.lock(); }}\n}}"
        );
        assert!(audit(&src).is_empty());
    }

    #[test]
    fn inconsistent_order_is_a_cycle() {
        let src = format!(
            "{DECLS}impl S {{\n fn a(&self) {{ let g1 = self.m1.lock(); let g2 = self.m2.lock(); }}\n \
             fn b(&self) {{ let g2 = self.m2.lock(); let g1 = self.m1.lock(); }}\n}}"
        );
        let v = audit(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("m1 -> m2"), "{}", v[0].message);
    }

    #[test]
    fn sequential_acquisition_makes_no_edge() {
        // Guard dropped (block closed / explicit drop / temporary) before
        // the second lock: no nesting, no edge, no cycle.
        let src = format!(
            "{DECLS}impl S {{\n fn a(&self) {{ {{ let g = self.m1.lock(); }} let h = self.m2.lock(); }}\n \
             fn b(&self) {{ let g = self.m2.lock(); drop(g); let h = self.m1.lock(); }}\n \
             fn c(&self) {{ self.m2.lock().x(); let h = self.m1.lock(); }}\n}}"
        );
        assert!(audit(&src).is_empty());
    }

    #[test]
    fn reacquiring_a_held_lock_is_flagged() {
        let src = format!("{DECLS}impl S {{ fn a(&self) {{ let g = self.m1.lock(); let h = self.m1.lock(); }} }}");
        let v = audit(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("self-deadlock"));
    }

    #[test]
    fn rwlock_read_write_only_on_declared_locks() {
        let src = format!(
            "{DECLS}impl S {{ fn a(&self, f: &mut File) {{ let g = self.rw.read(); f.read(); f.write(); }} }}"
        );
        // f.read()/f.write() are IO, not lock acquisitions: no edges at all.
        assert!(audit(&src).is_empty());
        let locks = declared_locks(&[parse_source("crates/core/src/a.rs", &src)]);
        assert_eq!(locks.get("rw"), Some(&"RwLock"));
        assert_eq!(locks.get("m1"), Some(&"Mutex"));
    }

    #[test]
    fn lock_identity_spans_aliasing_receivers() {
        // Same field reached through different roots is the same lock.
        let src = format!(
            "{DECLS}fn a(s: &S, t: &S) {{ let g = s.m1.lock(); let h = t.m2.lock(); }}\n\
             fn b(s: &S) {{ let g = s.m2.lock(); let h = s.m1.lock(); }}"
        );
        let v = audit(&src);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
