//! Checked-arithmetic analysis for the storage layer.
//!
//! Two rules over the token stream:
//!
//! * `unchecked-offset-arith` — an identifier whose name marks it as
//!   offset-like (contains `offset`, `cursor`, `cumul`, `byte_len`, or
//!   `file_len`) must not sit *directly adjacent* to `+`, `*`, `+=`, `*=`,
//!   or a bare `as` cast. DOS Eq. 1 (`id_offset + (v - first_id) * d`),
//!   CSR offset math, and extsort run bookkeeping all flow through
//!   `graphz_types::cast`, which returns `GraphError::OffsetOverflow`
//!   instead of wrapping. Adjacency is deliberately token-local: a tainted
//!   name inside a composite operand (`offsets[i + 1]`, where the neighbour
//!   is a bracket) is a documented blind spot, and a `*` on the left only
//!   counts when the token before it ends an operand (so deref `*offsets`
//!   is not multiplication).
//! * `unchecked-cast` — every bare `as <integer-type>` in the storage and
//!   extsort crates. Narrowing must go through `graphz_types::cast` /
//!   `try_into` with a typed error; the one blessed funnel is the
//!   `graphz-types` crate itself, which is deliberately outside this rule's
//!   scope.

use crate::lint::Violation;
use crate::parser::{SourceFile, Token};

use super::finding;

/// Name fragments that mark an identifier as offset-like.
const TAINT: &[&str] = &["offset", "cursor", "cumul", "byte_len", "file_len"];

/// Integer types whose `as` casts can truncate or reinterpret silently.
/// `as f64` (statistics) and `as VertexId`-style aliases are not matched;
/// aliases resolve to these names at the definition site, which is in the
/// out-of-scope `graphz-types` funnel.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const ADJ_OPS: &[&str] = &["+", "*", "+=", "*="];

fn tainted(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    TAINT.iter().any(|k| lower.contains(k))
}

/// Can this token end an operand? Distinguishes binary `a * b` from a
/// unary deref `*b` by what precedes the star: an identifier, literal, or
/// closing bracket can end an operand; a keyword (`if *x`, `return *x`) or
/// punctuation cannot.
fn ends_operand(t: &Token) -> bool {
    const KEYWORDS: &[&str] = &[
        "if", "else", "match", "return", "while", "in", "let", "mut", "move", "loop", "break",
        "continue", "as", "ref", "box", "yield",
    ];
    (t.is_word() && !KEYWORDS.contains(&t.text.as_str())) || t.text == ")" || t.text == "]"
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    for f in files {
        let t = &f.tokens;
        for i in 0..t.len() {
            let tok = &t[i];
            if tok.is_name() && tainted(&tok.text) {
                let next = t.get(i + 1).map(|x| x.text.as_str()).unwrap_or("");
                let prev = if i > 0 { t[i - 1].text.as_str() } else { "" };
                let prev_is_binary =
                    prev != "*" || (i >= 2 && ends_operand(&t[i - 2]));
                let hit = ADJ_OPS.contains(&next)
                    || next == "as"
                    || (ADJ_OPS.contains(&prev) && prev_is_binary);
                if hit {
                    finding(
                        f,
                        "unchecked-offset-arith",
                        tok.line,
                        format!(
                            "unchecked arithmetic on offset-like `{}` — route it through \
                             graphz_types::cast so overflow surfaces as \
                             GraphError::OffsetOverflow instead of wrapping",
                            tok.text
                        ),
                        out,
                    );
                }
            }
            if tok.text == "as" && t.get(i + 1).is_some_and(|x| INT_TYPES.contains(&x.text.as_str()))
            {
                finding(
                    f,
                    "unchecked-cast",
                    t[i + 1].line,
                    format!(
                        "bare `as {}` cast can truncate silently — use the \
                         graphz_types::cast helpers or try_into with a typed error",
                        t[i + 1].text
                    ),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn audit(rel: &str, src: &str) -> Vec<Violation> {
        let files = vec![parse_source(rel, src)];
        let mut out = Vec::new();
        analyze(&files, &mut out);
        out
    }

    #[test]
    fn eq1_shape_is_flagged_on_both_sides() {
        let v = audit(
            "crates/storage/src/a.rs",
            "fn f(id_offset: u64, rank: u64) -> u64 { id_offset + rank }\n\
             fn g(byte_offset: u64) -> u64 { 4 * byte_offset }\n\
             fn h(mut cursor: u64, n: u64) { cursor += n; }",
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "unchecked-offset-arith"));
        assert_eq!(v[1].line, 2, "right-hand operand of binary * is flagged");
    }

    #[test]
    fn deref_and_checked_calls_are_not_arithmetic() {
        let v = audit(
            "crates/storage/src/a.rs",
            "fn f(offsets: &[u64]) -> u64 { *offsets.last().unwrap_or(&0) }\n\
             fn g(offset: u64, n: u64) -> Option<u64> { offset.checked_add(n) }\n\
             fn h(offset: u64, n: u64) -> Result<u64> { cast::add_u64(offset, n, \"x\") }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn composite_operands_are_a_documented_blind_spot() {
        let v = audit("crates/storage/src/a.rs", "fn f(offsets: &mut [u64], x: u64) { offsets[0] = x; }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn casts_flagged_only_in_storage_and_extsort() {
        let src = "fn f(n: u64) -> u32 { n as u32 }";
        assert_eq!(audit("crates/storage/src/a.rs", src).len(), 1);
        assert_eq!(audit("crates/extsort/src/lib.rs", src).len(), 1);
        assert_eq!(audit("crates/io/src/a.rs", src).len(), 0, "io widenings are exempt");
        assert_eq!(audit("crates/types/src/cast.rs", src).len(), 0, "the blessed funnel");
    }

    #[test]
    fn float_casts_are_not_integer_truncation() {
        assert!(audit("crates/storage/src/a.rs", "fn f(n: u64) -> f64 { n as f64 }").is_empty());
    }

    #[test]
    fn offset_cast_flagged_in_io_too() {
        let v = audit("crates/io/src/a.rs", "fn f(offset: u64) -> usize { offset as usize }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unchecked-offset-arith");
    }

    #[test]
    fn suppression_marker_silences_one_site() {
        let src = "fn f(offset: u64, n: u64) -> u64 {\n    // audit:allow(unchecked-offset-arith) bounded by the caller\n    offset + n\n}";
        assert!(audit("crates/storage/src/a.rs", src).is_empty());
    }
}
