//! Correctness tooling for the GraphZ workspace.
//!
//! Two halves, both fully offline:
//!
//! * [`pipeline`] — a loom-lite model of the Sio → Dispatcher → Worker →
//!   MsgManager → Prefetcher pipeline, run under the virtual scheduler in
//!   `crossbeam::model`. The schedule-exploration tests
//!   (`tests/model_check.rs`) drive hundreds of seeded interleavings plus a
//!   bounded exhaustive pass and assert bit-identical output and deadlock
//!   freedom (via the wait-for-graph cycle detector).
//! * [`lint`] — the repo-invariant lint pass behind the `graphz-lint`
//!   binary (`cargo run -p graphz-check --bin graphz-lint`), enforcing the
//!   named rules documented in DESIGN.md §6e.

#![forbid(unsafe_code)]

pub mod lint;
pub mod pipeline;
