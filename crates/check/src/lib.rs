//! Correctness tooling for the GraphZ workspace.
//!
//! Two halves, both fully offline:
//!
//! * [`pipeline`] — a loom-lite model of the Sio → Dispatcher → Worker →
//!   MsgManager → Prefetcher pipeline, run under the virtual scheduler in
//!   `crossbeam::model`. The schedule-exploration tests
//!   (`tests/model_check.rs`) drive hundreds of seeded interleavings plus a
//!   bounded exhaustive pass and assert bit-identical output and deadlock
//!   freedom (via the wait-for-graph cycle detector).
//! * [`lint`] — the repo-invariant lint pass behind the `graphz-lint`
//!   binary (`cargo run -p graphz-check --bin graphz-lint`), enforcing the
//!   named rules documented in DESIGN.md §6e.
//! * [`audit`] — the dataflow/protocol analyses behind the `graphz-audit`
//!   binary (DESIGN.md §6f): the global lock-acquisition-order graph,
//!   checked offset/cast arithmetic in the storage layer, and the
//!   must-consume protocols for atomic writes and message claims. Built on
//!   [`parser`], a lightweight token/item parser, with machine-readable
//!   reports from [`json`].
//! * [`flow`] — the path-sensitive dataflow analyses behind the
//!   `graphz-flow` binary (DESIGN.md §6j): per-function control-flow
//!   graphs ([`flow::cfg`]) plus a generic worklist solver
//!   ([`flow::solver`]) driving fault-surface coverage, path-complete
//!   must-consume, determinism taint, and error-context rules.
//! * [`ipa`] — the interprocedural analyses behind the `graphz-ipa` binary
//!   (DESIGN.md §6k): a workspace call graph ([`ipa::callgraph`]) with
//!   bottom-up effect summaries ([`ipa::summary`]) proving the Worker hot
//!   path allocation-, lock-, and panic-free and every file-creating sink
//!   fault-gated on all call paths.
//! * [`stale`] — the `stale-suppression` lint: re-runs every analyzer with
//!   suppression markers neutralized and flags `<tool>:allow(<rule>)`
//!   comments that no longer suppress any finding.

#![forbid(unsafe_code)]

pub mod audit;
pub mod flow;
pub mod ipa;
pub mod json;
pub mod lint;
pub mod parser;
pub mod pipeline;
pub mod stale;
