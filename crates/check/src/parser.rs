//! A lightweight Rust token/item parser for the audit pass.
//!
//! The audit analyses (DESIGN.md §6f) need more structure than the lint
//! pass's line scanning — they reason about *functions* (lock scopes,
//! resource lifetimes) and *adjacency in the token stream* (operator
//! neighbours of an identifier). This module provides exactly that much
//! structure and no more: a flat token stream with source lines, plus
//! brace-matched `fn` extents. It is not a grammar; expressions are never
//! built into trees. The deliberate blind spots are documented in
//! DESIGN.md §6f alongside each analysis that inherits them.
//!
//! Input is the output of [`crate::lint::sanitize`], so comments and string
//! literals are already gone and the `audit:allow` suppression markers are
//! matched against the *raw* lines, never the token stream.

use std::collections::BTreeSet;
use std::ops::Range;
use std::path::Path;

use crate::lint::sanitize;

/// One lexical token and the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: usize,
}

impl Token {
    /// Identifier, keyword, or numeric literal (word-shaped).
    pub fn is_word(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    /// Identifier or keyword: word-shaped and not starting with a digit.
    pub fn is_name(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    }
}

/// Two-character operators kept as single tokens; everything else
/// non-word-shaped becomes a one-character token.
const OPS2: &[&str] = &[
    "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "..",
    "<<", ">>", "&=", "|=", "^=",
];

/// Tokenize sanitized source lines into a flat stream. Whitespace is
/// dropped; words (identifiers/keywords/number literals) and the operators
/// in [`OPS2`] stay intact; every other character is its own token.
pub fn tokenize(clean: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in clean.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token { text: chars[start..i].iter().collect(), line: lineno });
            } else {
                let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                let text = if OPS2.contains(&pair.as_str()) {
                    i += 2;
                    pair
                } else {
                    i += 1;
                    c.to_string()
                };
                out.push(Token { text, line: lineno });
            }
        }
    }
    out
}

/// A `fn` item located in the token stream.
///
/// Extraction is linear and non-recursive: after a function body closes,
/// scanning resumes *past* it, so a named `fn` nested inside another
/// function is analysed as part of its enclosing body, not separately.
/// Closures are always part of the enclosing body.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token range between the name and the body's `{` (parameters, return
    /// type, where-clause).
    pub sig: Range<usize>,
    /// Token range strictly inside the body braces.
    pub body: Range<usize>,
}

/// Extract every top-level `fn` (including methods inside `impl`/`trait`
/// blocks, which the linear scan reaches naturally). Trait method
/// *declarations* (ending in `;`) and `fn` pointer types have no body and
/// are skipped.
pub fn functions(tokens: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "fn" && tokens.get(i + 1).is_some_and(Token::is_name) {
            if let Some(f) = extract_fn(tokens, i) {
                i = f.body.end + 1;
                out.push(f);
                continue;
            }
        }
        i += 1;
    }
    out
}

fn extract_fn(tokens: &[Token], at: usize) -> Option<Function> {
    let name = tokens[at + 1].text.clone();
    let line = tokens[at].line;
    let sig_start = at + 2;
    let mut j = sig_start;
    let mut nest = 0i64;
    let open = loop {
        let t = tokens.get(j)?;
        match t.text.as_str() {
            "(" | "[" => nest += 1,
            ")" | "]" => nest -= 1,
            "{" if nest == 0 => break j,
            ";" if nest == 0 => return None, // declaration without a body
            _ => {}
        }
        j += 1;
    };
    let mut depth = 1i64;
    let mut k = open + 1;
    while depth > 0 {
        match tokens.get(k)?.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    Some(Function { name, line, sig: sig_start..open, body: open + 1..k - 1 })
}

/// The `impl` blocks of a token stream: each body's token range paired with
/// the name of the *implemented type* (for `impl Trait for Type`, the type —
/// the interprocedural pass resolves `Type::method` and `self.method`
/// against the Self type, never the trait). Generic parameters on the type
/// (`ShardState<P>`) are dropped; only the head identifier is kept.
pub fn impl_owners(tokens: &[Token]) -> Vec<(Range<usize>, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "impl" {
            i += 1;
            continue;
        }
        // Header: `impl` [<…>] Path [<…>] [for Path [<…>]] [where …] `{`.
        // The owner is the last path-head identifier seen at angle-depth 0
        // before the body opens, restarting the scan after `for`.
        let mut owner: Option<String> = None;
        let mut angle = 0i64;
        let mut j = i + 1;
        let open = loop {
            let Some(t) = tokens.get(j) else { break None };
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" if angle <= 0 => break Some(j),
                ";" if angle <= 0 => break None, // `impl Trait for Type;` — malformed, skip
                "for" if angle <= 0 => owner = None,
                "where" if angle <= 0 => {
                    // The where-clause can mention other types; stop updating.
                    let close = loop {
                        let Some(w) = tokens.get(j) else { break None };
                        if w.text == "{" {
                            break Some(j);
                        }
                        j += 1;
                    };
                    break close;
                }
                _ if angle <= 0 && t.is_name() && owner.is_none() => {
                    owner = Some(t.text.clone());
                }
                // `impl module::Type {` — keep the last segment.
                "::" if angle <= 0 && tokens.get(j + 1).is_some_and(Token::is_name) => {
                    owner = Some(tokens[j + 1].text.clone());
                    j += 1;
                }
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // Body extent: matched braces.
        let mut depth = 0i64;
        let mut k = open;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(name) = owner {
            out.push((open + 1..k, name));
        }
        i = open + 1; // nested impls are not a thing; resume inside anyway
    }
    out
}

/// The crate a repo-relative path belongs to (`crates/<name>/src/…` →
/// `<name>`); files outside the `crates/` layout (fixture trees) fall back
/// to the first path component.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

/// Sort every `fn` name into two sets by return type: `result` when the
/// return type mentions `Result`, `plain` otherwise. Scans at any nesting
/// level (the dropped-result analysis needs nested helpers too, which
/// [`functions`] deliberately does not separate out). A name can land in
/// both sets when two functions share it — the dropped-result analysis
/// treats that as ambiguous and stays silent for method calls.
pub fn fn_return_kinds(
    tokens: &[Token],
    result: &mut BTreeSet<String>,
    plain: &mut BTreeSet<String>,
) {
    for i in 0..tokens.len() {
        if tokens[i].text != "fn" || !tokens.get(i + 1).is_some_and(Token::is_name) {
            continue;
        }
        let mut j = i + 2;
        let mut nest = 0i64;
        let mut arrow = false;
        let mut returns_result = false;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "->" if nest == 0 => arrow = true,
                "{" | ";" if nest == 0 => break,
                "Result" if arrow => returns_result = true,
                _ => {}
            }
            j += 1;
        }
        if returns_result {
            result.insert(tokens[i + 1].text.clone());
        } else {
            plain.insert(tokens[i + 1].text.clone());
        }
    }
}

/// One parsed source file: raw lines (for report snippets and the
/// `audit:allow` suppression markers), the token stream over the sanitized
/// non-test code, and the extracted functions.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    pub raw: Vec<String>,
    pub tokens: Vec<Token>,
    pub functions: Vec<Function>,
}

/// Parse one source file. Mirrors the lint pass's test-code convention:
/// everything from the first top-level `#[cfg(test)]` onward is dropped
/// before tokenizing.
pub fn parse_source(rel: &str, source: &str) -> SourceFile {
    let mut clean = sanitize(source);
    let code_end = clean
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(clean.len());
    clean.truncate(code_end);
    let tokens = tokenize(&clean);
    let functions = functions(&tokens);
    SourceFile {
        rel: rel.to_string(),
        raw: source.lines().map(str::to_string).collect(),
        tokens,
        functions,
    }
}

/// Parse every non-test `.rs` file under `root/crates/` (or under `root`
/// itself for fixture trees without a `crates/` directory). `tests/`,
/// `benches/`, and `examples/` directories are out of scope, as are the
/// vendored `shims/` (model-checker scaffolding, not product code).
pub fn parse_tree(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        crate::lint::collect_files(&crates, &mut files)?;
    } else {
        crate::lint::collect_files(root, &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if !rel.ends_with(".rs")
            || ["/tests/", "/benches/", "/examples/"].iter().any(|d| rel.contains(d))
        {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        out.push(parse_source(&rel, &source));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&sanitize(src))
    }

    #[test]
    fn tokens_carry_lines_and_keep_operators() {
        let t = toks("let x = a::b;\nx += y * 2;");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", "::", "b", ";", "x", "+=", "y", "*", "2", ";"]);
        assert_eq!(t[0].line, 1);
        assert_eq!(t[7].line, 2);
    }

    #[test]
    fn strings_and_comments_never_reach_the_stream() {
        let t = toks("call(\"a + b\"); // x * y");
        assert!(t.iter().all(|t| t.text != "+" && t.text != "*"), "{t:?}");
    }

    #[test]
    fn function_extraction_handles_impls_and_nesting() {
        let src = "impl S {\n  fn a(&self) -> u32 { if x { y } else { z } }\n  pub fn b() {}\n}\nfn c(p: &[u8; 4]) {}";
        let t = toks(src);
        let fns = functions(&t);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(fns[0].line, 2);
        // Body of `a` spans the nested braces.
        let body: Vec<&str> = t[fns[0].body.clone()].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"else"), "{body:?}");
    }

    #[test]
    fn trait_declarations_and_fn_pointers_are_skipped() {
        let src = "trait T { fn decl(&self) -> u32; }\nfn take(f: fn(u32) -> u32) { f(1); }";
        let fns = functions(&toks(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["take"]);
    }

    #[test]
    fn result_fns_found_at_any_nesting() {
        let src = "impl S { fn outer(&self) -> Result<u32> { fn inner() -> io::Result<()> { Ok(()) } inner() } }\nfn plain() -> u32 { 3 }";
        let (mut result, mut plain) = (BTreeSet::new(), BTreeSet::new());
        fn_return_kinds(&toks(src), &mut result, &mut plain);
        assert!(result.contains("outer") && result.contains("inner"), "{result:?}");
        assert!(!result.contains("plain"));
        assert!(plain.contains("plain"));
    }

    #[test]
    fn test_tail_is_dropped_before_tokenizing() {
        let f = parse_source("crates/x/src/a.rs", "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }");
        assert_eq!(f.functions.len(), 1);
        assert_eq!(f.functions[0].name, "a");
        // Raw lines are kept in full for suppression markers.
        assert_eq!(f.raw.len(), 3);
    }
}
