//! A virtual-scheduler model of the GraphZ engine pipeline.
//!
//! The real pipeline (paper §V Fig. 4, extended by the parallel Worker and
//! the prefetcher) is rebuilt here as [`crossbeam::model`] nodes connected
//! by bounded virtual channels:
//!
//! ```text
//!                 sio2disp          disp2work[s]
//!   Sio ────────────▶ Dispatcher ────────────▶ Worker s   (s = 0..shards)
//!    ▲                                             │ work2eng
//!    │ (reads "disk" blocks)                       ▼
//!   Disk ◀──── Prefetcher ◀── eng2pf ─── Engine ◀──┘
//!                 │  pf2eng        ▲       │ eng2mgr
//!                 └────────────────┘       ▼
//!                                      MsgManager ── mgr2eng ──▶ Engine
//! ```
//!
//! The modelled computation is message propagation over a tiny graph: each
//! round, every vertex sends `1` to each out-neighbour, and applying a
//! message increments the destination's counter. After `rounds` rounds the
//! analytically known result is `counter(v) = rounds × in_degree(v)` — a
//! value no admissible schedule may perturb. The shard routing uses the
//! *real* engine functions ([`graphz_core::model_hooks::plan_shards`] /
//! [`shard_of`]), so the model exercises the same deterministic scheduling
//! decisions the engine makes, and the queue capacities come from the same
//! constants via [`queue_caps`].
//!
//! What the explorer then checks (see `tests/model_check.rs`):
//! * **Determinism** — bit-identical vertex output across hundreds of
//!   seeded schedules and an exhaustive pass at capacity 1.
//! * **Deadlock freedom** — no schedule reaches a state where every
//!   unfinished node is blocked (the wait-for graph stays acyclic).
//!
//! [`shard_of`]: graphz_core::model_hooks::shard_of
//! [`queue_caps`]: graphz_core::model_hooks::queue_caps

use std::cell::RefCell;
use std::rc::Rc;

use crossbeam::model::{ChanId, ModelSpec, Node, Poll, Queues, RecvState, Want};
use graphz_core::model_hooks::{plan_shards, shard_of, queue_caps};
use graphz_types::EngineOptions;

/// A tiny directed graph: `edges[v]` lists v's out-neighbours.
#[derive(Debug, Clone)]
pub struct TinyGraph {
    pub edges: Vec<Vec<u32>>,
}

impl TinyGraph {
    /// A 6-vertex ring with two chords — small enough for exhaustive
    /// exploration, irregular enough that every vertex's in-degree differs
    /// from its position.
    pub fn ring_with_chords() -> Self {
        TinyGraph {
            edges: vec![
                vec![1, 3],    // 0 → 1, 0 → 3
                vec![2],       // 1 → 2
                vec![3, 5],    // 2 → 3, 2 → 5
                vec![4],       // 3 → 4
                vec![5, 0],    // 4 → 5, 4 → 0
                vec![0],       // 5 → 0
            ],
        }
    }

    pub fn num_vertices(&self) -> u32 {
        self.edges.len() as u32
    }

    pub fn in_degree(&self, v: u32) -> u64 {
        self.edges.iter().flatten().filter(|&&d| d == v).count() as u64
    }
}

/// Every message that flows through the virtual pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Sio → Dispatcher: a raw "block" of adjacency data (vertex, neighbours).
    Block { vertex: u32, neighbors: Vec<u32> },
    /// Dispatcher → Worker: one vertex's adjacency routed to its shard.
    Batch { vertex: u32, neighbors: Vec<u32> },
    /// Worker → Engine: a shard's deferred messages, in shard send order.
    ShardDone { shard: usize, deferred: Vec<(u32, u64)> },
    /// Engine → MsgManager: buffer `(dst, value)` for the next round.
    Enqueue { dst: u32, value: u64 },
    /// Engine → MsgManager: hand over the round's buffered messages.
    DrainRequest,
    /// MsgManager → Engine: the buffered messages, in send order.
    Drained { msgs: Vec<(u32, u64)> },
    /// Engine → Prefetcher: load round `round`'s state snapshot.
    PrefetchRequest { round: u32 },
    /// Prefetcher → Engine: the loaded snapshot.
    PrefetchReady { round: u32, counters: Vec<u64> },
}

/// The shared "disk": counters persisted between rounds. `Rc<RefCell<…>>`
/// because the model is single-threaded by construction.
pub type Disk = Rc<RefCell<Vec<u64>>>;

/// Channel ids for one built pipeline.
#[derive(Debug, Clone)]
pub struct Channels {
    pub sio2disp: ChanId,
    pub disp2work: Vec<ChanId>,
    pub work2eng: ChanId,
    pub eng2mgr: ChanId,
    pub mgr2eng: ChanId,
    pub eng2pf: ChanId,
    pub pf2eng: ChanId,
}

/// Everything needed to run and inspect one model instance.
pub struct Pipeline {
    pub spec: ModelSpec,
    pub channels: Channels,
    pub disk: Disk,
    pub nodes: Vec<Box<dyn Node<Msg>>>,
}

/// The Sio stage: streams each round's adjacency blocks to the Dispatcher,
/// then closes. Re-armed by the Engine each round via a fresh node in the
/// next round's sub-run — here modelled as one node streaming all rounds
/// (block order is fixed; only interleaving with other stages varies).
struct Sio {
    graph: TinyGraph,
    out: ChanId,
    rounds: u32,
    round: u32,
    next_vertex: u32,
    closed: bool,
}

impl Node<Msg> for Sio {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if self.round >= self.rounds {
            if !self.closed {
                q.close(self.out);
                self.closed = true;
            }
            return Poll::Done;
        }
        let v = self.next_vertex;
        let msg = Msg::Block { vertex: v, neighbors: self.graph.edges[v as usize].clone() };
        match q.try_send(self.out, msg) {
            Ok(()) => {
                self.next_vertex += 1;
                if self.next_vertex >= self.graph.num_vertices() {
                    self.next_vertex = 0;
                    self.round += 1;
                }
                Poll::Ran
            }
            Err(_) => Poll::Blocked(Want::Send(self.out)),
        }
    }
}

/// The Dispatcher: routes each block to the Worker shard owning its vertex,
/// using the engine's real shard plan.
struct Dispatcher {
    input: ChanId,
    outputs: Vec<ChanId>,
    plan: Vec<(u32, u32)>,
    /// A block routed but not yet accepted by the full shard queue.
    pending: Option<(usize, Msg)>,
    closed: bool,
}

impl Node<Msg> for Dispatcher {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some((shard, msg)) = self.pending.take() {
            match q.try_send(self.outputs[shard], msg) {
                Ok(()) => return Poll::Ran,
                Err(msg) => {
                    self.pending = Some((shard, msg));
                    return Poll::Blocked(Want::Send(self.outputs[shard]));
                }
            }
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::Block { vertex, neighbors }) => {
                let shard = shard_of(&self.plan, vertex);
                self.pending = Some((shard, Msg::Batch { vertex, neighbors }));
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran, // protocol noise: ignore
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => {
                if !self.closed {
                    for &out in &self.outputs {
                        q.close(out);
                    }
                    self.closed = true;
                }
                Poll::Done
            }
        }
    }
}

/// One Worker shard: applies updates for its vertex range, defers every
/// cross-vertex message (the model has no intra-shard fast path — all sends
/// go through the ordered merge, the stricter configuration).
struct Worker {
    shard: usize,
    input: ChanId,
    output: ChanId,
    /// Batches processed this round; `per_round` triggers the barrier flush.
    seen: u32,
    per_round: u32,
    deferred: Vec<(u32, u64)>,
    pending: Option<Msg>,
    done: bool,
}

impl Node<Msg> for Worker {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some(msg) = self.pending.take() {
            match q.try_send(self.output, msg) {
                Ok(()) => return if self.done { Poll::Done } else { Poll::Ran },
                Err(msg) => {
                    self.pending = Some(msg);
                    return Poll::Blocked(Want::Send(self.output));
                }
            }
        }
        if self.done {
            return Poll::Done;
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::Batch { neighbors, .. }) => {
                // update(): send 1 to every out-neighbour, in edge order.
                for d in neighbors {
                    self.deferred.push((d, 1));
                }
                self.seen += 1;
                if self.seen == self.per_round {
                    self.seen = 0;
                    self.pending = Some(Msg::ShardDone {
                        shard: self.shard,
                        deferred: std::mem::take(&mut self.deferred),
                    });
                }
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran,
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => {
                self.done = true;
                if !self.deferred.is_empty() {
                    // Residual flush (partition barrier at end of stream).
                    self.pending = Some(Msg::ShardDone {
                        shard: self.shard,
                        deferred: std::mem::take(&mut self.deferred),
                    });
                    return Poll::Ran;
                }
                Poll::Done
            }
        }
    }
}

/// The MsgManager: buffers enqueued messages in arrival order and hands the
/// buffer back when the Engine drains at the round barrier.
struct MsgManager {
    input: ChanId,
    output: ChanId,
    buffer: Vec<(u32, u64)>,
    pending: Option<Msg>,
}

impl Node<Msg> for MsgManager {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some(msg) = self.pending.take() {
            match q.try_send(self.output, msg) {
                Ok(()) => return Poll::Ran,
                Err(msg) => {
                    self.pending = Some(msg);
                    return Poll::Blocked(Want::Send(self.output));
                }
            }
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::Enqueue { dst, value }) => {
                self.buffer.push((dst, value));
                Poll::Ran
            }
            RecvState::Msg(Msg::DrainRequest) => {
                self.pending = Some(Msg::Drained { msgs: std::mem::take(&mut self.buffer) });
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran,
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => {
                q.close(self.output);
                Poll::Done
            }
        }
    }
}

/// The Prefetcher: capacity-1 request/response pair loading the counters
/// snapshot from the shared disk (double buffering: one request in flight).
struct Prefetcher {
    input: ChanId,
    output: ChanId,
    disk: Disk,
    pending: Option<Msg>,
}

impl Node<Msg> for Prefetcher {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some(msg) = self.pending.take() {
            match q.try_send(self.output, msg) {
                Ok(()) => return Poll::Ran,
                Err(msg) => {
                    self.pending = Some(msg);
                    return Poll::Blocked(Want::Send(self.output));
                }
            }
        }
        match q.try_recv(self.input) {
            RecvState::Msg(Msg::PrefetchRequest { round }) => {
                let counters = self.disk.borrow().clone();
                self.pending = Some(Msg::PrefetchReady { round, counters });
                Poll::Ran
            }
            RecvState::Msg(_) => Poll::Ran,
            RecvState::Empty => Poll::Blocked(Want::Recv(self.input)),
            RecvState::Closed => {
                q.close(self.output);
                Poll::Done
            }
        }
    }
}

/// The Engine: collects every shard's barrier results per round, merges
/// deferred messages in `(shard, send-order)` sequence, routes them through
/// the MsgManager, applies the drained stream to the disk snapshot obtained
/// via the Prefetcher, and writes the round's state back to "disk".
struct Engine {
    work_in: ChanId,
    mgr_out: ChanId,
    mgr_in: ChanId,
    pf_out: ChanId,
    pf_in: ChanId,
    rounds: u32,
    disk: Disk,
    round: u32,
    /// Per-shard FIFO of barrier flushes. Rounds pipeline: a fast shard may
    /// deliver round r+1's flush before a slow shard delivers round r's, so
    /// each slot is a queue — per-channel FIFO guarantees a shard's flushes
    /// arrive in round order, and the round barrier fires once *every*
    /// shard's queue is non-empty. The merge pops exactly one flush per
    /// shard, in shard-index order, never arrival order.
    results: Vec<std::collections::VecDeque<Vec<(u32, u64)>>>,
    /// The drained message stream parked while awaiting the prefetcher.
    drained: Option<Vec<(u32, u64)>>,
    phase: EnginePhase,
    outbox: std::collections::VecDeque<(ChanId, Msg)>,
    closed: bool,
}

#[derive(Debug, PartialEq)]
enum EnginePhase {
    CollectShards,
    AwaitDrain,
    AwaitPrefetch,
}

impl Engine {
    fn flush_outbox(&mut self, q: &mut Queues<Msg>) -> Option<Poll> {
        while let Some((chan, msg)) = self.outbox.pop_front() {
            if let Err(msg) = q.try_send(chan, msg) {
                self.outbox.push_front((chan, msg));
                return Some(Poll::Blocked(Want::Send(chan)));
            }
        }
        None
    }
}

impl Node<Msg> for Engine {
    fn step(&mut self, q: &mut Queues<Msg>) -> Poll {
        if let Some(blocked) = self.flush_outbox(q) {
            return blocked;
        }
        match self.phase {
            EnginePhase::CollectShards => match q.try_recv(self.work_in) {
                RecvState::Msg(Msg::ShardDone { shard, deferred }) => {
                    self.results[shard].push_back(deferred);
                    if self.results.iter().all(|slot| !slot.is_empty()) {
                        // Partition barrier: (shard, send-order) merge of
                        // one flush per shard — the oldest (this round's).
                        for slot in &mut self.results {
                            for (dst, value) in slot.pop_front().unwrap_or_default() {
                                self.outbox.push_back((
                                    self.mgr_out,
                                    Msg::Enqueue { dst, value },
                                ));
                            }
                        }
                        self.outbox.push_back((self.mgr_out, Msg::DrainRequest));
                        self.phase = EnginePhase::AwaitDrain;
                    }
                    Poll::Ran
                }
                RecvState::Msg(_) => Poll::Ran,
                RecvState::Empty => Poll::Blocked(Want::Recv(self.work_in)),
                RecvState::Closed => {
                    // All workers gone: close downstream and finish.
                    if !self.closed {
                        q.close(self.mgr_out);
                        q.close(self.pf_out);
                        self.closed = true;
                    }
                    Poll::Done
                }
            },
            EnginePhase::AwaitDrain => match q.try_recv(self.mgr_in) {
                RecvState::Msg(Msg::Drained { msgs }) => {
                    // Ask the prefetcher for the current snapshot, stash the
                    // drained stream until it arrives.
                    self.outbox.push_back((
                        self.pf_out,
                        Msg::PrefetchRequest { round: self.round },
                    ));
                    self.drained = Some(msgs);
                    self.phase = EnginePhase::AwaitPrefetch;
                    Poll::Ran
                }
                RecvState::Msg(_) => Poll::Ran,
                RecvState::Empty => Poll::Blocked(Want::Recv(self.mgr_in)),
                RecvState::Closed => Poll::Done,
            },
            EnginePhase::AwaitPrefetch => match q.try_recv(self.pf_in) {
                RecvState::Msg(Msg::PrefetchReady { mut counters, .. }) => {
                    // apply_message in (shard, send-order) sequence.
                    for (dst, value) in self.drained.take().unwrap_or_default() {
                        counters[dst as usize] += value;
                    }
                    *self.disk.borrow_mut() = counters;
                    self.round += 1;
                    self.phase = EnginePhase::CollectShards;
                    if self.round >= self.rounds {
                        // Final barrier: shut the pipeline down. Every
                        // worker ShardDone has been consumed, so closing
                        // here cannot strand a blocked sender.
                        if !self.closed {
                            q.close(self.mgr_out);
                            q.close(self.pf_out);
                            self.closed = true;
                        }
                        return Poll::Done;
                    }
                    Poll::Ran
                }
                RecvState::Msg(_) => Poll::Ran,
                RecvState::Empty => Poll::Blocked(Want::Recv(self.pf_in)),
                RecvState::Closed => Poll::Done,
            },
        }
    }
}

/// Build the full pipeline model for `graph`, `rounds` rounds, and the
/// queue capacities the engine would use under `options` (`worker_shards`
/// picks the shard count of the real plan; `queue_cap` forces depths).
pub fn build(graph: &TinyGraph, rounds: u32, options: &EngineOptions) -> Pipeline {
    // The real plan function (collapses to 1 shard below
    // MIN_SHARD_VERTICES, exactly as the engine would for this partition).
    let plan = plan_shards(0, graph.num_vertices(), options.worker_shards.max(1));
    build_with_plan(graph, rounds, options, plan)
}

/// [`build`] with an explicit shard plan. The exhaustive 2-shard test uses
/// this to model the sharded layout the engine produces for partitions
/// above `MIN_SHARD_VERTICES`, scaled down to a state space a bounded
/// exhaustive search can finish; routing still goes through the real
/// [`shard_of`].
pub fn build_with_plan(
    graph: &TinyGraph,
    rounds: u32,
    options: &EngineOptions,
    plan: Vec<(u32, u32)>,
) -> Pipeline {
    let caps = queue_caps(options);
    let n = graph.num_vertices();
    let shards = plan.len().max(1);

    let mut spec = ModelSpec::default();
    let sio2disp = spec.channel("sio2disp", caps.sio);
    let disp2work: Vec<ChanId> = (0..shards)
        .map(|_| spec.channel("disp2work", caps.worker_jobs))
        .collect();
    let work2eng = spec.channel("work2eng", caps.worker_results);
    let eng2mgr = spec.channel("eng2mgr", caps.spill);
    let mgr2eng = spec.channel("mgr2eng", 1);
    let eng2pf = spec.channel("eng2pf", caps.prefetch);
    let pf2eng = spec.channel("pf2eng", caps.prefetch);

    spec.node("sio", vec![sio2disp], vec![]);
    spec.node("dispatcher", disp2work.clone(), vec![sio2disp]);
    for &input in &disp2work {
        spec.node("worker", vec![work2eng], vec![input]);
    }
    spec.node("engine", vec![eng2mgr, eng2pf], vec![work2eng, mgr2eng, pf2eng]);
    spec.node("msgmanager", vec![mgr2eng], vec![eng2mgr]);
    spec.node("prefetcher", vec![pf2eng], vec![eng2pf]);

    let disk: Disk = Rc::new(RefCell::new(vec![0u64; n as usize]));

    // Vertices per shard per round (each vertex = one Batch message).
    let mut nodes: Vec<Box<dyn Node<Msg>>> = Vec::new();
    nodes.push(Box::new(Sio {
        graph: graph.clone(),
        out: sio2disp,
        rounds,
        round: 0,
        next_vertex: 0,
        closed: false,
    }));
    nodes.push(Box::new(Dispatcher {
        input: sio2disp,
        outputs: disp2work.clone(),
        plan: plan.clone(),
        pending: None,
        closed: false,
    }));
    for (s, &(lo, hi)) in plan.iter().enumerate() {
        nodes.push(Box::new(Worker {
            shard: s,
            input: disp2work[s],
            output: work2eng,
            seen: 0,
            per_round: hi - lo,
            deferred: Vec::new(),
            pending: None,
            done: false,
        }));
    }
    nodes.push(Box::new(Engine {
        work_in: work2eng,
        mgr_out: eng2mgr,
        mgr_in: mgr2eng,
        pf_out: eng2pf,
        pf_in: pf2eng,
        rounds,
        disk: Rc::clone(&disk),
        round: 0,
        results: (0..shards).map(|_| std::collections::VecDeque::new()).collect(),
        drained: None,
        phase: EnginePhase::CollectShards,
        outbox: std::collections::VecDeque::new(),
        closed: false,
    }));
    nodes.push(Box::new(MsgManager {
        input: eng2mgr,
        output: mgr2eng,
        buffer: Vec::new(),
        pending: None,
    }));
    nodes.push(Box::new(Prefetcher {
        input: eng2pf,
        output: pf2eng,
        disk: Rc::clone(&disk),
        pending: None,
    }));

    let channels =
        Channels { sio2disp, disp2work, work2eng, eng2mgr, mgr2eng, eng2pf, pf2eng };
    Pipeline { spec, channels, disk, nodes }
}

/// The analytically known result: `rounds × in_degree(v)` for every vertex.
pub fn golden(graph: &TinyGraph, rounds: u32) -> Vec<u64> {
    (0..graph.num_vertices()).map(|v| rounds as u64 * graph.in_degree(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::model::{run_model, Outcome, SeededSchedule};

    #[test]
    fn single_run_matches_golden() {
        let graph = TinyGraph::ring_with_chords();
        let options = EngineOptions::default();
        let mut p = build(&graph, 3, &options);
        let run = run_model(&p.spec, &mut p.nodes, &mut SeededSchedule::new(1), 500_000);
        assert_eq!(run.outcome, Outcome::Completed, "trace len {}", run.trace.len());
        assert_eq!(*p.disk.borrow(), golden(&graph, 3));
    }

    #[test]
    fn capacity_one_single_run_matches_golden() {
        let graph = TinyGraph::ring_with_chords();
        let options = EngineOptions::default().with_queue_cap(1);
        let mut p = build(&graph, 2, &options);
        let run = run_model(&p.spec, &mut p.nodes, &mut SeededSchedule::new(2), 500_000);
        assert_eq!(run.outcome, Outcome::Completed);
        assert_eq!(*p.disk.borrow(), golden(&graph, 2));
    }

    #[test]
    fn golden_is_in_degree_times_rounds() {
        let graph = TinyGraph::ring_with_chords();
        // 9 edges total, so the golden sum is rounds × 9.
        let edges: usize = graph.edges.iter().map(Vec::len).sum();
        assert_eq!(golden(&graph, 4).iter().sum::<u64>(), 4 * edges as u64);
        assert_eq!(golden(&graph, 1)[0], 2); // in-edges 4→0 and 5→0
    }

    #[test]
    fn two_shard_plan_runs_and_matches_golden() {
        let graph = TinyGraph::ring_with_chords();
        let options = EngineOptions::default().with_queue_cap(1);
        let mut p = build_with_plan(&graph, 2, &options, vec![(0, 3), (3, 6)]);
        let run = run_model(&p.spec, &mut p.nodes, &mut SeededSchedule::new(9), 500_000);
        assert_eq!(run.outcome, Outcome::Completed);
        assert_eq!(*p.disk.borrow(), golden(&graph, 2));
    }
}
