//! `error-context`: fallible raw `std::fs` calls must not `?`-propagate
//! without a `.ctx(op, path)` site.
//!
//! The typed-error contract (`GraphError` + `IoCtx`) promises that every
//! IO failure names the operation and path that failed. A raw
//! `std::fs::…(…)?` loses both: the error that reaches the caller is a
//! bare os error. In CFG terms this is the degenerate single-edge case of
//! the path analysis — the `?` raises straight to the error exit, so the
//! check reduces to the method chain between the call's closing paren and
//! its `?`: if no contextualizing call appears there, the path to the
//! error exit is context-free. Calls whose result is bound or matched
//! (no `?` in the chain) are out of scope — the caller is handling the
//! error explicitly.

use crate::lint::Violation;
use crate::parser::{SourceFile, Token};

/// Fallible filesystem entry points (`seg::method(`) worth context.
pub(crate) const FS_CALLS: &[(&str, &str)] = &[
    ("fs", "write"),
    ("fs", "read"),
    ("fs", "read_to_string"),
    ("fs", "rename"),
    ("fs", "copy"),
    ("fs", "remove_file"),
    ("fs", "remove_dir"),
    ("fs", "remove_dir_all"),
    ("fs", "create_dir"),
    ("fs", "create_dir_all"),
    ("fs", "metadata"),
    ("fs", "read_dir"),
    ("fs", "canonicalize"),
    ("fs", "hard_link"),
    ("File", "open"),
    ("File", "create"),
];

/// Chain calls that attach context or deliberately reshape the error.
const CTX_CALLS: &[&str] = &["ctx", "map_err", "with_context", "ok"];

fn tx(t: &[Token], k: usize) -> &str {
    t.get(k).map(|x| x.text.as_str()).unwrap_or("")
}

/// Index just past the `)` matching the `(` at `open`.
fn close_paren(t: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < t.len() {
        match t[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    t.len()
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !super::in_scope("error-context", &file.rel) {
            continue;
        }
        let t = &file.tokens;
        for func in &file.functions {
            for g in func.body.clone() {
                let Some(call) = FS_CALLS.iter().find_map(|&(a, b)| {
                    (t[g].text == a && tx(t, g + 1) == "::" && tx(t, g + 2) == b && tx(t, g + 3) == "(")
                        .then(|| format!("{a}::{b}"))
                }) else {
                    continue;
                };
                // Walk the method chain after the call's arguments.
                let mut pos = close_paren(t, g + 3);
                let mut contextual = false;
                loop {
                    if tx(t, pos) == "?" {
                        if !contextual {
                            super::finding(
                                file,
                                "error-context",
                                t[g].line,
                                format!(
                                    "`{call}` in `{}` propagates via `?` with no \
                                     .ctx(op, path) on the chain; the caller sees a \
                                     bare os error with no file or stage named",
                                    func.name
                                ),
                                out,
                            );
                        }
                        break;
                    }
                    if tx(t, pos) == "."
                        && t.get(pos + 1).is_some_and(Token::is_name)
                        && tx(t, pos + 2) == "("
                    {
                        if CTX_CALLS.contains(&tx(t, pos + 1)) {
                            contextual = true;
                        }
                        pos = close_paren(t, pos + 2);
                        continue;
                    }
                    // Chain ends without `?`: bound, matched, or returned —
                    // the caller is handling the error some other way.
                    break;
                }
            }
        }
    }
}
