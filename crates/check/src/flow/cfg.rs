//! Per-function control-flow graphs over the token stream.
//!
//! The audit pass (DESIGN.md §6f) reasons about token *adjacency*; the flow
//! pass needs *paths*. This module lifts a [`Function`]'s token range into a
//! graph of basic blocks connected by the structural control flow the token
//! stream exposes: `if`/`else if`/`else` chains, `match` arms, the three
//! loop forms (with `break`/`continue` edges), explicit `return`s, and the
//! error edge every `?` raises. Two virtual exit blocks terminate the
//! graph — [`Cfg::normal_exit`] for fall-through and non-`Err` returns,
//! [`Cfg::error_exit`] for `?` propagation and `return Err(…)` — so
//! analyses can treat success paths and error paths differently (a dropped
//! `AtomicFile` on an error path *is* the abort; on a success path it is a
//! lost commit).
//!
//! Construction is a single linear walk, not a grammar. The deliberate
//! approximations (all documented in DESIGN.md §6j):
//!
//! * braces that do not belong to a recognized construct (plain scope
//!   blocks, closure bodies, struct literals) are walked *through*: their
//!   interior joins the enclosing block sequence, so `return`/`?` inside a
//!   closure is modeled as exiting the enclosing function (conservative:
//!   more exit paths, never fewer);
//! * `break`/`continue` bind to the innermost loop — labeled loops are not
//!   resolved;
//! * `match` arm patterns (including `if` guards) are copied verbatim into
//!   the arm's entry block without interpretation.

use crate::parser::{Function, Token};

/// One basic block: the indices (into the file's token stream) of the
/// tokens it executes, in order, plus its successor blocks.
#[derive(Debug, Default)]
pub struct Block {
    pub tokens: Vec<usize>,
    pub succs: Vec<usize>,
}

/// A function's control-flow graph. Block 0 is the entry; the two virtual
/// exits carry no tokens and have no successors.
#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Fall-through and non-`Err` `return` paths end here.
    pub normal_exit: usize,
    /// `?` propagation and `return Err(…)` paths end here.
    pub error_exit: usize,
}

impl Cfg {
    /// Blocks with an edge straight to the normal exit.
    pub fn returns_normally(&self, block: usize) -> bool {
        self.blocks[block].succs.contains(&self.normal_exit)
    }
}

/// Control-flow keywords that head a construct the builder interprets.
fn is_loop_kw(t: &str) -> bool {
    t == "loop" || t == "while" || t == "for"
}

struct Builder<'t> {
    t: &'t [Token],
    blocks: Vec<Block>,
    cur: usize,
    normal_exit: usize,
    error_exit: usize,
    /// Innermost-last stack of `(head, after)` loop targets.
    loops: Vec<(usize, usize)>,
}

/// Build the CFG for one function.
pub fn build(tokens: &[Token], func: &Function) -> Cfg {
    let mut b = Builder {
        t: tokens,
        // 0 = entry, 1 = normal exit, 2 = error exit.
        blocks: vec![Block::default(), Block::default(), Block::default()],
        cur: 0,
        normal_exit: 1,
        error_exit: 2,
        loops: Vec::new(),
    };
    b.walk(func.body.start, func.body.end);
    b.edge(b.cur, b.normal_exit);
    Cfg { blocks: b.blocks, normal_exit: b.normal_exit, error_exit: b.error_exit }
}

impl<'t> Builder<'t> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, i: usize) {
        let cur = self.cur;
        self.blocks[cur].tokens.push(i);
    }

    fn text(&self, i: usize) -> &str {
        self.t.get(i).map(|x| x.text.as_str()).unwrap_or("")
    }

    /// Index just past the `}` matching the `{` at `open` (clamped to `hi`).
    fn close_of(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < hi {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Process tokens `[lo, hi)` as a statement sequence growing `self.cur`.
    fn walk(&mut self, lo: usize, hi: usize) {
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                "if" => i = self.walk_if(i, hi),
                "match" => i = self.walk_match(i, hi),
                t if is_loop_kw(t) => i = self.walk_loop(i, hi),
                "return" => i = self.walk_return(i, hi),
                "break" | "continue" => i = self.walk_jump(i, hi),
                "?" => {
                    self.push(i);
                    // The error edge leaves *after* the tokens already in
                    // this block (the fallible call itself); the success
                    // path continues in a fresh block.
                    self.edge(self.cur, self.error_exit);
                    let next = self.new_block();
                    self.edge(self.cur, next);
                    self.cur = next;
                    i += 1;
                }
                "{" => {
                    // Plain block / closure body / struct literal: walk the
                    // interior inline so nested control flow is still seen.
                    let close = self.close_of(i, hi);
                    self.walk(i + 1, close);
                    i = close + 1;
                }
                _ => {
                    self.push(i);
                    i += 1;
                }
            }
        }
    }

    /// Tokens from `i` until the body `{` at paren/bracket depth 0 go into
    /// the current block (the condition is evaluated before the branch).
    /// Returns the index of the `{`, or `hi` if none is found.
    fn header_end(&mut self, i: usize, hi: usize) -> usize {
        let mut nest = 0i64;
        let mut j = i;
        while j < hi {
            match self.text(j) {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "{" if nest == 0 => return j,
                "?" => {
                    // A fallible call inside a condition still raises.
                    self.push(j);
                    self.edge(self.cur, self.error_exit);
                    let next = self.new_block();
                    self.edge(self.cur, next);
                    self.cur = next;
                    j += 1;
                    continue;
                }
                _ => {}
            }
            self.push(j);
            j += 1;
        }
        hi
    }

    fn walk_if(&mut self, i: usize, hi: usize) -> usize {
        let open = self.header_end(i, hi);
        if open >= hi {
            return hi;
        }
        let cond = self.cur;
        let join = self.new_block();

        let then_entry = self.new_block();
        self.edge(cond, then_entry);
        self.cur = then_entry;
        let close = self.close_of(open, hi);
        self.walk(open + 1, close);
        self.edge(self.cur, join);

        let mut next = close + 1;
        if self.text(next) == "else" {
            let else_entry = self.new_block();
            self.edge(cond, else_entry);
            self.cur = else_entry;
            if self.text(next + 1) == "if" {
                next = self.walk_if(next + 1, hi);
            } else if self.text(next + 1) == "{" {
                let c2 = self.close_of(next + 1, hi);
                self.walk(next + 2, c2);
                next = c2 + 1;
            } else {
                next += 1; // malformed; stay linear
            }
            self.edge(self.cur, join);
        } else {
            // No else: the condition can fall through.
            self.edge(cond, join);
        }
        self.cur = join;
        next
    }

    fn walk_match(&mut self, i: usize, hi: usize) -> usize {
        let open = self.header_end(i, hi);
        if open >= hi {
            return hi;
        }
        let scrutinee = self.cur;
        let close = self.close_of(open, hi);
        let join = self.new_block();
        let mut k = open + 1;
        let mut arms = 0usize;
        while k < close {
            // Pattern (and any `if` guard): verbatim until `=>` at depth 0.
            let arm = self.new_block();
            self.edge(scrutinee, arm);
            self.cur = arm;
            let mut nest = 0i64;
            while k < close {
                match self.text(k) {
                    "(" | "[" | "{" => nest += 1,
                    ")" | "]" | "}" => nest -= 1,
                    "=>" if nest == 0 => break,
                    _ => {}
                }
                self.push(k);
                k += 1;
            }
            if k >= close {
                self.edge(self.cur, join);
                break;
            }
            k += 1; // past `=>`
            if self.text(k) == "{" {
                let c2 = self.close_of(k, close);
                self.walk(k + 1, c2);
                k = c2 + 1;
                if self.text(k) == "," {
                    k += 1;
                }
            } else {
                // Expression arm: until `,` at depth 0 or the match close.
                let mut nest = 0i64;
                let mut end = k;
                while end < close {
                    match self.text(end) {
                        "(" | "[" | "{" => nest += 1,
                        ")" | "]" | "}" => nest -= 1,
                        "," if nest == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                self.walk(k, end);
                k = end + 1;
            }
            self.edge(self.cur, join);
            arms += 1;
        }
        if arms == 0 {
            self.edge(scrutinee, join);
        }
        self.cur = join;
        close + 1
    }

    fn walk_loop(&mut self, i: usize, hi: usize) -> usize {
        let is_infinite = self.text(i) == "loop";
        let open = self.header_end(i, hi);
        if open >= hi {
            return hi;
        }
        let head = self.new_block();
        self.edge(self.cur, head);
        let after = self.new_block();
        if !is_infinite {
            // `while`/`for` can exit at the test; bare `loop` only breaks.
            self.edge(head, after);
        }
        let body = self.new_block();
        self.edge(head, body);
        self.loops.push((head, after));
        self.cur = body;
        let close = self.close_of(open, hi);
        self.walk(open + 1, close);
        self.edge(self.cur, head);
        self.loops.pop();
        self.cur = after;
        close + 1
    }

    fn walk_return(&mut self, i: usize, hi: usize) -> usize {
        // `return Err(…)` is an error exit; anything else is normal.
        let exit = if self.text(i + 1) == "Err" { self.error_exit } else { self.normal_exit };
        let mut j = i;
        let mut nest = 0i64;
        while j < hi {
            match self.text(j) {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                ";" if nest <= 0 => break,
                _ => {}
            }
            self.push(j);
            j += 1;
        }
        self.edge(self.cur, exit);
        self.cur = self.new_block(); // unreachable continuation
        j + 1
    }

    fn walk_jump(&mut self, i: usize, hi: usize) -> usize {
        let target = match (self.text(i), self.loops.last()) {
            ("break", Some(&(_, after))) => after,
            ("continue", Some(&(head, _))) => head,
            // A stray jump outside any loop: treat as function exit.
            _ => self.normal_exit,
        };
        self.push(i);
        let mut j = i + 1;
        while j < hi && self.text(j) != ";" && self.text(j) != "}" {
            self.push(j);
            j += 1;
        }
        self.edge(self.cur, target);
        self.cur = self.new_block(); // unreachable continuation
        if self.text(j) == ";" {
            j + 1
        } else {
            j
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::sanitize;
    use crate::parser::{functions, tokenize};

    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let tokens = tokenize(&sanitize(src));
        let fns = functions(&tokens);
        assert_eq!(fns.len(), 1, "test source must hold exactly one fn");
        let cfg = build(&tokens, &fns[0]);
        (tokens, cfg)
    }

    /// Every path from `from` by DFS; true if any reaches `to` without
    /// passing through a block satisfying `barrier`.
    fn reaches_avoiding(cfg: &Cfg, from: usize, to: usize, barrier: &dyn Fn(usize) -> bool) -> bool {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if b == to {
                return true;
            }
            if seen[b] || barrier(b) {
                continue;
            }
            seen[b] = true;
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        false
    }

    fn block_with(tokens: &[Token], cfg: &Cfg, text: &str) -> usize {
        cfg.blocks
            .iter()
            .position(|b| b.tokens.iter().any(|&i| tokens[i].text == text))
            .unwrap_or_else(|| panic!("no block contains `{text}`"))
    }

    #[test]
    fn straight_line_reaches_normal_exit() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = a; }");
        assert!(reaches_avoiding(&cfg, 0, cfg.normal_exit, &|_| false));
        assert!(!reaches_avoiding(&cfg, 0, cfg.error_exit, &|_| false));
    }

    #[test]
    fn question_mark_raises_an_error_edge() {
        let (t, cfg) = cfg_of("fn f() -> Result<()> { helper()?; tail(); Ok(()) }");
        assert!(reaches_avoiding(&cfg, 0, cfg.error_exit, &|_| false));
        // The error edge leaves before `tail` runs.
        let tail = block_with(&t, &cfg, "tail");
        assert!(!reaches_avoiding(&cfg, tail, cfg.error_exit, &|_| false));
    }

    #[test]
    fn if_without_else_can_skip_the_then_block() {
        let (t, cfg) = cfg_of("fn f(c: bool) { if c { then_work(); } after(); }");
        let then_b = block_with(&t, &cfg, "then_work");
        let after = block_with(&t, &cfg, "after");
        // A path reaches `after` while avoiding the then-block entirely.
        assert!(reaches_avoiding(&cfg, 0, after, &|b| b == then_b));
    }

    #[test]
    fn else_branches_both_join() {
        let (t, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } after(); }");
        let a = block_with(&t, &cfg, "a");
        let b = block_with(&t, &cfg, "b");
        let after = block_with(&t, &cfg, "after");
        assert!(reaches_avoiding(&cfg, 0, after, &|x| x == a));
        assert!(reaches_avoiding(&cfg, 0, after, &|x| x == b));
        // But not avoiding both: one branch must run.
        assert!(!reaches_avoiding(&cfg, 0, after, &|x| x == a || x == b));
    }

    #[test]
    fn match_arms_fan_out_and_join() {
        let (t, cfg) =
            cfg_of("fn f(x: u32) { match x { 0 => zero(), Some(y) if y > 1 => big(), _ => other(), } after(); }");
        let zero = block_with(&t, &cfg, "zero");
        let after = block_with(&t, &cfg, "after");
        assert!(reaches_avoiding(&cfg, 0, after, &|b| b == zero));
        assert!(reaches_avoiding(&cfg, zero, after, &|_| false));
    }

    #[test]
    fn early_return_skips_the_tail() {
        let (t, cfg) = cfg_of("fn f(c: bool) -> Result<()> { if c { return Ok(()); } tail(); Ok(()) }");
        let tail = block_with(&t, &cfg, "tail");
        // Some path exits normally without ever executing `tail`.
        assert!(reaches_avoiding(&cfg, 0, cfg.normal_exit, &|b| b == tail));
    }

    #[test]
    fn return_err_exits_on_the_error_edge() {
        let (t, cfg) =
            cfg_of("fn f(c: bool) -> Result<()> { if c { return Err(oops()); } tail(); Ok(()) }");
        let tail = block_with(&t, &cfg, "tail");
        // The error exit is reachable, but only via the return-Err path —
        // the normal exit still requires running the tail.
        assert!(reaches_avoiding(&cfg, 0, cfg.error_exit, &|b| b == tail));
        assert!(!reaches_avoiding(&cfg, 0, cfg.normal_exit, &|b| b == tail));
    }

    #[test]
    fn loop_bodies_cycle_and_break_exits() {
        let (t, cfg) = cfg_of("fn f() { loop { work(); if done() { break; } } after(); }");
        let work = block_with(&t, &cfg, "work");
        let after = block_with(&t, &cfg, "after");
        // The body can repeat (work reaches itself) and break reaches after.
        assert!(reaches_avoiding(&cfg, work, after, &|_| false));
        assert!(cfg.blocks[work].succs.iter().any(|&s| reaches_avoiding(&cfg, s, work, &|_| false)));
        // A bare `loop` cannot fall through without the break.
        let brk = block_with(&t, &cfg, "break");
        assert!(!reaches_avoiding(&cfg, 0, after, &|b| b == brk));
    }

    #[test]
    fn while_can_skip_its_body() {
        let (t, cfg) = cfg_of("fn f() { while cond() { body(); } after(); }");
        let body = block_with(&t, &cfg, "body");
        let after = block_with(&t, &cfg, "after");
        assert!(reaches_avoiding(&cfg, 0, after, &|b| b == body));
    }

    #[test]
    fn closure_braces_stay_inline() {
        let (t, cfg) = cfg_of("fn f() { run(|| { inner()?; }); after(); }");
        // The `?` inside the closure conservatively raises at function level.
        assert!(reaches_avoiding(&cfg, 0, cfg.error_exit, &|_| false));
        let after = block_with(&t, &cfg, "after");
        assert!(reaches_avoiding(&cfg, 0, after, &|_| false));
    }
}
