//! `fault-surface-bypass`: every file-creating call in the ingest crates
//! must be dominated by a `FaultSurface` gate.
//!
//! The chaos sweeps (DESIGN.md §6e) only certify writes that pass through
//! `FaultSurface::op`/`FaultSurface::wrap` — a raw `File::create` or
//! `fs::rename` never sees an injected fault, so its failure behaviour is
//! unverified. This rule runs a forward *must* analysis per function: the
//! single fact is "a surface gate has executed on every path to here", and
//! any sink call reached while the fact is false is a bypass.
//!
//! Granularity is deliberate: one gate anywhere before the sink (on all
//! paths) counts, because holding a live surface in scope is exactly the
//! structural property the rule enforces — the fine-grained pairing of one
//! gate per operation stays a code-review concern.

use crate::lint::Violation;
use crate::parser::{SourceFile, Token};

use super::cfg::build;
use super::solver::{solve, Direction};

/// Two-segment call paths that create, open-for-write, or rename files.
const SINK_PATHS: &[(&str, &str)] = &[
    ("File", "create"),
    ("File", "options"),
    ("OpenOptions", "new"),
    ("fs", "write"),
    ("fs", "rename"),
    ("TrackedFile", "create"),
    ("TrackedFile", "open_rw"),
    ("tracked", "writer"),
    ("RecordWriter", "create"),
];

/// The call at token `g`, if it is a sink. A turbofish segment between the
/// type and the method (`RecordWriter::<u64>::create`) is skipped.
pub(crate) fn sink_at(t: &[Token], g: usize) -> Option<String> {
    let tx = |k: usize| t.get(k).map(|x| x.text.as_str()).unwrap_or("");
    for &(a, b) in SINK_PATHS {
        if t[g].text != a || tx(g + 1) != "::" {
            continue;
        }
        let mut m = g + 2;
        if tx(m) == "<" {
            let mut depth = 0i64;
            while m < t.len() {
                match t[m].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                m += 1;
                if depth <= 0 {
                    break;
                }
            }
            if tx(m) != "::" {
                continue;
            }
            m += 1;
        }
        if tx(m) == b && tx(m + 1) == "(" {
            return Some(format!("{a}::{b}"));
        }
    }
    // `write_atomic(path, bytes)` writes and renames without a surface.
    if t[g].text == "write_atomic" && tx(g + 1) == "(" && tx(g.wrapping_sub(1)) != "fn" {
        return Some("write_atomic".into());
    }
    None
}

/// True when token `g` applies a surface gate: a `.op(`/`.wrap(`/`.op_gate(`
/// method, or a call to the `gated(faults, retry, what, op)` helper that
/// runs its closure through the gate (the `AtomicFile` plumbing's local
/// spelling of the same thing).
pub(crate) fn gate_at(t: &[Token], g: usize) -> bool {
    let opens_call = t.get(g + 1).is_some_and(|n| n.text == "(");
    let method = (t[g].text == "op" || t[g].text == "wrap" || t[g].text == "op_gate")
        && g > 0
        && t[g - 1].text == "."
        && opens_call;
    let helper = t[g].text == "gated"
        && opens_call
        && g > 0
        && t[g - 1].text != "fn"
        && t[g - 1].text != ".";
    method || helper
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !super::in_scope("fault-surface-bypass", &file.rel) {
            continue;
        }
        let t = &file.tokens;
        for func in &file.functions {
            // Cheap pre-scan: most functions touch no sink at all.
            if !func.body.clone().any(|g| sink_at(t, g).is_some()) {
                continue;
            }
            let cfg = build(t, func);
            // Forward must-analysis: optimistic init, intersection join.
            let (input, _) = solve(
                &cfg,
                Direction::Forward,
                false,
                true,
                |a: &bool, b: &bool| *a && *b,
                |b, inp| {
                    let mut gated = *inp;
                    for &g in &cfg.blocks[b].tokens {
                        if gate_at(t, g) {
                            gated = true;
                        }
                    }
                    gated
                },
            );
            for (b, block) in cfg.blocks.iter().enumerate() {
                let mut gated = input[b];
                for &g in &block.tokens {
                    if gate_at(t, g) {
                        gated = true;
                    } else if !gated {
                        if let Some(call) = sink_at(t, g) {
                            super::finding(
                                file,
                                "fault-surface-bypass",
                                t[g].line,
                                format!(
                                    "`{call}` in `{}` is not dominated by a FaultSurface \
                                     gate (.op()/.wrap()); this write path is invisible \
                                     to the chaos sweeps",
                                    func.name
                                ),
                                out,
                            );
                        }
                    }
                }
            }
        }
    }
}
