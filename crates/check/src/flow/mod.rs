//! graphz-flow: per-function path-sensitive dataflow analysis.
//!
//! Where the audit pass (DESIGN.md §6f) reasons about token adjacency, the
//! flow pass reasons about *paths*: every function is lifted into a
//! control-flow graph ([`cfg`]) and rules run a worklist dataflow solver
//! ([`solver`]) over it. Four rule families, documented in DESIGN.md §6j:
//!
//! * [`surface`] — `fault-surface-bypass`: file-creating/renaming calls in
//!   the ingest crates must be dominated by a `FaultSurface` gate
//!   (`.op(…)`/`.wrap(…)`) so chaos sweeps cover every write path.
//! * [`consume`] — `must-consume-paths`: staged resources (`AtomicFile`,
//!   `StagedDir`, `StageManifest`) must reach a consumer or escape on
//!   *every* success path; dropping on a `?`-error path is the abort and
//!   is allowed.
//! * [`taint`] — `determinism-taint`: values derived from thread identity,
//!   polling order, or unordered-container iteration must not reach
//!   output-writing or key-ordering sinks.
//! * [`errctx`] — `error-context`: a raw `std::fs` call whose error can
//!   `?`-propagate without a `.ctx(…)` site loses the path/operation
//!   context typed errors promise.
//!
//! Findings reuse the lint [`Violation`] shape; `// flow:allow(<rule>)` on
//! the offending line or the line above suppresses one rule at one site.

pub mod cfg;
pub mod solver;

mod consume;
pub(crate) mod errctx;
pub(crate) mod surface;
mod taint;

use std::path::{Path, PathBuf};

use crate::lint::{Rule, Violation};
use crate::parser::{parse_tree, SourceFile};

/// Every flow rule, in reporting order. `scope` bounds where a rule
/// *reports*; `allow` lists path substrings exempt wholesale (the files
/// that implement the mechanism a rule enforces).
pub const FLOW_RULES: &[Rule] = &[
    Rule {
        name: "fault-surface-bypass",
        why: "a file created or renamed outside the FaultSurface never sees \
              injected faults, so the chaos sweeps certify a write path that \
              production does not take; route it through .op()/.wrap()",
        scope: &["crates/io/src/", "crates/extsort/src/", "crates/storage/src/"],
        // The surface's own plumbing: these files *implement* gating and
        // tracking, so their raw fs calls are the mechanism, not a bypass.
        allow: &[
            "crates/io/src/tracked.rs",
            "crates/io/src/atomic.rs",
            "crates/io/src/fault.rs",
            "crates/io/src/scratch.rs",
            "crates/io/src/record.rs",
        ],
    },
    Rule {
        name: "must-consume-paths",
        why: "an AtomicFile/StagedDir/StageManifest that can reach the end of \
              its function un-consumed on a success path silently discards \
              staged work there; every success path must commit, abort, or \
              move the value on (error paths may drop — that is the abort)",
        scope: &[],
        allow: &[],
    },
    Rule {
        name: "determinism-taint",
        why: "values derived from thread identity, try_recv polling order, or \
              HashMap/HashSet iteration vary run to run; if one reaches an \
              output write or a sort key the byte-identity contract breaks",
        scope: &["crates/core/src/", "crates/extsort/src/"],
        allow: &[],
    },
    Rule {
        name: "error-context",
        why: "a raw std::fs call whose error propagates via `?` without a \
              .ctx(op, path) site surfaces as a bare os error with no hint \
              of which file or stage failed",
        scope: &["crates/storage/src/"],
        allow: &[],
    },
];

pub(crate) fn flow_rule(name: &str) -> &'static Rule {
    FLOW_RULES
        .iter()
        .find(|r| r.name == name)
        .unwrap_or(&FLOW_RULES[0]) // names are compile-time constants; unreachable
}

pub(crate) fn in_scope(name: &str, rel: &str) -> bool {
    let r = flow_rule(name);
    (r.scope.is_empty() || r.scope.iter().any(|s| rel.contains(s)))
        && !r.allow.iter().any(|a| rel.contains(a))
}

/// Record a finding unless the rule is out of scope for this file or a
/// `flow:allow(<rule>)` marker on the line (or the line above) suppresses
/// it. All four rule families report through here.
pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
    out: &mut Vec<Violation>,
) {
    if !in_scope(rule, &file.rel) {
        return;
    }
    let raw = file.raw.get(line.wrapping_sub(1)).map(String::as_str).unwrap_or("");
    let prev = line.checked_sub(2).and_then(|p| file.raw.get(p)).map(String::as_str);
    let marker = format!("flow:allow({rule})");
    if raw.contains(&marker) || prev.is_some_and(|p| p.contains(&marker)) {
        return;
    }
    out.push(Violation { rule, path: PathBuf::from(&file.rel), line, snippet: raw.to_string(), message });
}

/// Run every flow rule over already-parsed files; findings are sorted by
/// path and line and deduplicated.
pub fn flow_files(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    surface::analyze(files, &mut out);
    consume::analyze(files, &mut out);
    taint::analyze(files, &mut out);
    errctx::analyze(files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| (&a.path, a.line, a.rule, &a.message) == (&b.path, b.line, b.rule, &b.message));
    out
}

/// Parse and analyze the tree rooted at `root` (see [`parse_tree`] for the
/// file scope).
pub fn flow_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(flow_files(&parse_tree(root)?))
}
