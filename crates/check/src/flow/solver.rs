//! Generic worklist dataflow solver over a [`Cfg`].
//!
//! The solver is parameterized by a lattice of per-block states: a `join`
//! (the confluence operator — union for may-analyses, intersection for
//! must-analyses) and a `transfer` function mapping a block's input state to
//! its output state by walking the block's tokens. Direction is a
//! parameter: forward analyses propagate entry → exits, backward analyses
//! exits → entry. Iteration runs to a fixpoint; monotone transfer functions
//! over finite lattices (every rule here uses sets of names or booleans)
//! terminate.
//!
//! The gen/kill convenience ([`solve_gen_kill`]) covers the common case
//! where the transfer is `out = (in − kill) ∪ gen` per block.

use std::collections::VecDeque;

use super::cfg::Cfg;

/// Propagation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// Solve a dataflow problem to fixpoint. Returns `(input, output)` states
/// per block — for forward analyses `input[b]` is the join over
/// predecessors' outputs (the entry block's input is `boundary`); for
/// backward analyses the roles flip and `boundary` seeds the exit blocks.
pub fn solve<S, J, T>(
    cfg: &Cfg,
    dir: Direction,
    boundary: S,
    init: S,
    join: J,
    mut transfer: T,
) -> (Vec<S>, Vec<S>)
where
    S: Clone + PartialEq,
    J: Fn(&S, &S) -> S,
    T: FnMut(usize, &S) -> S,
{
    let n = cfg.blocks.len();
    // Edges in propagation order: forward uses succs as-is, backward flips.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for &s in &block.succs {
            match dir {
                Direction::Forward => preds[s].push(b),
                Direction::Backward => preds[b].push(s),
            }
        }
    }
    let roots: Vec<usize> = match dir {
        Direction::Forward => vec![0],
        Direction::Backward => vec![cfg.normal_exit, cfg.error_exit],
    };

    let mut input: Vec<S> = vec![init.clone(); n];
    let mut output: Vec<S> = vec![init; n];
    for &r in &roots {
        input[r] = boundary.clone();
    }

    let mut work: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        if !roots.contains(&b) {
            let mut acc: Option<S> = None;
            for &p in &preds[b] {
                acc = Some(match acc {
                    None => output[p].clone(),
                    Some(a) => join(&a, &output[p]),
                });
            }
            if let Some(a) = acc {
                input[b] = a;
            }
        }
        let out = transfer(b, &input[b]);
        if out != output[b] {
            output[b] = out;
            // Requeue everything this block feeds (in propagation order).
            for (s, sp) in preds.iter().enumerate() {
                if sp.contains(&b) && !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    (input, output)
}

/// Per-block gen/kill bit vectors over a universe of `width` facts.
pub struct GenKill {
    pub gen: Vec<Vec<bool>>,
    pub kill: Vec<Vec<bool>>,
}

impl GenKill {
    pub fn new(blocks: usize, width: usize) -> Self {
        GenKill { gen: vec![vec![false; width]; blocks], kill: vec![vec![false; width]; blocks] }
    }
}

/// Classic gen/kill solve: `out = (in − kill) ∪ gen`, with union (may) or
/// intersection (must) as the confluence operator. Returns per-block
/// `(input, output)` fact vectors.
pub fn solve_gen_kill(
    cfg: &Cfg,
    dir: Direction,
    gk: &GenKill,
    must: bool,
    boundary: Vec<bool>,
) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let width = boundary.len();
    // Must-analyses start optimistic (all facts hold) so intersection can
    // only remove; may-analyses start empty so union can only add.
    let init = vec![must; width];
    solve(
        cfg,
        dir,
        boundary,
        init,
        |a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(&x, &y)| if must { x && y } else { x || y })
                .collect()
        },
        |block, inp: &Vec<bool>| {
            let mut out = inp.clone();
            for (f, fact) in out.iter_mut().enumerate() {
                if gk.kill[block][f] {
                    *fact = false;
                }
                if gk.gen[block][f] {
                    *fact = true;
                }
            }
            out
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::cfg::build;
    use crate::lint::sanitize;
    use crate::parser::{functions, tokenize};

    fn cfg_of(src: &str) -> Cfg {
        let tokens = tokenize(&sanitize(src));
        let fns = functions(&tokens);
        build(&tokens, &fns[0])
    }

    /// Block index containing the token `text`.
    fn at(src: &str, text: &str) -> usize {
        let tokens = tokenize(&sanitize(src));
        let fns = functions(&tokens);
        let cfg = build(&tokens, &fns[0]);
        cfg.blocks
            .iter()
            .position(|b| b.tokens.iter().any(|&i| tokens[i].text == text))
            .expect("token present")
    }

    #[test]
    fn forward_may_reaches_only_downstream() {
        let src = "fn f(c: bool) { if c { gen_here(); } sink(); }";
        let cfg = cfg_of(src);
        let g = at(src, "gen_here");
        let sink = at(src, "sink");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[g][0] = true;
        let (inp, _) = solve_gen_kill(&cfg, Direction::Forward, &gk, false, vec![false]);
        // May-reach: the fact arrives at the sink on one path.
        assert!(inp[sink][0]);
        // But not at the entry.
        assert!(!inp[0][0]);
    }

    #[test]
    fn forward_must_requires_all_paths() {
        let src = "fn f(c: bool) { if c { gen_here(); } sink(); }";
        let cfg = cfg_of(src);
        let g = at(src, "gen_here");
        let sink = at(src, "sink");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[g][0] = true;
        let (inp, _) = solve_gen_kill(&cfg, Direction::Forward, &gk, true, vec![false]);
        // Must-reach: the no-else path skips the gen, so the fact fails.
        assert!(!inp[sink][0]);

        let src2 = "fn f(c: bool) { if c { gen_here(); } else { gen_here(); } sink(); }";
        let cfg2 = cfg_of(src2);
        let sink2 = at(src2, "sink");
        let mut gk2 = GenKill::new(cfg2.blocks.len(), 1);
        for (b, block) in cfg2.blocks.iter().enumerate() {
            if !block.tokens.is_empty() && b != sink2 && b != 0 {
                gk2.gen[b][0] = true;
            }
        }
        let (inp2, _) = solve_gen_kill(&cfg2, Direction::Forward, &gk2, true, vec![false]);
        assert!(inp2[sink2][0], "fact generated on both branches must hold at the join");
    }

    #[test]
    fn kill_stops_propagation_through_loops() {
        let src = "fn f() { gen_here(); loop { kill_here(); if done() { break; } } sink(); }";
        let cfg = cfg_of(src);
        let g = at(src, "gen_here");
        let k = at(src, "kill_here");
        let sink = at(src, "sink");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[g][0] = true;
        gk.kill[k][0] = true;
        let (inp, _) = solve_gen_kill(&cfg, Direction::Forward, &gk, false, vec![false]);
        // The loop body always runs at least once (bare `loop`), so the
        // fact is dead by the time the break path reaches the sink.
        assert!(!inp[sink][0]);
    }

    #[test]
    fn backward_live_facts_flow_up() {
        let src = "fn f(c: bool) { early(); if c { use_here(); } tail(); }";
        let cfg = cfg_of(src);
        let u = at(src, "use_here");
        let e = at(src, "early");
        let mut gk = GenKill::new(cfg.blocks.len(), 1);
        gk.gen[u][0] = true;
        let (_, out) = solve_gen_kill(&cfg, Direction::Backward, &gk, false, vec![false]);
        // Backward may: the use is visible from before the branch.
        assert!(out[e][0]);
    }
}
