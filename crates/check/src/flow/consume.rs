//! `must-consume-paths`: staged resources must be consumed on every
//! success path.
//!
//! The audit pass's must-consume rule (DESIGN.md §6f) is an *escape*
//! heuristic: it accepts a function as soon as a consumer call appears
//! anywhere. This rule upgrades it with path sensitivity: a per-creation
//! forward *may* analysis tracks "still live and un-consumed", and a
//! finding fires iff that fact can reach the function's normal exit — a
//! conditional `commit` (one branch commits, the other falls through)
//! becomes visible. Error paths (`?`, `return Err`) terminate in the
//! error exit, which is deliberately not checked: dropping a staged
//! resource on a failure path *is* the abort (the `Drop` impls remove the
//! staging artifacts).

use crate::audit::{binding_before, path_start, Binding};
use crate::lint::Violation;
use crate::parser::{SourceFile, Token};

use super::cfg::build;
use super::solver::{solve, Direction};

/// Constructors that start a staged-resource lifetime.
const CREATORS: &[(&str, &[&str])] = &[
    ("AtomicFile", &["create", "create_with_faults"]),
    ("StagedDir", &["stage", "stage_with_faults"]),
    ("StageManifest", &["new"]),
];

/// Methods that settle the resource (mirrors the audit rule's set).
fn is_consumer(name: &str) -> bool {
    matches!(name, "commit" | "abort" | "release") || name.starts_with("consume")
}

/// `Some(call)` when token `g` begins `Type::method(` for a creator pair.
fn creation_at(t: &[Token], g: usize) -> Option<String> {
    let tx = |k: usize| t.get(k).map(|x| x.text.as_str()).unwrap_or("");
    for &(ty, methods) in CREATORS {
        if t[g].text == ty
            && tx(g + 1) == "::"
            && methods.contains(&tx(g + 2))
            && tx(g + 3) == "("
        {
            return Some(format!("{ty}::{}", tx(g + 2)));
        }
    }
    None
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !super::in_scope("must-consume-paths", &file.rel) {
            continue;
        }
        let t = &file.tokens;
        for func in &file.functions {
            for g in func.body.clone() {
                let Some(call) = creation_at(t, g) else { continue };
                // Only values bound to a local name are tracked; expression
                // position means the value flows onward (returned, passed,
                // chained) and the receiver owns the protocol, and
                // `let _ =` is the audit pass's dropped-result concern.
                let Binding::Named(var) = binding_before(t, path_start(t, g)) else {
                    continue;
                };
                let cfg = build(t, func);
                // Forward may-analysis of "live un-consumed": gen at the
                // creation, kill at a consumer call or any bare use (the
                // value escaping — moved, passed, returned — transfers the
                // obligation, matching the audit escape convention).
                let walk = |toks: &[usize], start: bool| -> bool {
                    let mut live = start;
                    for &k in toks {
                        if k == g {
                            live = true;
                        } else if t[k].text == var && t[k].is_name() {
                            let prev = k.checked_sub(1).map(|p| t[p].text.as_str());
                            if matches!(prev, Some(".") | Some("::")) {
                                continue; // a field/path segment sharing the name
                            }
                            match t.get(k + 1).map(|n| n.text.as_str()) {
                                Some(".") => {
                                    if t.get(k + 2).is_some_and(|m| is_consumer(&m.text)) {
                                        live = false;
                                    }
                                }
                                _ => live = false, // bare use: escapes
                            }
                        }
                    }
                    live
                };
                let (input, _) = solve(
                    &cfg,
                    Direction::Forward,
                    false,
                    false,
                    |a: &bool, b: &bool| *a || *b,
                    |b, inp| walk(&cfg.blocks[b].tokens, *inp),
                );
                if input[cfg.normal_exit] {
                    super::finding(
                        file,
                        "must-consume-paths",
                        t[g].line,
                        format!(
                            "`{call}` bound to `{var}` can reach the end of `{}` \
                             un-consumed on a success path; commit/abort (or move \
                             it on) along every path that returns Ok",
                            func.name
                        ),
                        out,
                    );
                }
            }
        }
    }
}
