//! `determinism-taint`: nondeterministic values must not reach
//! output-writing or key-ordering sinks.
//!
//! The byte-identity contract (DESIGN.md §6e) requires every output byte
//! to be a function of the input alone. Three *sources* break that if they
//! leak into output: thread identity (`thread::current`,
//! `available_parallelism`), polling order (`try_recv` — a blocking
//! `recv` on a single FIFO channel is per-channel deterministic and is
//! deliberately not a source), and unordered-container iteration
//! (`HashMap`/`HashSet`). Taint propagates forward through `let` bindings
//! and `for`/`while let` headers as a may-analysis over two name sets:
//! *containers* (unordered collections — inert until iterated) and
//! *values* (already nondeterministic). A finding fires when a tainted
//! name (or a direct container iteration) appears in the arguments of an
//! ordering/output sink.
//!
//! Blind spots (DESIGN.md §6j): taint does not cross field stores,
//! indexed stores (`slots[s] = r` — the sanctioned order-settling
//! pattern), function returns, or closure captures.

use std::collections::BTreeSet;

use crate::lint::Violation;
use crate::parser::{SourceFile, Token};

use super::cfg::build;
use super::solver::{solve, Direction};

/// Methods that enumerate a container in storage order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "into_keys",
    "into_values",
];

/// Argument-taking sinks whose arguments order or become output bytes.
const SINKS: &[&str] = &[
    "push",
    "push_all",
    "extend",
    "write",
    "write_all",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

/// The dataflow state: names known to hold unordered containers, and
/// names known to hold nondeterministic values.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
struct Taint {
    containers: BTreeSet<String>,
    values: BTreeSet<String>,
}

impl Taint {
    fn join(a: &Taint, b: &Taint) -> Taint {
        Taint {
            containers: a.containers.union(&b.containers).cloned().collect(),
            values: a.values.union(&b.values).cloned().collect(),
        }
    }
}

fn tx(t: &[Token], k: usize) -> &str {
    t.get(k).map(|x| x.text.as_str()).unwrap_or("")
}

/// Direct nondeterminism source anywhere in the token positions `range`.
fn mentions_source(t: &[Token], range: &[usize]) -> bool {
    range.iter().any(|&g| {
        t[g].text == "try_recv"
            || t[g].text == "available_parallelism"
            || (t[g].text == "thread" && tx(t, g + 1) == "::" && tx(t, g + 2) == "current")
    })
}

/// Iteration of a tainted container (`name.iter()` etc.) in `range`.
fn mentions_container_iteration(t: &[Token], range: &[usize], state: &Taint) -> bool {
    range.iter().any(|&g| {
        state.containers.contains(&t[g].text)
            && tx(t, g + 1) == "."
            && ITER_METHODS.contains(&tx(t, g + 2))
    })
}

fn mentions_any(t: &[Token], range: &[usize], names: &BTreeSet<String>) -> bool {
    range.iter().any(|&g| t[g].is_name() && names.contains(&t[g].text))
}

/// Collect lower-case binding names from a pattern slice (constructors and
/// types are CamelCase and skipped; `mut`/`ref`/`_` are noise).
fn pattern_names(t: &[Token], range: &[usize], into: &mut Vec<String>) {
    for &g in range {
        let name = &t[g].text;
        if t[g].is_name()
            && !matches!(name.as_str(), "mut" | "ref" | "_" | "let")
            && name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
        {
            into.push(name.clone());
        }
    }
}

/// One linear pass over a block's tokens: apply `let`/`for` taint
/// transitions to `state`, and (when `hits` is given) record sink
/// arguments that carry taint as `(token index, sink, tainted name)`.
fn scan(
    t: &[Token],
    toks: &[usize],
    state: &mut Taint,
    mut hits: Option<&mut Vec<(usize, String, String)>>,
) {
    let mut j = 0;
    while j < toks.len() {
        let g = toks[j];
        match t[g].text.as_str() {
            "let" => {
                // Pattern until `:` or `=` at depth 0; RHS until `;`.
                let mut depth = 0i64;
                let mut k = j + 1;
                let mut pat_end = toks.len();
                let mut eq = None;
                while k < toks.len() {
                    match t[toks[k]].text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        ">>" => depth -= 2, // closes two generic nests at once
                        ":" if depth == 0 && pat_end == toks.len() => pat_end = k,
                        "=" if depth == 0 => {
                            eq = Some(k);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let Some(eq) = eq else {
                    j = k + 1;
                    continue;
                };
                let pat_end = pat_end.min(eq);
                let mut names = Vec::new();
                pattern_names(t, &toks[j + 1..pat_end], &mut names);
                let mut depth = 0i64;
                let mut end = eq + 1;
                while end < toks.len() {
                    match t[toks[end]].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                let rhs = &toks[eq + 1..end];
                let nondet = mentions_source(t, rhs)
                    || mentions_container_iteration(t, rhs, state)
                    || mentions_any(t, rhs, &state.values);
                let container = rhs.iter().any(|&g| {
                    matches!(t[g].text.as_str(), "HashMap" | "HashSet")
                        || state.containers.contains(&t[g].text)
                });
                if nondet {
                    state.values.extend(names);
                } else if container {
                    state.containers.extend(names);
                }
                j = end;
            }
            "for" => {
                // `for <pattern> in <iterable>` — the iterable runs to the
                // end of this block (the body `{` opens a new block).
                let mut k = j + 1;
                while k < toks.len() && t[toks[k]].text != "in" {
                    k += 1;
                }
                if k >= toks.len() {
                    j += 1;
                    continue;
                }
                let mut names = Vec::new();
                pattern_names(t, &toks[j + 1..k], &mut names);
                let iterable = &toks[k + 1..];
                if mentions_source(t, iterable)
                    || mentions_any(t, iterable, &state.values)
                    || mentions_any(t, iterable, &state.containers)
                {
                    state.values.extend(names);
                }
                j = toks.len();
            }
            s if SINKS.contains(&s)
                && g > 0
                && t[g - 1].text == "."
                && tx(t, g + 1) == "(" =>
            {
                if let Some(hits) = hits.as_deref_mut() {
                    // Arguments: global scan to the matching close paren
                    // (`?` may have split the block, never the arg list).
                    let mut depth = 0i64;
                    let mut a = g + 1;
                    while a < t.len() {
                        match t[a].text.as_str() {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if t[a].is_name() && state.values.contains(&t[a].text) {
                                    hits.push((g, s.to_string(), t[a].text.clone()));
                                    break;
                                }
                                if state.containers.contains(&t[a].text)
                                    && tx(t, a + 1) == "."
                                    && ITER_METHODS.contains(&tx(t, a + 2))
                                {
                                    hits.push((g, s.to_string(), t[a].text.clone()));
                                    break;
                                }
                            }
                        }
                        a += 1;
                    }
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
}

pub(super) fn analyze(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !super::in_scope("determinism-taint", &file.rel) {
            continue;
        }
        let t = &file.tokens;
        for func in &file.functions {
            let cfg = build(t, func);
            let (input, _) = solve(
                &cfg,
                Direction::Forward,
                Taint::default(),
                Taint::default(),
                Taint::join,
                |b, inp: &Taint| {
                    let mut s = inp.clone();
                    scan(t, &cfg.blocks[b].tokens, &mut s, None);
                    s
                },
            );
            let mut hits = Vec::new();
            for (b, block) in cfg.blocks.iter().enumerate() {
                let mut s = input[b].clone();
                scan(t, &block.tokens, &mut s, Some(&mut hits));
            }
            for (g, sink, var) in hits {
                super::finding(
                    file,
                    "determinism-taint",
                    t[g].line,
                    format!(
                        "`{var}` carries a run-order-dependent value (thread \
                         identity, try_recv polling, or HashMap/HashSet \
                         iteration) into `{sink}` in `{}`; output bytes or \
                         sort order would vary between runs",
                        func.name
                    ),
                    out,
                );
            }
        }
    }
}
