//! `graphz-lint`: the repo-invariant lint gate.
//!
//! ```text
//! cargo run -p graphz-check --bin graphz-lint                # lint the repo
//! cargo run -p graphz-check --bin graphz-lint -- --root DIR  # lint another tree
//! cargo run -p graphz-check --bin graphz-lint -- --json OUT  # emit findings JSON
//! cargo run -p graphz-check --bin graphz-lint -- --list-rules
//! cargo run -p graphz-check --bin graphz-lint -- --fix-allowlist
//! ```
//!
//! Exit code 0 when the tree is clean, 1 on any violation (the CI gate),
//! 2 on usage or IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use graphz_check::json::write_report;
use graphz_check::lint::{lint_tree, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut fix_allowlist = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(out) => json_out = Some(PathBuf::from(out)),
                None => {
                    eprintln!("--json needs an output file argument");
                    return ExitCode::from(2);
                }
            },
            "--fix-allowlist" => fix_allowlist = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "graphz-lint [--root DIR] [--json OUT] [--fix-allowlist] [--list-rules]\n\
                     Lints the workspace against the repo invariants in DESIGN.md §6e."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<20} {}", rule.name, rule.why);
        }
        return ExitCode::SUCCESS;
    }

    let mut violations = match lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("graphz-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    // stale-suppression re-runs every analyzer with markers neutralized,
    // so it lives outside lint_tree; its findings join the lint report.
    match graphz_check::stale::stale_tree(&root) {
        Ok(stale) => violations.extend(stale),
        Err(e) => {
            eprintln!("graphz-lint: cannot run stale-suppression on {}: {e}", root.display());
            return ExitCode::from(2);
        }
    }
    violations.sort_by_key(|v| (v.path.clone(), v.line));

    if let Some(out) = &json_out {
        if let Err(e) = write_report(out, "graphz-lint", RULES, &violations) {
            eprintln!("graphz-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if violations.is_empty() {
        println!("graphz-lint: clean ({} rules)", RULES.len());
        return ExitCode::SUCCESS;
    }

    for v in &violations {
        println!("{v}");
        if fix_allowlist {
            println!(
                "    to suppress: add `// lint:allow({})` at {}:{} (same line or the line above)",
                v.rule,
                v.path.display(),
                v.line
            );
        }
    }
    println!("graphz-lint: {} violation(s)", violations.len());
    if !fix_allowlist {
        println!("run with --fix-allowlist for exact suppression syntax per violation");
    }
    ExitCode::FAILURE
}
