//! `graphz-flow`: CFG-based path-sensitive dataflow analysis.
//!
//! ```text
//! cargo run -p graphz-check --bin graphz-flow                 # analyze the repo
//! cargo run -p graphz-check --bin graphz-flow -- --root DIR   # analyze another tree
//! cargo run -p graphz-check --bin graphz-flow -- --json OUT   # emit findings JSON
//! cargo run -p graphz-check --bin graphz-flow -- --list-rules
//! ```
//!
//! Exit code 0 when the tree is clean, 1 on any finding (the CI gate),
//! 2 on usage or IO errors. `--json` writes the machine-readable report
//! whether or not the tree is clean.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use graphz_check::flow::{flow_tree, FLOW_RULES};
use graphz_check::json::write_report;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(out) => json_out = Some(PathBuf::from(out)),
                None => {
                    eprintln!("--json needs an output file argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "graphz-flow [--root DIR] [--json OUT] [--list-rules]\n\
                     Path-sensitive dataflow analyses over per-function CFGs:\n\
                     fault-surface coverage of every write path, path-complete\n\
                     must-consume for staged resources, determinism taint, and\n\
                     error-context on fallible IO. Documented in DESIGN.md §6j.\n\
                     Suppress one site with `// flow:allow(<rule>)` on the line\n\
                     or the line above."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in FLOW_RULES {
            println!("{:<24} {}", rule.name, rule.why);
        }
        return ExitCode::SUCCESS;
    }

    let findings = match flow_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("graphz-flow: cannot analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &json_out {
        if let Err(e) = write_report(out, "graphz-flow", FLOW_RULES, &findings) {
            eprintln!("graphz-flow: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        println!("graphz-flow: clean ({} rules)", FLOW_RULES.len());
        return ExitCode::SUCCESS;
    }
    for v in &findings {
        println!("{v}");
        println!(
            "    to suppress: add `// flow:allow({})` at {}:{} (same line or the line above)",
            v.rule,
            v.path.display(),
            v.line
        );
    }
    println!("graphz-flow: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
