//! `graphz-audit`: dataflow and protocol static analysis.
//!
//! ```text
//! cargo run -p graphz-check --bin graphz-audit                 # audit the repo
//! cargo run -p graphz-check --bin graphz-audit -- --root DIR   # audit another tree
//! cargo run -p graphz-check --bin graphz-audit -- --json OUT   # emit findings JSON
//! cargo run -p graphz-check --bin graphz-audit -- --list-rules
//! ```
//!
//! Exit code 0 when the tree is clean, 1 on any finding (the CI gate),
//! 2 on usage or IO errors. `--json` writes the machine-readable report
//! whether or not the tree is clean.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use graphz_check::audit::{audit_tree, AUDIT_RULES};
use graphz_check::json::write_report;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(out) => json_out = Some(PathBuf::from(out)),
                None => {
                    eprintln!("--json needs an output file argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "graphz-audit [--root DIR] [--json OUT] [--list-rules]\n\
                     Dataflow/protocol analyses over the workspace: lock-order cycles,\n\
                     unchecked offset arithmetic and casts in the storage layer, and\n\
                     must-consume resource protocols. Documented in DESIGN.md §6f.\n\
                     Suppress one site with `// audit:allow(<rule>)` on the line or\n\
                     the line above."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in AUDIT_RULES {
            println!("{:<24} {}", rule.name, rule.why);
        }
        return ExitCode::SUCCESS;
    }

    let findings = match audit_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("graphz-audit: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &json_out {
        if let Err(e) = write_report(out, "graphz-audit", AUDIT_RULES, &findings) {
            eprintln!("graphz-audit: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        println!("graphz-audit: clean ({} rules)", AUDIT_RULES.len());
        return ExitCode::SUCCESS;
    }
    for v in &findings {
        println!("{v}");
        println!(
            "    to suppress: add `// audit:allow({})` at {}:{} (same line or the line above)",
            v.rule,
            v.path.display(),
            v.line
        );
    }
    println!("graphz-audit: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
