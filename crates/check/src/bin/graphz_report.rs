//! `graphz-report`: merge per-tool findings JSON into one artifact.
//!
//! ```text
//! cargo run -p graphz-check --bin graphz-report -- \
//!     --out analysis_findings.json \
//!     graphz-lint=lint_findings.json \
//!     graphz-audit=audit_findings.json \
//!     graphz-flow=flow_findings.json
//! ```
//!
//! Each positional argument is `tool=path`; the per-tool documents are
//! embedded verbatim (they are already valid JSON from the shared
//! renderer) and the top-level `count` sums their finding counts, so a
//! single artifact answers "is the tree clean" across every analysis.
//! Exit 0 on success, 2 on usage or IO errors — the gate decision stays
//! with the individual tools.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use graphz_check::json::render_combined;

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<(String, PathBuf)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out needs an output file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "graphz-report --out FILE tool=findings.json [tool=findings.json …]\n\
                     Merges findings reports from graphz-lint/-audit/-flow into one\n\
                     combined analysis_findings.json artifact."
                );
                return ExitCode::SUCCESS;
            }
            spec => match spec.split_once('=') {
                Some((tool, path)) if !tool.is_empty() && !path.is_empty() => {
                    inputs.push((tool.to_string(), PathBuf::from(path)));
                }
                _ => {
                    eprintln!("expected tool=path, got: {spec}");
                    return ExitCode::from(2);
                }
            },
        }
    }
    let Some(out) = out else {
        eprintln!("graphz-report: --out FILE is required");
        return ExitCode::from(2);
    };
    if inputs.is_empty() {
        eprintln!("graphz-report: at least one tool=path input is required");
        return ExitCode::from(2);
    }

    let mut docs: Vec<(String, String)> = Vec::with_capacity(inputs.len());
    for (tool, path) in &inputs {
        match std::fs::read_to_string(path) {
            Ok(doc) => docs.push((tool.clone(), doc)),
            Err(e) => {
                eprintln!("graphz-report: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    let borrowed: Vec<(&str, &str)> =
        docs.iter().map(|(t, d)| (t.as_str(), d.as_str())).collect();
    if let Err(e) = std::fs::write(&out, render_combined(&borrowed)) {
        eprintln!("graphz-report: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("graphz-report: merged {} report(s) into {}", docs.len(), out.display());
    ExitCode::SUCCESS
}
