//! `graphz-ipa`: interprocedural analysis over the workspace call graph.
//!
//! ```text
//! cargo run -p graphz-check --bin graphz-ipa                  # analyze the repo
//! cargo run -p graphz-check --bin graphz-ipa -- --root DIR    # analyze another tree
//! cargo run -p graphz-check --bin graphz-ipa -- --json OUT    # emit findings JSON
//! cargo run -p graphz-check --bin graphz-ipa -- --list-rules
//! cargo run -p graphz-check --bin graphz-ipa -- --dump-callgraph
//! ```
//!
//! Exit code 0 when the tree is clean, 1 on any finding (the CI gate),
//! 2 on usage or IO errors. `--json` writes the machine-readable report
//! whether or not the tree is clean.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use graphz_check::ipa::{dump_callgraph, ipa_files, IPA_RULES};
use graphz_check::json::write_report;
use graphz_check::parser::parse_tree;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut dump = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(out) => json_out = Some(PathBuf::from(out)),
                None => {
                    eprintln!("--json needs an output file argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--dump-callgraph" => dump = true,
            "--help" | "-h" => {
                println!(
                    "graphz-ipa [--root DIR] [--json OUT] [--list-rules] [--dump-callgraph]\n\
                     Interprocedural analyses over the workspace call graph:\n\
                     the Worker hot path stays allocation-, lock-, and IO-free,\n\
                     the compute phase stays panic-free, every file-creating\n\
                     sink is fault-gated on all call paths, and fs errors\n\
                     crossing crates carry .ctx context. DESIGN.md §6k.\n\
                     Suppress one site with `// ipa:allow(<rule>)` on the line\n\
                     or the line above."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in IPA_RULES {
            println!("{:<24} {}", rule.name, rule.why);
        }
        return ExitCode::SUCCESS;
    }

    let files = match parse_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("graphz-ipa: cannot analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if dump {
        print!("{}", dump_callgraph(&files));
        return ExitCode::SUCCESS;
    }

    let findings = ipa_files(&files);

    if let Some(out) = &json_out {
        if let Err(e) = write_report(out, "graphz-ipa", IPA_RULES, &findings) {
            eprintln!("graphz-ipa: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        println!("graphz-ipa: clean ({} rules)", IPA_RULES.len());
        return ExitCode::SUCCESS;
    }
    for v in &findings {
        println!("{v}");
        println!(
            "    to suppress: add `// ipa:allow({})` at {}:{} (same line or the line above)",
            v.rule,
            v.path.display(),
            v.line
        );
    }
    println!("graphz-ipa: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
