//! The repo-invariant lint pass: hand-rolled line/token scanning, no
//! external dependencies, fully offline.
//!
//! clippy checks Rust-the-language; this pass checks *this repo's*
//! concurrency and determinism contract — invariants like "no panics in the
//! pipeline crates" or "nothing in the deterministic compute path reads the
//! wall clock" that no general-purpose tool knows about. Every rule is
//! named, scoped to the paths where it applies, and suppressible in place
//! with `// lint:allow(<rule>)` on the offending line or the line above.
//!
//! The scanner is deliberately token-level, not syntactic: it strips
//! comments and string/char literals with a small state machine
//! ([`sanitize`]), skips test code (`tests/`, `benches/`, `examples/`
//! directories, and everything after a top-level `#[cfg(test)]` — the
//! repo's universal test-module convention), then matches rule tokens
//! against what remains. That trades theoretical precision for a checker
//! that is ~400 lines, runs in milliseconds, and cannot rot against a
//! parser dependency.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, pointing at the offending line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: PathBuf,
    pub line: usize,
    pub snippet: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.snippet.trim()
        )
    }
}

/// A named lint rule: its identity, scope, and rationale.
pub struct Rule {
    pub name: &'static str,
    /// One-line rationale, shown by `--list-rules` and in DESIGN.md.
    pub why: &'static str,
    /// Path substrings the rule applies to (empty = every scanned file).
    pub scope: &'static [&'static str],
    /// Path substrings exempt from the rule (checked after `scope`).
    pub allow: &'static [&'static str],
}

/// Every rule the linter enforces, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-unwrap",
        why: "pipeline crates return typed GraphError; a panic in a worker \
              thread poisons queues instead of surfacing an error",
        // serve is in scope: a panic in a reader thread would take down the
        // whole serving fleet for one bad query.
        scope: &["crates/core/src/", "crates/io/src/", "crates/serve/src/"],
        allow: &[],
    },
    Rule {
        name: "no-thread-spawn",
        why: "all concurrency flows through the four audited pipeline \
              stages; ad-hoc threads escape the model checker's topology",
        scope: &[],
        allow: &[
            "crates/core/src/worker.rs",
            "crates/core/src/prefetch.rs",
            "crates/core/src/sio.rs",
            "crates/core/src/msgmanager.rs",
            // Ingest-side concurrency (PR 5): scoped producer shards, the
            // double-buffered run reader, and chunked text parse workers all
            // follow the deterministic-schedule rule (DESIGN.md §6g).
            "crates/extsort/src/shard.rs",
            // Key-partitioned parallel merge (PR 7): scoped range workers
            // whose output is byte-identical for any worker count.
            "crates/extsort/src/pmerge.rs",
            "crates/io/src/readahead.rs",
            "crates/storage/src/chunked.rs",
            // Serve fleet (PR 10): one accept thread + N reader threads,
            // joined in Server::shutdown/wait; queries themselves never spawn
            // (enforced by the serve-read-alloc ipa rule).
            "crates/serve/src/server.rs",
            // bench_serve's lockstep TCP clients: one joined driver thread
            // per connection, measurement harness only — never engine code.
            "crates/bench/src/bin/bench_serve.rs",
        ],
    },
    Rule {
        name: "no-wall-clock",
        why: "deterministic compute must not branch on time; stage timing \
              lives in engine.rs (observability) and the bench/baseline \
              crates, which are exempt by scope",
        scope: &[
            "crates/core/src/worker.rs",
            "crates/core/src/sio.rs",
            "crates/core/src/msgmanager.rs",
            "crates/core/src/prefetch.rs",
            "crates/algos/src/graphz/",
        ],
        allow: &[],
    },
    Rule {
        name: "no-unordered-iter",
        why: "HashMap/HashSet iteration order is randomized per process; \
              anything feeding the ordered (shard, send-order) merge must \
              iterate deterministically (BTreeMap, sorted Vec, or indexing)",
        scope: &["crates/core/src/"],
        allow: &[],
    },
    Rule {
        name: "no-new-deps",
        why: "the build is offline; dependencies must resolve to workspace \
              path crates or the shims, never a registry version",
        scope: &["Cargo.toml"],
        allow: &[],
    },
    Rule {
        name: "no-unsafe",
        why: "the workspace is #![forbid(unsafe_code)]; the lint catches \
              attempts to carve out exceptions before the compiler does",
        scope: &[],
        allow: &[],
    },
    Rule {
        // Detection lives in crate::stale (it must re-run every analyzer);
        // the rule is registered here so --list-rules, the JSON rules
        // array, and suppression-name validation see one namespace.
        name: "stale-suppression",
        why: "a lint:/audit:/flow:/ipa:allow marker that no longer \
              suppresses any finding silently waives the next violation \
              introduced on its line; remove markers when the code is fixed",
        scope: &[],
        allow: &[],
    },
];

fn rule(name: &'static str) -> &'static Rule {
    RULES
        .iter()
        .find(|r| r.name == name)
        .unwrap_or(&RULES[0]) // names are compile-time constants; unreachable
}

fn in_scope(r: &Rule, rel: &str) -> bool {
    (r.scope.is_empty() || r.scope.iter().any(|s| rel.contains(s)))
        && !r.allow.iter().any(|a| rel.contains(a))
}

/// Strip comments and string/char literals from a source file, preserving
/// line structure (stripped spans become spaces). Handles nested block
/// comments, escapes inside strings, raw and byte-raw strings (`r"…"`,
/// `r##"…"##`, `br#"…"#`, …), and distinguishes char literals from
/// lifetimes.
pub fn sanitize(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Line,
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::Line {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    cur.push(' ');
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    cur.push(' ');
                    i += 1;
                } else if c == 'r'
                    && (next == Some('"') || next == Some('#'))
                    && (!prev_is_ident(&chars, i)
                        // Byte raw strings: the `b` of `br#"…"#` is an
                        // identifier char, but not an identifier tail.
                        || (chars[i - 1] == 'b' && !prev_is_ident(&chars, i - 1)))
                {
                    // Raw string: r"…" or r#…#"…"#…#
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        cur.push(' ');
                        i = j + 1;
                    } else {
                        cur.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_is_ident_or_quote(&chars, i) {
                    // Char literal vs lifetime: 'x' / '\n' close with a
                    // quote; 'static / 'a do not.
                    if next == Some('\\') {
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.push(' ');
                        i = (j + 1).min(chars.len());
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.push(' ');
                        i += 3;
                    } else {
                        cur.push(c); // lifetime; keep the tick (harmless)
                        i += 1;
                    }
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            St::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            St::Line => {
                i += 1;
            }
            St::Str => {
                if c == '\\' {
                    // An escaped newline (string continuation) must stay
                    // visible to the top-of-loop line handling, or every
                    // later line number in the file shifts by one.
                    i += if chars.get(i + 1) == Some(&'\n') { 1 } else { 2 };
                } else if c == '"' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    out.push(cur);
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

fn prev_is_ident_or_quote(chars: &[char], i: usize) -> bool {
    // `'` after an identifier tail or another `'` is never a char-literal
    // opener (e.g. the generic position in `Vec<'a>` or `b'x'` tails).
    prev_is_ident(chars, i) || (i > 0 && chars[i - 1] == '\'')
}

/// Whether `needle` occurs in `line` *as a token*: the character before the
/// match must not be part of an identifier (so `x.unwrap()` matches
/// `.unwrap()` but `my_unwrap()` never matches `unwrap(`).
fn has_token(line: &str, needle: &str) -> bool {
    token_at(line, needle).is_some()
}

fn token_at(line: &str, needle: &str) -> Option<usize> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        // Identifier boundaries: only enforced on sides where the needle
        // itself starts/ends with an identifier character (so `.unwrap()`
        // needs no suffix check, but `unsafe` must not match `unsafe_code`).
        let pre_ok = !is_ident(needle.as_bytes()[0]) || at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let post_ok = !is_ident(*needle.as_bytes().last().unwrap_or(&b' '))
            || bytes.get(end).is_none_or(|&b| !is_ident(b));
        if pre_ok && post_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Check one line (raw + its predecessor) for a `lint:allow(rule)` marker.
fn suppressed(raw: &str, prev_raw: Option<&str>, rule_name: &str) -> bool {
    let marker = format!("lint:allow({rule_name})");
    raw.contains(&marker) || prev_raw.is_some_and(|p| p.contains(&marker))
}

/// Identifiers in `lines` bound to a `HashMap`/`HashSet` type — fields,
/// `let` bindings, and `= HashMap::new()` initialisations.
fn unordered_bindings(lines: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            // `name: HashMap<...>` (field, param, or annotated let).
            let mut from = 0;
            while let Some(pos) = line[from..].find(&format!(": {ty}<")) {
                let at = from + pos;
                if let Some(name) = ident_before(line, at) {
                    push_unique(&mut names, name);
                }
                from = at + 1;
            }
            // `name = HashMap::new()` / `::with_capacity(...)`.
            if let Some(pos) = line.find(&format!("= {ty}::")) {
                if let Some(name) = ident_before(line, pos) {
                    push_unique(&mut names, name);
                }
            }
        }
    }
    names
}

fn ident_before(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut end = at;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(line[start..end].to_string())
    }
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if name != "mut" && !names.contains(&name) {
        names.push(name);
    }
}

/// Does `line` iterate over the binding `name` in an unordered way?
fn iterates_unordered(line: &str, name: &str) -> bool {
    for call in [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()", ".retain("] {
        if has_token(line, &format!("{name}{call}")) {
            return true;
        }
    }
    // `for x in <expr> {`: flag when the iterated expression is the binding
    // itself (optionally borrowed or reached through field access, e.g.
    // `&self.states`), since that iterates the collection directly.
    if let Some(for_at) = line.find("for ") {
        if let Some(in_at) = line[for_at..].find(" in ") {
            let expr_start = for_at + in_at + 4;
            let expr = line[expr_start..].split('{').next().unwrap_or("").trim();
            let expr = expr.trim_start_matches('&').trim_start_matches("mut ").trim();
            if expr == name || expr.ends_with(&format!(".{name}")) {
                return true;
            }
        }
    }
    false
}

/// Lint one Rust source file (already read) at repo-relative path `rel`.
pub fn lint_rust_source(rel: &str, source: &str, out: &mut Vec<Violation>) {
    // Test code is out of scope for every rule.
    for dir in ["/tests/", "/benches/", "/examples/"] {
        if rel.contains(dir) {
            return;
        }
    }
    let raw: Vec<&str> = source.lines().collect();
    let clean = sanitize(source);

    // The repo convention puts the test module last; everything from the
    // first top-level `#[cfg(test)]` attribute onward is test code.
    let code_end = clean
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(clean.len());

    let panics: &[(&str, &str)] = &[
        (".unwrap()", "unwrap() panics instead of returning GraphError"),
        (".unwrap_err()", "unwrap_err() panics instead of returning GraphError"),
        (".expect(", "expect() panics instead of returning GraphError"),
        ("panic!(", "panic! aborts the pipeline thread"),
    ];
    let spawns: &[&str] = &["std::thread::spawn", "thread::Builder::new"];
    let clocks: &[&str] = &["Instant::now", "SystemTime::now"];

    let bindings = if in_scope(rule("no-unordered-iter"), rel) {
        unordered_bindings(&clean[..code_end])
    } else {
        Vec::new()
    };

    for (idx, line) in clean[..code_end].iter().enumerate() {
        let lineno = idx + 1;
        let raw_line = raw.get(idx).copied().unwrap_or("");
        let prev_raw = idx.checked_sub(1).and_then(|p| raw.get(p)).copied();
        let mut flag = |name: &'static str, message: String| {
            if in_scope(rule(name), rel) && !suppressed(raw_line, prev_raw, name) {
                out.push(Violation {
                    rule: name,
                    path: PathBuf::from(rel),
                    line: lineno,
                    snippet: raw_line.to_string(),
                    message,
                });
            }
        };

        for (tok, why) in panics {
            if has_token(line, tok) {
                flag("no-unwrap", (*why).to_string());
            }
        }
        for tok in spawns {
            if has_token(line, tok) {
                flag("no-thread-spawn", format!("{tok} outside the audited pipeline stages"));
            }
        }
        for tok in clocks {
            if has_token(line, tok) {
                flag("no-wall-clock", format!("{tok} read inside a deterministic compute path"));
            }
        }
        if has_token(line, "unsafe") {
            flag("no-unsafe", "unsafe code in a forbid(unsafe_code) workspace".to_string());
        }
        for name in &bindings {
            if iterates_unordered(line, name) {
                flag(
                    "no-unordered-iter",
                    format!("iteration over unordered collection `{name}`"),
                );
            }
        }
    }
}

/// Lint one `Cargo.toml` (rule `no-new-deps`): inside dependency sections,
/// every entry must resolve by `path` or `workspace = true`.
pub fn lint_manifest(rel: &str, source: &str, out: &mut Vec<Violation>) {
    if !in_scope(rule("no-new-deps"), rel) {
        return;
    }
    let mut in_deps = false;
    let lines: Vec<&str> = source.lines().collect();
    for (idx, raw_line) in lines.iter().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line.ends_with("dependencies]");
            continue;
        }
        if !in_deps || line.is_empty() {
            continue;
        }
        let ok = line.contains("workspace = true") || line.contains("path =") || !line.contains('=')
            // Inline-table continuation lines and feature lists are fine.
            || line.starts_with("features") || line.starts_with("optional")
            || line.starts_with("default-features");
        let versioned = line.contains("version =")
            || line.split('=').nth(1).is_some_and(|v| {
                let v = v.trim();
                v.starts_with('"') && v[1..].starts_with(|c: char| c.is_ascii_digit() || c == '^' || c == '~')
            });
        if !ok || versioned {
            let prev_raw = idx.checked_sub(1).and_then(|p| lines.get(p)).copied();
            if !suppressed(raw_line, prev_raw, "no-new-deps") {
                out.push(Violation {
                    rule: "no-new-deps",
                    path: PathBuf::from(rel),
                    line: idx + 1,
                    snippet: raw_line.to_string(),
                    message: "dependency does not resolve to a workspace path crate".to_string(),
                });
            }
        }
    }
}

/// Walk `root` and lint every `.rs` and `Cargo.toml` under `crates/` and
/// `shims/` (skipping `target/`, `.git/`, and anything outside those two
/// trees when they exist). Returns all violations, sorted by path and line.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let shims = root.join("shims");
    if crates.is_dir() || shims.is_dir() {
        for base in [crates, shims] {
            if base.is_dir() {
                collect_files(&base, &mut files)?;
            }
        }
    } else {
        // Fixture trees (tests) lint whatever is under the root.
        collect_files(root, &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        if rel.ends_with("Cargo.toml") {
            lint_manifest(&rel, &source, &mut out);
        } else {
            lint_rust_source(&rel, &source, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

pub(crate) fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_files(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_rust_source(rel, src, &mut out);
        out
    }

    #[test]
    fn sanitize_strips_comments_and_strings() {
        let src = "let x = \".unwrap()\"; // .expect(\nlet y = 1; /* panic!( */ let z = 2;\nlet c = '\\n'; let s = r#\".unwrap()\"#;";
        let clean = sanitize(src);
        assert_eq!(clean.len(), 3);
        assert!(!clean[0].contains("unwrap") && !clean[0].contains("expect"), "{:?}", clean[0]);
        assert!(!clean[1].contains("panic") && clean[1].contains("let z"), "{:?}", clean[1]);
        assert!(!clean[2].contains("unwrap"), "{:?}", clean[2]);
    }

    #[test]
    fn sanitize_raw_string_edge_cases() {
        // Multi-hash raw strings close only on the matching hash count: the
        // embedded `"#` must not end an `r##"…"##` literal early.
        let clean = sanitize("let s = r##\"has \"# inside .unwrap()\"##; x.trim();");
        assert!(!clean[0].contains("unwrap"), "{:?}", clean[0]);
        assert!(clean[0].contains("trim"), "{:?}", clean[0]);

        // Byte raw strings: the `b` prefix must not read as an identifier
        // tail that disables raw-string scanning.
        let clean = sanitize("let b = br#\"bytes .expect( \"#; y.len();");
        assert!(!clean[0].contains("expect"), "{:?}", clean[0]);
        assert!(clean[0].contains("len"), "{:?}", clean[0]);

        // `//` inside a raw string is content, not a comment: code after
        // the literal on the same line must survive.
        let clean = sanitize("let url = r\"scheme://host\"; z.shrink();");
        assert!(clean[0].contains("shrink"), "{:?}", clean[0]);

        // An identifier ending in `r` followed by `#` is not a raw string
        // (`attr` before an attribute-like token stays code).
        let clean = sanitize("let attr\"x\" = 1; w.purge();");
        assert!(clean[0].contains("attr"), "{:?}", clean[0]);
        assert!(clean[0].contains("purge"), "{:?}", clean[0]);
    }

    #[test]
    fn sanitize_keeps_lines_across_string_continuations() {
        // A `\`-newline continuation inside a string must not collapse the
        // two source lines into one, or every later line number shifts.
        let src = "let s = \"first \\\n    second\";\nafter();";
        let clean = sanitize(src);
        assert_eq!(clean.len(), 3, "{clean:?}");
        assert!(clean[2].contains("after"), "{clean:?}");
    }

    #[test]
    fn sanitize_keeps_code_around_lifetimes() {
        let clean = sanitize("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(clean[0].contains("trim"));
        assert!(clean[0].contains("str"));
    }

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(lint_str("crates/core/src/engine.rs", src).len(), 1);
        assert_eq!(lint_str("crates/algos/src/runner.rs", src).len(), 0);
        assert_eq!(lint_str("crates/core/tests/foo.rs", src).len(), 0);
    }

    #[test]
    fn test_module_tail_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { x.unwrap(); }\n}";
        assert_eq!(lint_str("crates/core/src/engine.rs", src).len(), 0);
    }

    #[test]
    fn suppression_same_and_previous_line() {
        let same = "fn f() { x.unwrap(); } // lint:allow(no-unwrap)";
        assert_eq!(lint_str("crates/core/src/a.rs", same).len(), 0);
        let prev = "// lint:allow(no-unwrap)\nfn f() { x.unwrap(); }";
        assert_eq!(lint_str("crates/core/src/a.rs", prev).len(), 0);
        let wrong = "// lint:allow(no-unsafe)\nfn f() { x.unwrap(); }";
        assert_eq!(lint_str("crates/core/src/a.rs", wrong).len(), 1);
    }

    #[test]
    fn thread_spawn_allowlist() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lint_str("crates/core/src/engine.rs", src).len(), 1);
        assert_eq!(lint_str("crates/core/src/worker.rs", src).len(), 0);
        assert_eq!(lint_str("crates/core/src/sio.rs", src).len(), 0);
    }

    #[test]
    fn wall_clock_scope() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_str("crates/core/src/worker.rs", src).len(), 1);
        assert_eq!(lint_str("crates/core/src/engine.rs", src).len(), 0, "stage timing exempt");
        assert_eq!(lint_str("crates/bench/src/lib.rs", src).len(), 0);
    }

    #[test]
    fn unordered_iteration_detected() {
        let src = "struct S { states: HashMap<u32, u32> }\nfn f(s: &S) { for (k, v) in &s.states {} }\nfn g(states: &HashMap<u32,u32>) { states.get(&1); }";
        let v = lint_str("crates/core/src/worker.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unordered-iter");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unordered_lookup_not_flagged() {
        let src = "fn f() { let mut states: HashMap<u32, u32> = HashMap::new(); states.insert(1, 2); states.remove(&1); }";
        assert_eq!(lint_str("crates/core/src/worker.rs", src).len(), 0);
    }

    #[test]
    fn unsafe_flagged_everywhere() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        assert_eq!(lint_str("crates/algos/src/runner.rs", src).len(), 1);
        // ...but not as a substring of an identifier.
        assert_eq!(lint_str("crates/algos/src/runner.rs", "fn not_unsafe_fn() {}").len(), 0);
        // The forbid attribute itself must not trip the rule.
        assert_eq!(lint_str("crates/algos/src/lib.rs", "#![forbid(unsafe_code)]").len(), 0);
    }

    #[test]
    fn manifest_rules() {
        let mut out = Vec::new();
        lint_manifest(
            "crates/foo/Cargo.toml",
            "[package]\nname = \"x\"\nversion = \"1.0\"\n[dependencies]\nserde = \"1.0\"\ngraphz-types = { workspace = true }\nrand = { path = \"../shims/rand\" }\n",
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("serde"));
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn manifest_version_key_flagged() {
        let mut out = Vec::new();
        lint_manifest(
            "crates/foo/Cargo.toml",
            "[dev-dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }
}
