//! Workspace-wide call graph over the token streams of [`crate::parser`].
//!
//! Resolution is *text-level* and crate-aware — the same deliberate trade
//! every analyzer in this crate makes (DESIGN.md §6k) — but method
//! receivers get a lightweight local type inference so that `buf.push(…)`
//! on a `Vec` does not resolve to the workspace's `RecordWriter::push`:
//!
//! * `self.m(…)` — the methods named `m` of the enclosing impl's Self
//!   type;
//! * `self.field.m(…)` — the field's declared type (struct declarations
//!   are scanned workspace-wide for `field: Type` pairs), then `Type::m`;
//! * `x.m(…)` — the local's type when it can be inferred from a typed
//!   binding (`let x: Type`, a `x: Type` parameter, or
//!   `let x = Type::new(…)`), then `Type::m`;
//! * a *typed* receiver whose type declares no method `m` is external —
//!   the call goes to std (`Vec::push`) or through a trait object;
//! * an *untyped* receiver (chained calls, pattern bindings) falls back to
//!   every workspace method named `m`, unless `m` is a well-known std
//!   method name ([`STD_METHODS`]) — those are always external;
//! * `Type::m(…)` / `Self::m(…)` — the methods of that type (turbofish
//!   segments are skipped); `module::f(…)` with a lowercase head resolves
//!   to the free functions named `f`;
//! * `f(…)` — every free function named `f` (uppercase heads are tuple
//!   struct / enum constructors and stay unresolved).
//!
//! Unresolved calls (std, closures, fn pointers) produce no edges; their
//! effects are covered by the *intrinsic* token scans in
//! [`crate::ipa::summary`]. The deliberate blind spots — deref-forwarded
//! methods, trait-default bodies, and workspace methods that share a
//! [`STD_METHODS`] name and are only ever called through untyped
//! receivers — are documented in DESIGN.md §6k next to the rules that
//! inherit them.

use std::collections::BTreeMap;

use crate::parser::{crate_of, impl_owners, Function, SourceFile, Token};

/// One function in the workspace graph.
pub struct FnNode {
    /// Index into the parsed file list.
    pub file: usize,
    /// Index into that file's `functions`.
    pub func: usize,
    pub name: String,
    /// Self type of the enclosing `impl`, if any.
    pub owner: Option<String>,
    /// Crate the defining file belongs to.
    pub krate: String,
    /// Outgoing call sites, in body token order.
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// Display name: `crate::Type::method` or `crate::function`.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.krate, o, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// One call site inside a function body.
pub struct CallSite {
    /// Token index (into the defining file's stream) of the callee name.
    pub token: usize,
    pub line: usize,
    /// Display label, e.g. `Type::method`, `.method`, or `function`.
    pub label: String,
    /// Candidate callees (node indices). Empty = unresolved/external.
    pub targets: Vec<usize>,
    /// A `?` terminates the method chain hanging off this call — its error
    /// propagates to the caller's error exit.
    pub question: bool,
    /// A contextualizing call (`.ctx`/`.map_err`/`.with_context`/`.ok`)
    /// appears on the chain before the `?` (or chain end).
    pub ctx_on_chain: bool,
    /// Every path from the function entry to this call passes a
    /// FaultSurface gate (`.op(`/`.wrap(`) — forward must-analysis over the
    /// caller's CFG.
    pub gated: bool,
}

/// The workspace call graph plus its reverse edges.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `callers[f]` = nodes with at least one call site targeting `f`.
    pub callers: Vec<Vec<usize>>,
}

/// Keywords that look like call heads (`if (…)`, `while (…)`) but are not.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "as", "in", "move", "else", "break",
    "continue", "let", "fn", "impl", "where", "ref", "mut", "dyn", "box", "await", "yield",
];

/// Chain calls that attach context or deliberately reshape an error.
const CTX_CALLS: &[&str] = &["ctx", "map_err", "with_context", "ok", "unwrap_or", "unwrap_or_else", "or_else"];

/// Lowercase path heads that are std (or std-like) modules: a call through
/// one is external even when the workspace happens to define a free
/// function with the same name (`fs::write` must never resolve to a repo
/// `write`).
const STD_HEADS: &[&str] = &[
    "fs", "std", "io", "mem", "ptr", "cmp", "thread", "process", "env", "path", "iter", "slice",
    "str", "char", "fmt", "time",
];

/// Std/prelude method names. A call `recv.m(…)` whose receiver type could
/// not be inferred and whose name is in this list is treated as external
/// rather than resolving to every workspace method that happens to share
/// the name (`Vec::push` must never resolve to `RecordWriter::push`).
/// Workspace methods with these names still resolve through typed
/// receivers (`self.m`, `self.field.m`, `Type::m`, typed locals).
const STD_METHODS: &[&str] = &[
    // collections / slices
    "push", "pop", "insert", "remove", "get", "get_mut", "contains", "contains_key", "entry",
    "clear", "extend", "drain", "retain", "len", "is_empty", "truncate", "resize", "reserve",
    "split_off", "swap", "fill", "sort", "sort_by", "sort_by_key", "sort_unstable",
    "sort_unstable_by", "sort_unstable_by_key", "dedup", "binary_search", "binary_search_by",
    "first", "last", "windows", "chunks", "chunks_exact", "concat", "to_vec",
    // iterators
    "iter", "iter_mut", "into_iter", "next", "map", "filter", "filter_map", "flat_map",
    "flatten", "fold", "collect", "sum", "count", "rev", "zip", "enumerate", "take", "skip",
    "take_while", "skip_while", "position", "find", "any", "all", "min", "max", "min_by",
    "max_by", "min_by_key", "max_by_key", "nth", "peekable", "peek", "step_by", "keys",
    "values", "values_mut", "by_ref", "cloned", "copied",
    // io / sync (`create`/`open`/`append`/`truncate` are the OpenOptions
    // builder chain — untyped because the receiver is a `)` of the
    // previous builder call)
    "write", "write_all", "write_fmt", "read", "read_exact", "read_to_end", "read_to_string",
    "flush", "seek", "sync_all", "sync_data", "set_len", "lock", "send", "recv", "try_recv",
    "join", "spawn", "store", "create", "create_new", "open", "append", "truncate",
    // conversions / options / strings
    "clone", "as_ref", "as_mut", "as_str", "as_slice", "as_bytes", "as_path", "to_owned",
    "to_string", "to_path_buf", "into", "try_into", "parse", "unwrap_or_default", "ok_or",
    "ok_or_else", "and_then", "is_some", "is_none", "is_ok", "is_err", "push_str", "trim",
    "starts_with", "ends_with", "split", "splitn", "replace", "chars", "bytes", "display",
    "exists", "is_file", "is_dir", "extension", "file_name", "parent", "to_le_bytes",
    "to_be_bytes", "elapsed", "as_secs", "as_millis", "as_micros", "abs", "is_finite",
    "is_nan",
];

fn tx(t: &[Token], k: usize) -> &str {
    t.get(k).map(|x| x.text.as_str()).unwrap_or("")
}

/// Index just past the `)` matching the `(` at `open`.
pub(crate) fn close_paren(t: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < t.len() {
        match t[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    t.len()
}

fn lower_head(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Read a type path starting at token `k`: skips `&`/`mut`/lifetimes, then
/// follows `A::B::C`, returning the final path segment (the type head
/// before any generics). `None` for tuple, array, `dyn`, `impl`, and
/// fn-pointer types — those receivers stay untyped.
fn type_head(t: &[Token], mut k: usize) -> Option<String> {
    loop {
        match tx(t, k) {
            "&" | "&&" | "mut" => k += 1,
            "'" => k += 2,
            _ => break,
        }
    }
    let s = tx(t, k);
    if !t.get(k).is_some_and(Token::is_name) || s == "dyn" || s == "impl" || s == "fn" {
        return None;
    }
    let mut head = s.to_string();
    while tx(t, k + 1) == "::" && t.get(k + 2).is_some_and(Token::is_name) {
        k += 2;
        head = tx(t, k).to_string();
    }
    Some(head)
}

/// `field: Type` pairs of every named-field `struct` declaration, keyed by
/// `(struct name, field name)`. Feeds `self.field.m(…)` receiver typing.
fn struct_fields(files: &[&SourceFile]) -> BTreeMap<(String, String), String> {
    let mut out = BTreeMap::new();
    for file in files {
        let t = &file.tokens;
        let mut i = 0;
        while i + 1 < t.len() {
            if tx(t, i) != "struct" || !t[i + 1].is_name() {
                i += 1;
                continue;
            }
            let owner = tx(t, i + 1).to_string();
            // Find the body `{` (skipping generics); `;`/`(` at angle
            // depth zero means a unit/tuple struct — no named fields.
            let mut j = i + 2;
            let mut angle = 0i64;
            let open = loop {
                if j >= t.len() {
                    break None;
                }
                match tx(t, j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "{" if angle <= 0 => break Some(j),
                    ";" | "(" if angle <= 0 => break None,
                    _ => {}
                }
                j += 1;
            };
            let Some(open) = open else {
                i = j.max(i + 2);
                continue;
            };
            // Fields: `name :` at brace depth 1 with all other nesting
            // closed (commas inside `<…>`/`(…)`/`[…]` belong to the type).
            let (mut brace, mut angle, mut paren, mut bracket) = (0i64, 0i64, 0i64, 0i64);
            let mut k = open;
            while k < t.len() {
                match tx(t, k) {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    ":" if brace == 1
                        && angle <= 0
                        && paren == 0
                        && bracket == 0
                        && k > 0
                        && t[k - 1].is_name() =>
                    {
                        if let Some(ty) = type_head(t, k + 1) {
                            out.insert((owner.clone(), tx(t, k - 1).to_string()), ty);
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            i = k.max(i + 2);
        }
    }
    out
}

/// Locals of `func` with inferrable types: typed params (`x: Type`),
/// typed lets (`let x: Type = …`), and constructor lets
/// (`let x = Type::new(…)` — any associated call with an uppercase head).
/// Flow-insensitive; a shadowing `let` overwrites the earlier type.
fn local_types(t: &[Token], func: &Function) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    // Locate the signature: the `fn` keyword immediately naming this
    // function (stepping past fn-pointer types in earlier params).
    let mut f = func.body.start;
    while f > 0 {
        f -= 1;
        if tx(t, f) == "fn" && tx(t, f + 1) == func.name {
            break;
        }
    }
    // Params: `name : Type` at paren depth 1, generics skipped.
    let mut k = f + 2;
    let mut angle = 0i64;
    while k < func.body.start && !(tx(t, k) == "(" && angle <= 0) {
        match tx(t, k) {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            _ => {}
        }
        k += 1;
    }
    let (mut paren, mut angle, mut bracket) = (0i64, 0i64, 0i64);
    while k < func.body.start {
        match tx(t, k) {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ":" if paren == 1 && angle <= 0 && bracket == 0 && t[k - 1].is_name() => {
                if let Some(ty) = type_head(t, k + 1) {
                    out.insert(tx(t, k - 1).to_string(), ty);
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Body lets.
    for g in func.body.clone() {
        if tx(t, g) != "let" {
            continue;
        }
        let mut j = g + 1;
        if tx(t, j) == "mut" {
            j += 1;
        }
        if !t.get(j).is_some_and(Token::is_name) {
            continue; // pattern binding — untyped
        }
        let name = tx(t, j).to_string();
        if tx(t, j + 1) == ":" {
            if let Some(ty) = type_head(t, j + 2) {
                out.insert(name, ty);
            }
        } else if tx(t, j + 1) == "=" {
            // `let x = path::Type::assoc(…)` — the last uppercase path
            // segment before the called name is the constructed type.
            let mut k = j + 2;
            let mut ty: Option<String> = None;
            while t.get(k).is_some_and(Token::is_name) && tx(t, k + 1) == "::" {
                if !lower_head(tx(t, k)) {
                    ty = Some(tx(t, k).to_string());
                }
                k += 2;
            }
            if let (Some(ty), true) =
                (ty, t.get(k).is_some_and(Token::is_name) && tx(t, k + 1) == "(")
            {
                out.insert(name, ty);
            }
        }
    }
    out
}

/// Walk the method chain hanging off a call whose arguments close at
/// `after`; returns `(question, ctx_on_chain)`.
pub(crate) fn chain_info(t: &[Token], mut pos: usize) -> (bool, bool) {
    let mut ctx = false;
    loop {
        if tx(t, pos) == "?" {
            return (true, ctx);
        }
        if tx(t, pos) == "." && t.get(pos + 1).is_some_and(Token::is_name) && tx(t, pos + 2) == "(" {
            if CTX_CALLS.contains(&tx(t, pos + 1)) {
                ctx = true;
            }
            pos = close_paren(t, pos + 2);
            continue;
        }
        return (false, ctx);
    }
}

/// Build the call graph over already-parsed files. `files` is the full
/// resolution scope; node `file` indices point into it.
pub fn build(files: &[&SourceFile]) -> CallGraph {
    // Pass 1: nodes + name indices.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let owners = impl_owners(&file.tokens);
        for (gi, func) in file.functions.iter().enumerate() {
            let owner = owners
                .iter()
                .find(|(r, _)| r.contains(&func.body.start))
                .map(|(_, name)| name.clone());
            nodes.push(FnNode {
                file: fi,
                func: gi,
                name: func.name.clone(),
                owner,
                krate: crate_of(&file.rel),
                calls: Vec::new(),
            });
        }
    }
    for (id, n) in nodes.iter().enumerate() {
        match &n.owner {
            Some(o) => {
                methods.entry(&n.name).or_default().push(id);
                typed.entry((o, &n.name)).or_default().push(id);
            }
            None => free.entry(&n.name).or_default().push(id),
        }
    }

    // Pass 2: call sites. Resolution never creates self-edges on accident —
    // recursion is legitimate and the SCC condensation handles it.
    let fields = struct_fields(files);
    let mut all_calls: Vec<Vec<CallSite>> = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let file = &files[node.file];
        let t = &file.tokens;
        let func = &file.functions[node.func];
        let gates = super::gate_dominated(t, func);
        let locals = local_types(t, func);
        let mut calls = Vec::new();
        for g in func.body.clone() {
            if !t[g].is_name() || tx(t, g + 1) != "(" {
                continue;
            }
            let name = t[g].text.as_str();
            if NON_CALL_WORDS.contains(&name) {
                continue;
            }
            let prev = if g == 0 { "" } else { tx(t, g - 1) };
            if prev == "fn" {
                continue; // nested definition, not a call
            }
            let (label, targets): (String, Vec<usize>) = if prev == "." {
                // `recv.m(…)` — infer the receiver type where the text
                // allows it; a typed receiver resolves only through its
                // type (a miss means std/deref/trait-object: external).
                let recv = if g >= 2 { tx(t, g - 2) } else { "" };
                let ty: Option<String> = if recv == "self" && (g < 3 || tx(t, g - 3) != ".") {
                    node.owner.clone()
                } else if g >= 4
                    && t[g - 2].is_name()
                    && tx(t, g - 3) == "."
                    && tx(t, g - 4) == "self"
                    && (g < 5 || tx(t, g - 5) != ".")
                {
                    // `self.field.m(…)` — the field's declared type.
                    node.owner
                        .as_ref()
                        .and_then(|o| fields.get(&(o.clone(), recv.to_string())))
                        .cloned()
                } else if g >= 2
                    && t[g - 2].is_name()
                    && (g < 3 || (tx(t, g - 3) != "." && tx(t, g - 3) != "::"))
                {
                    locals.get(recv).cloned()
                } else {
                    None
                };
                match ty {
                    Some(ty) => {
                        let ids = typed.get(&(ty.as_str(), name)).cloned().unwrap_or_default();
                        (format!("{ty}.{name}"), ids)
                    }
                    None if STD_METHODS.contains(&name) => (format!(".{name}"), Vec::new()),
                    None => (
                        format!(".{name}"),
                        methods.get(name).cloned().unwrap_or_default(),
                    ),
                }
            } else if prev == "::" && g >= 2 {
                // `Head::m(…)`, stepping back over a turbofish segment.
                let mut h = g - 2;
                if tx(t, h) == ">" || tx(t, h) == ">>" {
                    let mut depth = 0i64;
                    loop {
                        match tx(t, h) {
                            ">" => depth += 1,
                            ">>" => depth += 2,
                            "<" => depth -= 1,
                            _ => {}
                        }
                        if depth <= 0 || h == 0 {
                            break;
                        }
                        h -= 1;
                    }
                    // Expect `Head ::` before the `<…>` group.
                    if h >= 2 && tx(t, h - 1) == "::" {
                        h -= 2;
                    }
                }
                let head = tx(t, h).to_string();
                if head == "Self" {
                    let ids = node
                        .owner
                        .as_deref()
                        .and_then(|o| typed.get(&(o, name)))
                        .cloned()
                        .unwrap_or_default();
                    (format!("Self::{name}"), ids)
                } else if lower_head(&head) {
                    // Module path: free functions named `name` — unless the
                    // head is a std module, which is always external.
                    let ids = if STD_HEADS.contains(&head.as_str()) {
                        Vec::new()
                    } else {
                        free.get(name).cloned().unwrap_or_default()
                    };
                    (format!("{head}::{name}"), ids)
                } else {
                    let ids = typed
                        .get(&(head.as_str(), name))
                        .cloned()
                        .unwrap_or_default();
                    (format!("{head}::{name}"), ids)
                }
            } else if lower_head(name) {
                // Bare `f(…)` — free functions only; uppercase heads are
                // tuple-struct/variant constructors.
                (name.to_string(), free.get(name).cloned().unwrap_or_default())
            } else {
                continue;
            };
            let after = close_paren(t, g + 1);
            let (question, ctx_on_chain) = chain_info(t, after);
            calls.push(CallSite {
                token: g,
                line: t[g].line,
                label,
                targets,
                question,
                ctx_on_chain,
                gated: gates.contains(&g),
            });
        }
        all_calls.push(calls);
    }
    for (node, calls) in nodes.iter_mut().zip(all_calls) {
        node.calls = calls;
    }

    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        for c in &n.calls {
            for &tgt in &c.targets {
                if !callers[tgt].contains(&id) {
                    callers[tgt].push(id);
                }
            }
        }
    }
    CallGraph { nodes, callers }
}

impl CallGraph {
    /// Nodes matching `(owner, name)`; `owner` of `""` matches free fns.
    pub fn lookup(&self, owner: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.name == name
                    && match (&n.owner, owner.is_empty()) {
                        (Some(o), false) => o == owner,
                        (None, true) => true,
                        _ => false,
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }
}
