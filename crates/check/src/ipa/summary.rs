//! Bottom-up function effect summaries: what a call can *transitively* do.
//!
//! Two layers (DESIGN.md §6k):
//!
//! 1. **Local sites** ([`local_sites`]): a token scan of one function body
//!    for the effects the interprocedural rules care about — heap
//!    allocation, lock acquisition, file IO (with file-*creating* sinks
//!    distinguished), panic sources (unwrap/expect, release-enabled
//!    asserts, non-literal indexing and slicing, division by a non-literal
//!    divisor), and thread spawns. Float division is skipped (IEEE division
//!    never panics), as is indexing with all-literal subscripts (fixed-size
//!    lookup tables — wrong constants fail the first unit test, not
//!    production).
//! 2. **Transitive summaries** ([`summarize`]): the per-function effect
//!    bits joined over the call graph, computed on the SCC condensation in
//!    callees-first order so recursion converges in one pass — every
//!    member of a cycle gets the union of the whole cycle's effects.

use crate::parser::{Function, SourceFile, Token};

use super::callgraph::{chain_info, close_paren, CallGraph};

/// Effect kinds a local site can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Fresh heap allocation (`vec![…]`, `with_capacity`, `Box::new`,
    /// `format!`, `.to_vec()`, `.collect()`, …). Growth of an existing
    /// buffer (`.push`) is deliberately *not* an allocation: amortized-zero
    /// growth into pooled, prewarmed buffers is exactly the BatchPool
    /// contract, and the pool counters assert fresh==0 at steady state.
    Alloc,
    /// Mutex/RwLock acquisition (`.lock(`).
    Lock,
    /// Non-creating filesystem call (`fs::read`, `File::open`, …).
    FileIo,
    /// File-creating/renaming sink (the flow pass's SINK_PATHS plus
    /// `write_atomic`) — what fault-surface-reach must see gated.
    SinkIo,
    /// unwrap/expect, release-enabled assert, panicking macro, non-literal
    /// index/slice, division/remainder by a non-literal divisor.
    Panic,
    /// Thread spawn.
    Spawn,
}

/// One effect site in a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Token index of the site (into the defining file's stream).
    pub token: usize,
    pub line: usize,
    pub effect: Effect,
    /// Short display form of what fired, e.g. ```vec![…]``` or `File::create`.
    pub what: String,
    /// For `FileIo`/`SinkIo` only: the call's error `?`-propagates with no
    /// contextualizing call on its method chain (error-context-prop seed).
    pub bare_question: bool,
}

/// Transitive effect bits for one function (the summary lattice: a product
/// of booleans, joined by OR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    pub allocates: bool,
    pub locks: bool,
    pub file_io: bool,
    pub may_panic: bool,
    pub spawns: bool,
}

impl Summary {
    fn join(self, o: Summary) -> Summary {
        Summary {
            allocates: self.allocates || o.allocates,
            locks: self.locks || o.locks,
            file_io: self.file_io || o.file_io,
            may_panic: self.may_panic || o.may_panic,
            spawns: self.spawns || o.spawns,
        }
    }

    fn absorb(&mut self, e: Effect) {
        match e {
            Effect::Alloc => self.allocates = true,
            Effect::Lock => self.locks = true,
            Effect::FileIo | Effect::SinkIo => self.file_io = true,
            Effect::Panic => self.may_panic = true,
            Effect::Spawn => self.spawns = true,
        }
    }
}

/// Panicking macros (release builds included). `debug_assert*` compiles out
/// of release and is the blessed way to state hot-path invariants.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// `.m(…)` method calls that freshly allocate.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect", "into_bytes"];

/// `.m(…)` method calls that panic on bad lengths.
const SLICE_METHODS: &[&str] = &["copy_from_slice", "clone_from_slice", "split_at", "split_at_mut"];

/// `Type::new(…)` heads that allocate.
const ALLOC_NEW: &[&str] = &["Box", "Rc", "Arc"];

/// Keywords that can directly precede `[` without it being an index
/// expression (array literals in statement position, patterns).
const KW_BEFORE_BRACKET: &[&str] = &[
    "if", "in", "return", "else", "match", "loop", "while", "for", "move", "as", "break",
    "continue", "let", "mut", "ref", "box", "await", "yield", "where", "impl", "fn", "pub", "use",
    "static", "const", "struct", "enum", "type", "dyn",
];

fn tx(t: &[Token], k: usize) -> &str {
    t.get(k).map(|x| x.text.as_str()).unwrap_or("")
}

fn is_digit_start(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Is the statement around token `g` floating-point? True when any token
/// between the enclosing `;`/`{`/`}` boundaries is an `f32`/`f64` spelling
/// or part of a float literal (`1`, `.`, `5`). IEEE float division never
/// panics, so div sites in float statements are skipped.
fn float_statement(t: &[Token], g: usize, body: &std::ops::Range<usize>) -> bool {
    /// Methods that only exist on floats; `(m0 / z).ln()` has no `f64`
    /// token or float literal, but the `.ln()` identifies the statement.
    const FLOAT_METHODS: &[&str] = &[
        "ln", "log2", "log10", "exp", "exp2", "sqrt", "powi", "powf", "floor", "ceil", "round",
        "recip", "to_radians", "tanh", "hypot", "atan2",
    ];
    let boundary = |s: &str| s == ";" || s == "{" || s == "}";
    let mut lo = g;
    while lo > body.start && !boundary(tx(t, lo - 1)) {
        lo -= 1;
    }
    let mut hi = g;
    while hi < body.end && !boundary(tx(t, hi)) {
        hi += 1;
    }
    for k in lo..hi {
        let s = tx(t, k);
        if s == "f32" || s == "f64" || s.ends_with("f32") || s.ends_with("f64") {
            return true;
        }
        if is_digit_start(s) && tx(t, k + 1) == "." && is_digit_start(tx(t, k + 2)) {
            return true;
        }
        if FLOAT_METHODS.contains(&s) && k > lo && tx(t, k - 1) == "." && tx(t, k + 1) == "(" {
            return true;
        }
    }
    false
}

/// All tokens strictly inside the `[`…`]` starting at `open` are numeric
/// literals (a fixed-table lookup like `POTENTIAL[0][1]`).
fn literal_index(t: &[Token], open: usize) -> bool {
    let mut depth = 0i64;
    let mut k = open;
    let mut any = false;
    while k < t.len() {
        match tx(t, k) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return any;
                }
            }
            s if depth >= 1 => {
                if is_digit_start(s) {
                    any = true;
                } else {
                    return false;
                }
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// Scan one function body for local effect sites.
pub fn local_sites(file: &SourceFile, func: &Function) -> Vec<Site> {
    let t = &file.tokens;
    let mut out = Vec::new();
    let mut site = |token: usize, effect: Effect, what: String, bare: bool| {
        out.push(Site { token, line: t[token].line, effect, what, bare_question: bare });
    };
    for g in func.body.clone() {
        let s = tx(t, g);
        // Macros.
        if t[g].is_name() && tx(t, g + 1) == "!" {
            if s == "vec" {
                site(g, Effect::Alloc, "vec![…]".into(), false);
            } else if s == "format" {
                site(g, Effect::Alloc, "format!".into(), false);
            } else if PANIC_MACROS.contains(&s) {
                site(g, Effect::Panic, format!("{s}!"), false);
            }
            continue;
        }
        // Method calls: `.m(…)`.
        if g > 0 && tx(t, g - 1) == "." && t[g].is_name() && tx(t, g + 1) == "(" {
            if ALLOC_METHODS.contains(&s) {
                site(g, Effect::Alloc, format!(".{s}()"), false);
            } else if s == "lock" {
                site(g, Effect::Lock, ".lock()".into(), false);
            } else if s == "unwrap"
                || s == "expect"
                || s == "unwrap_err"
                || SLICE_METHODS.contains(&s)
            {
                site(g, Effect::Panic, format!(".{s}()"), false);
            } else if s == "spawn" {
                site(g, Effect::Spawn, ".spawn()".into(), false);
            }
            continue;
        }
        // Qualified calls: `Seg::m(…)`.
        if t[g].is_name() && tx(t, g + 1) == "::" {
            let m = tx(t, g + 2);
            let is_call = tx(t, g + 3) == "(";
            if is_call && m == "new" && ALLOC_NEW.contains(&s) {
                site(g, Effect::Alloc, format!("{s}::new"), false);
            } else if is_call && (m == "with_capacity" || (s == "String" && m == "from")) {
                site(g, Effect::Alloc, format!("{s}::{m}"), false);
            } else if is_call && s == "thread" && m == "spawn" {
                site(g, Effect::Spawn, "thread::spawn".into(), false);
            }
        }
        // File IO — creating sinks first (turbofish-aware), then the
        // non-creating fs entry points shared with the flow error-context
        // rule. Both record whether the error `?`-propagates bare.
        if let Some(call) = crate::flow::surface::sink_at(t, g) {
            // Find the argument-list `(`: after `Seg::m` or right after a
            // bare `write_atomic`.
            let mut open = g + 1;
            while open < t.len() && tx(t, open) != "(" {
                open += 1;
            }
            let (q, ctx) = chain_info(t, close_paren(t, open));
            site(g, Effect::SinkIo, call, q && !ctx);
            continue;
        }
        if let Some(call) = crate::flow::errctx::FS_CALLS.iter().find_map(|&(a, b)| {
            (s == a && tx(t, g + 1) == "::" && tx(t, g + 2) == b && tx(t, g + 3) == "(")
                .then(|| format!("{a}::{b}"))
        }) {
            let (q, ctx) = chain_info(t, close_paren(t, g + 3));
            site(g, Effect::FileIo, call, q && !ctx);
            continue;
        }
        // Index / slice expressions: `expr[…]` (prev token ends a value).
        if s == "[" && g > 0 {
            let p = t[g - 1].text.as_str();
            let value_before =
                (t[g - 1].is_name() && !KW_BEFORE_BRACKET.contains(&p)) || p == ")" || p == "]";
            if value_before && !literal_index(t, g) {
                site(g, Effect::Panic, format!("{p}[…]"), false);
            }
            continue;
        }
        // Integer division / remainder by a non-literal divisor.
        if (s == "/" || s == "%") && g > 0 {
            let p = tx(t, g - 1);
            let value_before = t[g - 1].is_word() || p == ")" || p == "]";
            let next = tx(t, g + 1);
            let literal_nonzero = is_digit_start(next)
                && !next.trim_start_matches("0x").trim_start_matches('0').is_empty()
                && tx(t, g + 2) != ".";
            if value_before && !literal_nonzero && !float_statement(t, g, &func.body) {
                let op = if s == "/" { "division" } else { "remainder" };
                site(g, Effect::Panic, format!("{op} `{p} {s} {next}`"), false);
            }
        }
    }
    out
}

/// Strongly connected components of `adj`, emitted callees-first (Tarjan:
/// when a component is popped, every component it points to is already
/// out). Iterative so deep call chains cannot overflow the stack.
pub fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, ci)) = frames.last() {
            if ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                let w = adj[v][ci];
                if let Some(last) = frames.last_mut() {
                    last.1 += 1;
                }
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Transitive summaries for every node: local effects joined with every
/// (possibly recursive) callee's summary, SCC condensation in callees-first
/// order. Unresolved calls contribute nothing here — their *local* token
/// footprint (the `vec!`, the `.unwrap()`) is already a local site in the
/// caller, which is the conservative floor text-level resolution supports.
pub fn summarize(graph: &CallGraph, sites: &[Vec<Site>]) -> Vec<Summary> {
    let adj: Vec<Vec<usize>> = graph
        .nodes
        .iter()
        .map(|n| {
            let mut ts: Vec<usize> = n.calls.iter().flat_map(|c| c.targets.iter().copied()).collect();
            ts.sort_unstable();
            ts.dedup();
            ts
        })
        .collect();
    let mut summaries = vec![Summary::default(); graph.nodes.len()];
    for comp in sccs(&adj) {
        let mut s = Summary::default();
        for &m in &comp {
            for site in &sites[m] {
                s.absorb(site.effect);
            }
            for &t in &adj[m] {
                s = s.join(summaries[t]);
            }
        }
        for &m in &comp {
            summaries[m] = s;
        }
    }
    summaries
}
