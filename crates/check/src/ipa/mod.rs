//! graphz-ipa: interprocedural analysis over the workspace call graph.
//!
//! lint (§6e) sees lines, audit (§6f) sees token adjacency, flow (§6j)
//! sees paths *within* one function. This pass sees **call chains**: a
//! workspace call graph ([`callgraph`]) plus bottom-up effect summaries
//! ([`summary`]) let four rules reason about what a function does
//! *transitively* (DESIGN.md §6k):
//!
//! * `hot-path-alloc` — nothing reachable from the Worker per-message
//!   compute loop (`ShardState::process`) or the shard-local outbox send
//!   path (`ShardState::defer`) may allocate, take a lock, touch a file,
//!   or spawn. BatchPool reuse stops being a bench anecdote and becomes a
//!   checked invariant.
//! * `panic-freedom` — no unwrap/expect, release-enabled assert,
//!   non-literal index/slice, or non-literal division reachable from the
//!   compute phase entry points `Engine::run` drives (`ShardState::*`,
//!   `Executor::*`, the shard-plan free functions).
//! * `fault-surface-reach` — every file-creating sink in io/extsort/storage
//!   is FaultSurface-gated on **all call paths**. Closes the two holes in
//!   flow's intraprocedural `fault-surface-bypass`: mechanism files were
//!   exempt wholesale, and a helper whose caller gates was invisible.
//! * `error-context-prop` — an fs error that `?`-crosses a crate boundary
//!   must have met a `.ctx(…)` (or deliberate reshaping) somewhere on the
//!   chain at or below the crossing.
//!
//! Findings reuse the lint [`Violation`] shape; `// ipa:allow(<rule>)` on
//! the offending line or the line above suppresses one rule at one site.

pub mod callgraph;
pub mod summary;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::flow::cfg::build as build_cfg;
use crate::flow::solver::{solve, Direction};
use crate::flow::surface::gate_at;
use crate::lint::{Rule, Violation};
use crate::parser::{parse_tree, Function, SourceFile, Token};

use callgraph::{build, CallGraph};
use summary::{local_sites, Effect, Site};

/// Every ipa rule, in reporting order. Scopes bound where a rule *reports*
/// (the site's file); reachability itself is workspace-wide.
pub const IPA_RULES: &[Rule] = &[
    Rule {
        name: "hot-path-alloc",
        why: "one heap allocation, lock, or file touch per message erases \
              the small-machine win the bench gate protects; everything the \
              Worker compute loop and outbox send path reach must run on \
              pooled, prewarmed memory",
        scope: &[],
        allow: &[],
    },
    Rule {
        name: "panic-freedom",
        why: "a panic anywhere the compute phase reaches poisons worker \
              queues instead of surfacing a typed GraphError; unwraps, \
              release asserts, non-literal indexing, and non-literal \
              division must not be transitively reachable",
        scope: &[],
        allow: &[],
    },
    Rule {
        name: "fault-surface-reach",
        why: "a file-creating sink reachable over any ungated call path \
              never sees injected faults, so the chaos sweeps certify a \
              write path production does not take — including paths through \
              the surface's own plumbing files that the intraprocedural \
              flow pass exempts wholesale",
        scope: &["crates/io/src/", "crates/extsort/src/", "crates/storage/src/"],
        allow: &[],
    },
    Rule {
        name: "error-context-prop",
        why: "an fs error that ?-crosses a crate boundary with no .ctx on \
              the chain below surfaces to the caller crate as a bare os \
              error with no file or stage named",
        scope: &[],
        allow: &[],
    },
    Rule {
        name: "serve-read-alloc",
        why: "a serve point query runs once per request across N reader \
              threads; an allocation, lock, or spawn reachable from the \
              GraphView hot methods turns concurrent readers into an \
              allocator/lock convoy (file reads are allowed — out-of-core \
              adjacency is the design)",
        scope: &[],
        allow: &[],
    },
];

/// Crates outside the interprocedural contract: reference baselines, bench
/// and codegen harnesses, the analyzers themselves, and the CLI front end.
/// Keeping them out of the graph also keeps resolution honest — `update`,
/// `run`, `next` are common method names there and every edge to them
/// would be noise.
const EXCLUDED: &[&str] = &[
    "crates/baselines/",
    "crates/bench/",
    "crates/check/",
    "crates/cli/",
    "crates/energy/",
    "crates/gen/",
];

/// Hot-path entries: the per-message compute loop and the shard-local
/// outbox send path (DESIGN.md §6d/§6i).
const HOT_ENTRIES: &[(&str, &str)] = &[("ShardState", "process"), ("ShardState", "defer")];

/// Compute-phase entries: everything `Engine::run`'s iteration loop drives
/// per batch — the shard plan, the executor feed/finish protocol, and the
/// per-shard state machine (which fans out into every algorithm kernel).
const PANIC_ENTRIES: &[(&str, &str)] = &[
    ("ShardState", "start"),
    ("ShardState", "process"),
    ("ShardState", "defer"),
    ("ShardState", "finish"),
    ("Executor", "start"),
    ("Executor", "feed"),
    ("Executor", "finish"),
    ("Executor", "finish_with"),
    ("", "plan_shards"),
    ("", "shard_of"),
    ("", "split_batch"),
];

/// Serve read-path entries: the four GraphView point-query methods every
/// protocol request dispatches to (DESIGN.md §6l).
const SERVE_ENTRIES: &[(&str, &str)] = &[
    ("GraphView", "degree"),
    ("GraphView", "neighbors_into"),
    ("GraphView", "khop_into"),
    ("GraphView", "value_bytes"),
];

pub(crate) fn ipa_rule(name: &str) -> &'static Rule {
    IPA_RULES
        .iter()
        .find(|r| r.name == name)
        .unwrap_or(&IPA_RULES[0]) // names are compile-time constants; unreachable
}

pub(crate) fn in_scope(name: &str, rel: &str) -> bool {
    let r = ipa_rule(name);
    (r.scope.is_empty() || r.scope.iter().any(|s| rel.contains(s)))
        && !r.allow.iter().any(|a| rel.contains(a))
}

/// Record a finding unless the rule is out of scope for the site's file or
/// an `ipa:allow(<rule>)` marker on the line (or the line above)
/// suppresses it.
pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
    out: &mut Vec<Violation>,
) {
    if !in_scope(rule, &file.rel) {
        return;
    }
    let raw = file.raw.get(line.wrapping_sub(1)).map(String::as_str).unwrap_or("");
    let prev = line.checked_sub(2).and_then(|p| file.raw.get(p)).map(String::as_str);
    let marker = format!("ipa:allow({rule})");
    if raw.contains(&marker) || prev.is_some_and(|p| p.contains(&marker)) {
        return;
    }
    out.push(Violation { rule, path: PathBuf::from(&file.rel), line, snippet: raw.to_string(), message });
}

/// Token indices dominated by a FaultSurface gate on every path from the
/// function entry (the gate token itself counts as gated — a `.op(` call
/// site carries its own gate). Same forward-must analysis as flow's
/// `fault-surface-bypass`, but returning the full dominated set so the
/// interprocedural rules can ask about arbitrary call/sink sites.
pub(crate) fn gate_dominated(t: &[Token], func: &Function) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    if !func.body.clone().any(|g| gate_at(t, g)) {
        return out;
    }
    let cfg = build_cfg(t, func);
    let (input, _) = solve(
        &cfg,
        Direction::Forward,
        false,
        true,
        |a: &bool, b: &bool| *a && *b,
        |b, inp| {
            let mut gated = *inp;
            for &g in &cfg.blocks[b].tokens {
                if gate_at(t, g) {
                    gated = true;
                }
            }
            gated
        },
    );
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut gated = input[b];
        for &g in &block.tokens {
            if gate_at(t, g) {
                gated = true;
            }
            if gated {
                out.insert(g);
            }
        }
    }
    out
}

/// The analysis bundle rules run over: the scoped files, their call graph,
/// and per-node local effect sites.
pub struct Analysis<'f> {
    pub files: Vec<&'f SourceFile>,
    pub graph: CallGraph,
    pub sites: Vec<Vec<Site>>,
}

/// Build the call graph and local sites over the in-scope subset of
/// `files`.
pub fn analyze(files: &[SourceFile]) -> Analysis<'_> {
    let scoped: Vec<&SourceFile> =
        files.iter().filter(|f| !EXCLUDED.iter().any(|e| f.rel.contains(e))).collect();
    let graph = build(&scoped);
    let sites = graph
        .nodes
        .iter()
        .map(|n| {
            let file = scoped[n.file];
            local_sites(file, &file.functions[n.func])
        })
        .collect();
    Analysis { files: scoped, graph, sites }
}

/// Entry node ids for a `(owner, name)` spec list (missing entries — e.g.
/// fixture trees exercising other rules — contribute nothing).
fn entry_nodes(graph: &CallGraph, specs: &[(&str, &str)]) -> Vec<usize> {
    let mut out = Vec::new();
    for &(owner, name) in specs {
        out.extend(graph.lookup(owner, name));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// BFS over call edges from `entries`; returns the parent map
/// (`usize::MAX` = unreached, self-parent = entry).
fn reach(graph: &CallGraph, entries: &[usize]) -> Vec<usize> {
    let mut parent = vec![usize::MAX; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in entries {
        parent[e] = e;
    }
    while let Some(v) = queue.pop_front() {
        for c in &graph.nodes[v].calls {
            for &t in &c.targets {
                if parent[t] == usize::MAX {
                    parent[t] = v;
                    queue.push_back(t);
                }
            }
        }
    }
    parent
}

/// `entry → … → node` as display names, following the parent map.
fn chain(graph: &CallGraph, parent: &[usize], mut node: usize) -> String {
    let mut names = vec![graph.nodes[node].qname()];
    while parent[node] != node {
        node = parent[node];
        names.push(graph.nodes[node].qname());
    }
    names.reverse();
    names.join(" → ")
}

/// `hot-path-alloc` and `panic-freedom` share one shape: BFS from an entry
/// set, report every local site of the offending effect class in every
/// reached function.
fn reachability_rule(
    a: &Analysis<'_>,
    rule: &'static str,
    entries: &[(&str, &str)],
    offends: fn(Effect) -> bool,
    describe: &str,
    out: &mut Vec<Violation>,
) {
    let entries = entry_nodes(&a.graph, entries);
    if entries.is_empty() {
        return;
    }
    let parent = reach(&a.graph, &entries);
    for (id, node) in a.graph.nodes.iter().enumerate() {
        if parent[id] == usize::MAX {
            continue;
        }
        for site in &a.sites[id] {
            if !offends(site.effect) {
                continue;
            }
            let verb = match site.effect {
                Effect::Alloc => "allocates",
                Effect::Lock => "takes a lock",
                Effect::FileIo | Effect::SinkIo => "touches the filesystem",
                Effect::Panic => "can panic",
                Effect::Spawn => "spawns a thread",
            };
            finding(
                a.files[node.file],
                rule,
                site.line,
                format!("`{}` {verb} {describe}: {}", site.what, chain(&a.graph, &parent, id)),
                out,
            );
        }
    }
}

/// `fault-surface-reach`: propagate "enterable with no gate established"
/// from the graph's roots through ungated call sites; report every local
/// sink that is not locally gate-dominated in an openly-enterable function.
fn fault_surface_reach(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let n = a.graph.nodes.len();
    // Roots: no resolved callers (public API, bin/test entry points).
    let mut open: Vec<bool> = (0..n).map(|id| a.graph.callers[id].is_empty()).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&id| open[id]).collect();
    while let Some(v) = queue.pop_front() {
        for c in &a.graph.nodes[v].calls {
            if c.gated {
                continue;
            }
            for &t in &c.targets {
                if !open[t] {
                    open[t] = true;
                    parent[t] = v;
                    queue.push_back(t);
                }
            }
        }
    }
    for (id, node) in a.graph.nodes.iter().enumerate() {
        if !open[id] || !a.sites[id].iter().any(|s| s.effect == Effect::SinkIo) {
            continue;
        }
        let file = a.files[node.file];
        let dominated = gate_dominated(&file.tokens, &file.functions[node.func]);
        for site in &a.sites[id] {
            if site.effect != Effect::SinkIo || dominated.contains(&site.token) {
                continue;
            }
            finding(
                file,
                "fault-surface-reach",
                site.line,
                format!(
                    "`{}` is reachable with no FaultSurface gate on the call path {}; \
                     this write path is invisible to the chaos sweeps",
                    site.what,
                    chain(&a.graph, &parent, id)
                ),
                out,
            );
        }
    }
}

/// `error-context-prop`: bottom-up "can surface a bare fs error" bit, then
/// report `?`-without-ctx call sites that cross a crate boundary into a
/// bare-raising callee.
fn error_context_prop(a: &Analysis<'_>, out: &mut Vec<Violation>) {
    let n = a.graph.nodes.len();
    let mut bare: Vec<bool> = (0..n)
        .map(|id| a.sites[id].iter().any(|s| {
            matches!(s.effect, Effect::FileIo | Effect::SinkIo) && s.bare_question
        }))
        .collect();
    // Propagate up through `?`-without-ctx call sites to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if bare[id] {
                continue;
            }
            let raises = a.graph.nodes[id].calls.iter().any(|c| {
                c.question && !c.ctx_on_chain && c.targets.iter().any(|&t| bare[t])
            });
            if raises {
                bare[id] = true;
                changed = true;
            }
        }
    }
    for node in &a.graph.nodes {
        for c in &node.calls {
            if !c.question || c.ctx_on_chain {
                continue;
            }
            let Some(&culprit) = c
                .targets
                .iter()
                .find(|&&t| bare[t] && a.graph.nodes[t].krate != node.krate)
            else {
                continue;
            };
            finding(
                a.files[node.file],
                "error-context-prop",
                c.line,
                format!(
                    "`{}` can surface a bare fs error from `{}` across the {}→{} crate \
                     boundary; add .ctx(op, path) on this chain or below",
                    c.label,
                    a.graph.nodes[culprit].qname(),
                    a.graph.nodes[culprit].krate,
                    node.krate
                ),
                out,
            );
        }
    }
}

/// Run every ipa rule over already-parsed files; findings are sorted by
/// path and line and deduplicated.
pub fn ipa_files(files: &[SourceFile]) -> Vec<Violation> {
    let a = analyze(files);
    let mut out = Vec::new();
    reachability_rule(
        &a,
        "hot-path-alloc",
        HOT_ENTRIES,
        |e| matches!(e, Effect::Alloc | Effect::Lock | Effect::FileIo | Effect::SinkIo | Effect::Spawn),
        "on the Worker hot path",
        &mut out,
    );
    reachability_rule(
        &a,
        "panic-freedom",
        PANIC_ENTRIES,
        |e| matches!(e, Effect::Panic),
        "in the compute phase",
        &mut out,
    );
    // FileIo is deliberately absent from the offends set: the read path is
    // out-of-core, so adjacency reads through the reusable cursor are the
    // point — but allocation, locks, sink creation, and spawns are not.
    reachability_rule(
        &a,
        "serve-read-alloc",
        SERVE_ENTRIES,
        |e| matches!(e, Effect::Alloc | Effect::Lock | Effect::SinkIo | Effect::Spawn),
        "on the serve read path",
        &mut out,
    );
    fault_surface_reach(&a, &mut out);
    error_context_prop(&a, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| (&a.path, a.line, a.rule, &a.message) == (&b.path, b.line, b.rule, &b.message));
    out
}

/// Parse and analyze the tree rooted at `root` (see [`parse_tree`] for the
/// file scope).
pub fn ipa_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(ipa_files(&parse_tree(root)?))
}

/// Human-readable call-graph dump for `--dump-callgraph`: one line per
/// function with its transitive summary bits, then its resolved calls.
pub fn dump_callgraph(files: &[SourceFile]) -> String {
    let a = analyze(files);
    let summaries = summary::summarize(&a.graph, &a.sites);
    let mut s = String::new();
    for (id, node) in a.graph.nodes.iter().enumerate() {
        let m = summaries[id];
        let bits: Vec<&str> = [
            (m.allocates, "alloc"),
            (m.locks, "lock"),
            (m.file_io, "io"),
            (m.may_panic, "panic"),
            (m.spawns, "spawn"),
        ]
        .iter()
        .filter_map(|&(on, name)| on.then_some(name))
        .collect();
        s.push_str(&format!(
            "{} [{}] ({}:{})\n",
            node.qname(),
            bits.join(","),
            a.files[node.file].rel,
            a.files[node.file].functions[node.func].line,
        ));
        for c in &node.calls {
            let targets: Vec<String> =
                c.targets.iter().map(|&t| a.graph.nodes[t].qname()).collect();
            s.push_str(&format!(
                "  {}:{} {}{} -> [{}]\n",
                c.line,
                c.label,
                if c.gated { "gated " } else { "" },
                if c.question { "?" } else { "" },
                targets.join(", ")
            ));
        }
    }
    s
}
