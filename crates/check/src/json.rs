//! Hand-rolled JSON emission for lint/audit/flow findings.
//!
//! The workspace is offline (no serde); the schema is small and stable, so
//! a ~60-line serializer keeps the machine-readable artifact contract
//! (`lint_findings.json` / `audit_findings.json` / `flow_findings.json`
//! in CI, merged into `analysis_findings.json` by `graphz-report`) without
//! a dependency. Schema:
//!
//! ```json
//! {
//!   "tool": "graphz-audit",
//!   "rules": ["lock-order", "…"],
//!   "count": 1,
//!   "findings": [
//!     {"rule": "…", "path": "…", "line": 3, "message": "…", "snippet": "…"}
//!   ]
//! }
//! ```

use std::path::Path;

use crate::lint::{Rule, Violation};

/// Schema version stamped into every document this module renders. Bump on
/// any shape change; the gate tests pin it so downstream consumers get a
/// stable contract.
pub const SCHEMA_VERSION: u32 = 1;

/// Render a findings report as a JSON document.
pub fn render(tool: &str, rules: &[Rule], findings: &[Violation]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"tool\": {},\n", quote(tool)));
    let names: Vec<String> = rules.iter().map(|r| quote(r.name)).collect();
    s.push_str(&format!("  \"rules\": [{}],\n", names.join(", ")));
    s.push_str(&format!("  \"count\": {},\n", findings.len()));
    s.push_str("  \"findings\": [\n");
    for (i, v) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            quote(v.rule),
            quote(&v.path.to_string_lossy()),
            v.line,
            quote(&v.message),
            quote(v.snippet.trim()),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render and write a findings report to `path`.
pub fn write_report(
    path: &Path,
    tool: &str,
    rules: &[Rule],
    findings: &[Violation],
) -> std::io::Result<()> {
    std::fs::write(path, render(tool, rules, findings))
}

/// Merge per-tool reports (each a complete [`render`]-shaped document)
/// into one combined artifact. Each input document is embedded verbatim
/// under its tool name; the top-level `count` is the sum of the embedded
/// `"count":` fields, recovered by a string scan so the merge needs no
/// JSON parser. Input documents end in a newline ([`render`] guarantees
/// it), which is trimmed before embedding.
pub fn render_combined(reports: &[(&str, &str)]) -> String {
    let mut total = 0u64;
    for (_, doc) in reports {
        total += embedded_count(doc).unwrap_or(0);
    }
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"count\": {total},\n"));
    let tools: Vec<String> = reports.iter().map(|(t, _)| quote(t)).collect();
    s.push_str(&format!("  \"tools\": [{}],\n", tools.join(", ")));
    s.push_str("  \"reports\": {\n");
    for (i, (tool, doc)) in reports.iter().enumerate() {
        // Re-indent the embedded document so the artifact stays readable.
        let body: Vec<String> =
            doc.trim_end().lines().map(|l| format!("    {l}")).collect();
        s.push_str(&format!("    {}: {}{}\n", quote(tool), body.join("\n").trim_start(), {
            if i + 1 == reports.len() {
                ""
            } else {
                ","
            }
        }));
    }
    s.push_str("  }\n}\n");
    s
}

/// The `"count": N` field of a [`render`]-shaped document.
fn embedded_count(doc: &str) -> Option<u64> {
    let at = doc.find("\"count\":")?;
    let rest = doc[at + "\"count\":".len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AUDIT_RULES;
    use std::path::PathBuf;

    #[test]
    fn renders_schema_with_escapes() {
        let v = Violation {
            rule: "lock-order",
            path: PathBuf::from("crates/core/src/a.rs"),
            line: 7,
            snippet: "let g = m.lock(); // \"quoted\"".to_string(),
            message: "cycle a -> b".to_string(),
        };
        let json = render("graphz-audit", AUDIT_RULES, &[v]);
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n"), "{json}");
        assert!(json.contains("\"tool\": \"graphz-audit\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"rules\": [\"lock-order\""));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render("graphz-lint", &[], &[]);
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"findings\": [\n  ]"));
    }

    #[test]
    fn combined_report_sums_counts_and_embeds_documents() {
        let v = Violation {
            rule: "fault-surface-bypass",
            path: PathBuf::from("crates/io/src/x.rs"),
            line: 3,
            snippet: "File::create(p)?".to_string(),
            message: "bypass".to_string(),
        };
        let a = render("graphz-lint", &[], &[]);
        let b = render("graphz-flow", crate::flow::FLOW_RULES, &[v.clone(), v]);
        let combined = render_combined(&[("graphz-lint", &a), ("graphz-flow", &b)]);
        assert!(
            combined.starts_with("{\n  \"schema_version\": 1,\n  \"count\": 2,\n"),
            "{combined}"
        );
        assert!(combined.contains("\"tools\": [\"graphz-lint\", \"graphz-flow\"]"));
        assert!(combined.contains("\"graphz-flow\": {"));
        assert!(combined.contains("\"rule\": \"fault-surface-bypass\""));
    }
}
