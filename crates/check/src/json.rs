//! Hand-rolled JSON emission for lint/audit findings.
//!
//! The workspace is offline (no serde); the schema is small and stable, so
//! a ~60-line serializer keeps the machine-readable artifact contract
//! (`audit_findings.json` / `lint_findings.json` in CI) without a
//! dependency. Schema:
//!
//! ```json
//! {
//!   "tool": "graphz-audit",
//!   "rules": ["lock-order", "…"],
//!   "count": 1,
//!   "findings": [
//!     {"rule": "…", "path": "…", "line": 3, "message": "…", "snippet": "…"}
//!   ]
//! }
//! ```

use std::path::Path;

use crate::lint::{Rule, Violation};

/// Render a findings report as a JSON document.
pub fn render(tool: &str, rules: &[Rule], findings: &[Violation]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"tool\": {},\n", quote(tool)));
    let names: Vec<String> = rules.iter().map(|r| quote(r.name)).collect();
    s.push_str(&format!("  \"rules\": [{}],\n", names.join(", ")));
    s.push_str(&format!("  \"count\": {},\n", findings.len()));
    s.push_str("  \"findings\": [\n");
    for (i, v) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            quote(v.rule),
            quote(&v.path.to_string_lossy()),
            v.line,
            quote(&v.message),
            quote(v.snippet.trim()),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render and write a findings report to `path`.
pub fn write_report(
    path: &Path,
    tool: &str,
    rules: &[Rule],
    findings: &[Violation],
) -> std::io::Result<()> {
    std::fs::write(path, render(tool, rules, findings))
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AUDIT_RULES;
    use std::path::PathBuf;

    #[test]
    fn renders_schema_with_escapes() {
        let v = Violation {
            rule: "lock-order",
            path: PathBuf::from("crates/core/src/a.rs"),
            line: 7,
            snippet: "let g = m.lock(); // \"quoted\"".to_string(),
            message: "cycle a -> b".to_string(),
        };
        let json = render("graphz-audit", AUDIT_RULES, &[v]);
        assert!(json.contains("\"tool\": \"graphz-audit\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"rules\": [\"lock-order\""));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render("graphz-lint", &[], &[]);
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"findings\": [\n  ]"));
    }
}
