//! `stale-suppression`: flag `<tool>:allow(<rule>)` markers that no longer
//! suppress any finding.
//!
//! Suppression markers are point-in-time waivers; when the code under one
//! is fixed or moves, the marker stays behind and silently waives the
//! *next* violation introduced on that line. This pass re-runs every
//! analyzer (lint, audit, flow, ipa) over sources with the markers
//! neutralized (`:allow(` → `:a11ow(`, same length, so line/column
//! structure is untouched), then checks each real marker against the
//! unsuppressed findings: a `tool:allow(rule)` on line L is *live* iff the
//! tool reports that rule at line L or L+1 of the same file — exactly the
//! span the marker suppresses. Everything else is stale.
//!
//! Marker recognition is deliberately strict: only inside a comment (after
//! `//` in Rust — doc comments `///`/`//!` document syntax, never carry
//! markers — after `#` in Cargo.toml, before the first `#[cfg(test)]`),
//! and only when the rule name is a plain `[a-z0-9-]+` token — so format
//! strings that *build* markers (`format!("flow:allow({rule})")`) and help
//! text (`flow:allow(<rule>)`) never match. A marker naming a rule the
//! tool does not define suppresses nothing by construction and is reported
//! stale with that explanation. The `stale-suppression` rule itself is
//! exempt from staleness (its own waivers are suppressed the normal lint
//! way, not re-judged here).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lint::{lint_manifest, lint_rust_source, sanitize, Violation};
use crate::parser::parse_source;

/// The four analyzer prefixes and their rule tables.
fn tools() -> [(&'static str, Vec<&'static str>); 4] {
    [
        ("lint", crate::lint::RULES.iter().map(|r| r.name).collect()),
        ("audit", crate::audit::AUDIT_RULES.iter().map(|r| r.name).collect()),
        ("flow", crate::flow::FLOW_RULES.iter().map(|r| r.name).collect()),
        ("ipa", crate::ipa::IPA_RULES.iter().map(|r| r.name).collect()),
    ]
}

/// Disable every suppression marker without moving a single byte.
fn neutralize(source: &str) -> String {
    source.replace(":allow(", ":a11ow(")
}

/// One recognized marker occurrence.
struct Marker {
    rel: String,
    line: usize,
    tool: &'static str,
    rule: String,
    known_rule: bool,
    snippet: String,
}

/// Scan one file's comment text for markers. `comment` is the comment
/// opener for this file kind (`//` or `#`); `code_end` bounds the non-test
/// region (1-based line count).
fn collect_markers(rel: &str, raw: &[&str], comment: &str, code_end: usize, out: &mut Vec<Marker>) {
    for (idx, line) in raw.iter().enumerate().take(code_end) {
        let Some(at) = line.find(comment) else { continue };
        let text = &line[at..];
        // Doc comments document marker syntax; they never carry markers.
        if comment == "//" && (text.starts_with("///") || text.starts_with("//!")) {
            continue;
        }
        for (tool, rules) in tools() {
            let needle = format!("{tool}:allow(");
            let mut from = 0;
            while let Some(pos) = text[from..].find(&needle) {
                let start = from + pos + needle.len();
                from = start;
                let rest = &text[start..];
                let Some(close) = rest.find(')') else { continue };
                let rule = &rest[..close];
                if rule.is_empty()
                    || !rule.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                {
                    continue; // format-string or help-text shape, not a marker
                }
                if rule == "stale-suppression" {
                    continue;
                }
                out.push(Marker {
                    rel: rel.to_string(),
                    line: idx + 1,
                    tool,
                    rule: rule.to_string(),
                    known_rule: rules.contains(&rule),
                    snippet: line.to_string(),
                });
            }
        }
    }
}

/// Run the stale-suppression analysis over the tree at `root`. Findings
/// carry the `stale-suppression` rule and point at the marker line; a
/// `lint:allow(stale-suppression)` marker there (or the line above)
/// suppresses them like any other lint.
pub fn stale_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    // File walk mirrors the union of the analyzers' scopes: lint sees
    // crates/ + shims/ (.rs and Cargo.toml); audit/flow/ipa see non-test
    // .rs under crates/. Fixture trees without crates/ scan the root.
    let mut files = Vec::new();
    let crates = root.join("crates");
    let shims = root.join("shims");
    if crates.is_dir() || shims.is_dir() {
        for base in [crates, shims] {
            if base.is_dir() {
                crate::lint::collect_files(&base, &mut files)?;
            }
        }
    } else {
        crate::lint::collect_files(root, &mut files)?;
    }
    files.sort();

    let mut markers: Vec<Marker> = Vec::new();
    let mut lint_unsup: Vec<Violation> = Vec::new();
    let mut parsed = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        let neutral = neutralize(&source);
        let raw: Vec<&str> = source.lines().collect();
        if rel.ends_with("Cargo.toml") {
            collect_markers(&rel, &raw, "#", raw.len(), &mut markers);
            lint_manifest(&rel, &neutral, &mut lint_unsup);
            continue;
        }
        let in_test_dir = ["/tests/", "/benches/", "/examples/"].iter().any(|d| rel.contains(d));
        if in_test_dir {
            continue; // analyzers never report here; markers are fixture text
        }
        let code_end = sanitize(&source)
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(raw.len());
        collect_markers(&rel, &raw, "//", code_end, &mut markers);
        lint_rust_source(&rel, &neutral, &mut lint_unsup);
        // audit/flow/ipa scope: non-test .rs under crates/ (or the whole
        // fixture root), same filter as parser::parse_tree.
        if rel.contains("shims/") {
            continue;
        }
        parsed.push(parse_source(&rel, &neutral));
    }

    let audit_unsup = crate::audit::audit_files(&parsed);
    let flow_unsup = crate::flow::flow_files(&parsed);
    let ipa_unsup = crate::ipa::ipa_files(&parsed);

    // Index unsuppressed findings by (tool, rule, rel, line).
    let mut live: BTreeSet<(&str, String, String, usize)> = BTreeSet::new();
    for (tool, found) in [
        ("lint", &lint_unsup),
        ("audit", &audit_unsup),
        ("flow", &flow_unsup),
        ("ipa", &ipa_unsup),
    ] {
        for v in found {
            live.insert((tool, v.rule.to_string(), v.path.to_string_lossy().replace('\\', "/"), v.line));
        }
    }

    let mut out = Vec::new();
    for m in markers {
        let used = m.known_rule
            && (live.contains(&(m.tool, m.rule.clone(), m.rel.clone(), m.line))
                || live.contains(&(m.tool, m.rule.clone(), m.rel.clone(), m.line + 1)));
        if used {
            continue;
        }
        let why = if m.known_rule {
            "no finding of that rule on this line or the next"
        } else {
            "the tool defines no such rule"
        };
        // Standard lint suppression applies to the stale finding itself.
        let raw_line = m.snippet.as_str();
        let source_above = std::fs::read_to_string(root.join(&m.rel)).unwrap_or_default();
        let prev = m
            .line
            .checked_sub(2)
            .and_then(|p| source_above.lines().nth(p))
            .unwrap_or("");
        let sup = "lint:allow(stale-suppression)";
        if raw_line.contains(sup) || prev.contains(sup) {
            continue;
        }
        out.push(Violation {
            rule: "stale-suppression",
            path: PathBuf::from(&m.rel),
            line: m.line,
            snippet: m.snippet,
            message: format!("`{}:allow({})` suppresses nothing ({why}); remove it", m.tool, m.rule),
        });
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}
