//! Cross-engine equivalence: every algorithm, run on every engine (plus the
//! GraphZ ablations), must agree with the in-memory reference.
//!
//! This is the correctness backbone of the whole reproduction: the paper's
//! performance comparisons are only meaningful if all three systems compute
//! the same answers.

use std::sync::Arc;

use graphz_algos::common::{AlgoParams, Algorithm, AlgoValues};
use graphz_algos::runner::{self, EngineKind};
use graphz_gen::rmat_edges;
use graphz_io::{IoStats, ScratchDir};
use graphz_storage::EdgeListFile;
use graphz_types::{Edge, MemoryBudget};

/// Everything prepared once per (graph, budget) pair.
struct Fixture {
    _dir: ScratchDir,
    stats: Arc<IoStats>,
    budget: MemoryBudget,
    dos: graphz_storage::DosGraph,
    csr: graphz_storage::CsrFiles,
    chi: graphz_baselines::graphchi::ChiShards,
    xs: graphz_baselines::xstream::XsPartitions,
    grid: graphz_baselines::gridgraph::GridPartitions,
    reference: graphz_storage::CsrGraph,
}

impl Fixture {
    fn new(edges: Vec<Edge>, budget: MemoryBudget) -> Fixture {
        let dir = ScratchDir::new("equiv").unwrap();
        let stats = IoStats::new();
        let prep_budget = MemoryBudget::from_mib(4);
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos =
            runner::prepare_dos(&el, &dir.path().join("dos"), prep_budget, Arc::clone(&stats))
                .unwrap();
        let csr =
            runner::prepare_csr(&el, &dir.path().join("csr"), prep_budget, Arc::clone(&stats))
                .unwrap();
        let chi = runner::prepare_chi(&el, &dir.path().join("chi"), budget, Arc::clone(&stats))
            .unwrap();
        let xs = runner::prepare_xs(&el, &dir.path().join("xs"), budget, Arc::clone(&stats))
            .unwrap();
        let grid =
            runner::prepare_grid(&el, &dir.path().join("grid"), budget, Arc::clone(&stats))
                .unwrap();
        let reference = csr.load(Arc::clone(&stats)).unwrap();
        Fixture { _dir: dir, stats, budget, dos, csr, chi, xs, grid, reference }
    }

    /// Run `params` on every engine; GraphChi is skipped automatically when
    /// its index cannot fit the budget (asserted by dedicated tests).
    fn run_all(&self, params: &AlgoParams) -> Vec<(EngineKind, AlgoValues)> {
        let mut out = Vec::new();
        let gz = runner::run_graphz(&self.dos, params, self.budget, Arc::clone(&self.stats))
            .expect("graphz run");
        out.push((EngineKind::GraphZ, gz.values));
        for dm in [true, false] {
            match runner::run_graphz_dense(
                &self.csr,
                params,
                self.budget,
                dm,
                Arc::clone(&self.stats),
            ) {
                Ok(o) => out.push((o.engine, o.values)),
                Err(e) => panic!("dense ablation failed: {e}"),
            }
        }
        match runner::run_graphchi(&self.chi, params, self.budget, Arc::clone(&self.stats)) {
            Ok(o) => out.push((EngineKind::GraphChi, o.values)),
            Err(graphz_types::GraphError::IndexExceedsMemory { .. }) => {}
            Err(e) => panic!("graphchi run failed: {e}"),
        }
        let xs = runner::run_xstream(&self.xs, params, self.budget, Arc::clone(&self.stats))
            .expect("xstream run");
        out.push((EngineKind::XStream, xs.values));
        let grid =
            runner::run_gridgraph(&self.grid, params, self.budget, Arc::clone(&self.stats))
                .expect("gridgraph run");
        out.push((EngineKind::GridGraph, grid.values));
        out
    }

    fn check_against_reference(&self, params: &AlgoParams, tolerance: f64) {
        let reference = runner::run_reference(&self.reference, params).unwrap();
        for (engine, values) in self.run_all(params) {
            assert_eq!(values.len(), reference.values.len(), "{engine}: wrong length");
            let err = reference.values.max_relative_error(&values);
            assert!(
                err <= tolerance,
                "{engine} disagrees with reference on {:?}: max rel err {err}",
                params.algorithm
            );
        }
    }
}

fn power_law_graph(seed: u64, edges: u64) -> Vec<Edge> {
    rmat_edges(8, edges, Default::default(), seed).collect()
}

fn symmetrized(edges: Vec<Edge>) -> Vec<Edge> {
    let mut out: Vec<Edge> = edges
        .iter()
        .filter(|e| e.src != e.dst)
        .flat_map(|e| [*e, Edge::new(e.dst, e.src)])
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Budgets from roomy (single partition) to starved (many partitions).
fn budgets() -> [MemoryBudget; 3] {
    [MemoryBudget::from_mib(4), MemoryBudget::from_kib(8), MemoryBudget::from_kib(1)]
}

#[test]
fn pagerank_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(power_law_graph(11, 1500), budget);
        let params = AlgoParams::new(Algorithm::PageRank).with_max_iterations(200);
        fx.check_against_reference(&params, 2e-2);
    }
}

#[test]
fn bfs_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(power_law_graph(22, 1500), budget);
        // Source 0 is always present and, in an R-MAT graph, well connected.
        let params = AlgoParams::new(Algorithm::Bfs).with_source(0).with_max_iterations(300);
        fx.check_against_reference(&params, 0.0);
    }
}

#[test]
fn cc_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(symmetrized(power_law_graph(33, 1200)), budget);
        let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
        fx.check_against_reference(&params, 0.0);
    }
}

#[test]
fn sssp_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(power_law_graph(44, 1500), budget);
        let params = AlgoParams::new(Algorithm::Sssp).with_source(0).with_max_iterations(300);
        fx.check_against_reference(&params, 1e-5);
    }
}

#[test]
fn bp_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(power_law_graph(55, 1000), budget);
        let params = AlgoParams::new(Algorithm::Bp).with_rounds(6).with_max_iterations(50);
        fx.check_against_reference(&params, 1e-3);
    }
}

#[test]
fn random_walk_agrees_everywhere() {
    for budget in budgets() {
        let fx = Fixture::new(power_law_graph(66, 1500), budget);
        let params =
            AlgoParams::new(Algorithm::RandomWalk).with_rounds(8).with_max_iterations(50);
        fx.check_against_reference(&params, 1e-3);
    }
}

#[test]
fn async_engines_need_fewer_iterations_than_bsp() {
    // Table XIV's claim: GraphZ/GraphChi (asynchronous) converge in fewer
    // iterations than X-Stream (bulk-synchronous) on traversal algorithms.
    let budget = MemoryBudget::from_mib(4);
    let fx = Fixture::new(symmetrized(power_law_graph(77, 1500)), budget);
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(500);
    let gz = runner::run_graphz(&fx.dos, &params, budget, Arc::clone(&fx.stats)).unwrap();
    let xs = runner::run_xstream(&fx.xs, &params, budget, Arc::clone(&fx.stats)).unwrap();
    assert!(gz.converged && xs.converged);
    assert!(
        gz.iterations <= xs.iterations,
        "async {} should not exceed BSP {}",
        gz.iterations,
        xs.iterations
    );
}

#[test]
fn graphz_is_deterministic_across_runs_and_threads() {
    let budget = MemoryBudget::from_kib(2);
    let fx = Fixture::new(power_law_graph(88, 1200), budget);
    let params = AlgoParams::new(Algorithm::PageRank).with_max_iterations(60);
    let a = runner::run_graphz(&fx.dos, &params, budget, Arc::clone(&fx.stats)).unwrap();
    let b = runner::run_graphz(&fx.dos, &params, budget, Arc::clone(&fx.stats)).unwrap();
    assert_eq!(a.values, b.values, "same configuration must be bit-identical");
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn unreachable_vertices_are_reported_as_such() {
    // Two islands: 0->1 and 5->6; BFS from 0 must leave the second island
    // and the id-space holes unreached on every engine.
    let edges = vec![Edge::new(0, 1), Edge::new(5, 6)];
    let fx = Fixture::new(edges, MemoryBudget::from_mib(1));
    let params = AlgoParams::new(Algorithm::Bfs).with_source(0).with_max_iterations(20);
    let reference = runner::run_reference(&fx.reference, &params).unwrap();
    if let AlgoValues::Hops(h) = &reference.values {
        assert_eq!(h, &[0, 1, u32::MAX, u32::MAX, u32::MAX, u32::MAX, u32::MAX]);
    } else {
        panic!("wrong kind");
    }
    fx.check_against_reference(&params, 0.0);
}

#[test]
fn weighted_dos_sssp_matches_unweighted_and_reference() {
    // Convert the same graph twice — with and without stored weights — and
    // confirm SSSP is identical (the stored weights are exactly the derived
    // ones) and matches the in-memory reference.
    let dir = ScratchDir::new("weighted-sssp").unwrap();
    let stats = IoStats::new();
    let edges = power_law_graph(99, 1500);
    let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
    let prep = MemoryBudget::from_mib(4);
    let plain = runner::prepare_dos(&el, &dir.path().join("dos"), prep, Arc::clone(&stats)).unwrap();
    let weighted = graphz_storage::DosConverter::new(prep, Arc::clone(&stats))
        .with_weights(graphz_types::derive_weight)
        .convert(&el, &dir.path().join("dos-w"))
        .unwrap();
    assert!(weighted.has_weights());
    let csr =
        runner::prepare_csr(&el, &dir.path().join("csr"), prep, Arc::clone(&stats)).unwrap();

    let params = AlgoParams::new(Algorithm::Sssp).with_source(0).with_max_iterations(300);
    let budget = MemoryBudget::from_kib(4);
    let a = runner::run_graphz(&plain, &params, budget, Arc::clone(&stats)).unwrap();
    let b = runner::run_graphz(&weighted, &params, budget, Arc::clone(&stats)).unwrap();
    assert_eq!(a.values, b.values, "stored weights must equal derived weights");
    let reference =
        runner::run_reference(&csr.load(Arc::clone(&stats)).unwrap(), &params).unwrap();
    assert!(reference.values.max_relative_error(&b.values) < 1e-5);
    // The weighted run streams the weight file too: more bytes read.
    assert!(b.io.bytes_read > a.io.bytes_read);
}
