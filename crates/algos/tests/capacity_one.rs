//! Capacity-1 regression gate: `EngineOptions::queue_cap` forces *every*
//! bounded queue in the pipeline (Sio batches, Worker jobs, Worker results,
//! spill writer, prefetch slots) down to a single slot — the most
//! deadlock-prone configuration a bounded-queue pipeline has. The model
//! checker (`graphz-check`) proves schedule-independence on the abstract
//! pipeline; this test pins the real engine to the same contract: for all
//! six algorithms, any {threads} × {prefetch} combination at capacity 1 is
//! bit-identical to the default-capacity single-threaded run.

#![forbid(unsafe_code)]

use std::sync::Arc;

use graphz_algos::common::{AlgoParams, Algorithm};
use graphz_algos::runner::{self, AlgoOutcome, CheckpointSpec};
use graphz_gen::rmat_edges;
use graphz_io::{IoStats, ScratchDir};
use graphz_storage::DosGraph;
use graphz_storage::EdgeListFile;
use graphz_types::{Edge, EngineOptions, MemoryBudget};

fn power_law_graph(seed: u64, edges: u64) -> Vec<Edge> {
    rmat_edges(8, edges, Default::default(), seed).collect()
}

fn symmetrized(edges: Vec<Edge>) -> Vec<Edge> {
    let mut out: Vec<Edge> = edges
        .iter()
        .filter(|e| e.src != e.dst)
        .flat_map(|e| [*e, Edge::new(e.dst, e.src)])
        .collect();
    out.sort();
    out.dedup();
    out
}

struct Fixture {
    _dir: ScratchDir,
    stats: Arc<IoStats>,
    dos: DosGraph,
}

impl Fixture {
    fn new(edges: Vec<Edge>) -> Fixture {
        let dir = ScratchDir::new("cap-one").unwrap();
        let stats = IoStats::new();
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos = runner::prepare_dos(
            &el,
            &dir.path().join("dos"),
            MemoryBudget::from_mib(4),
            Arc::clone(&stats),
        )
        .unwrap();
        Fixture { _dir: dir, stats, dos }
    }

    fn run(&self, params: &AlgoParams, budget: MemoryBudget, options: EngineOptions) -> AlgoOutcome {
        runner::run_graphz_configured(
            &self.dos,
            params,
            budget,
            options,
            &CheckpointSpec::disabled(),
            Arc::clone(&self.stats),
        )
        .unwrap()
    }
}

fn params_for(algo: Algorithm) -> AlgoParams {
    let p = AlgoParams::new(algo).with_source(0);
    match algo {
        Algorithm::PageRank => p.with_max_iterations(30),
        Algorithm::Bp => p.with_rounds(4).with_max_iterations(30),
        Algorithm::RandomWalk => p.with_rounds(5).with_max_iterations(30),
        _ => p.with_max_iterations(200),
    }
}

fn graph_for(algo: Algorithm, seed: u64) -> Vec<Edge> {
    let edges = power_law_graph(seed, 1500);
    if algo.wants_symmetrized() {
        symmetrized(edges)
    } else {
        edges
    }
}

/// All six algorithms, every queue at capacity 1, threads {1, 2, 8},
/// prefetch on and off — bit-identical to the default-capacity seed path.
#[test]
fn six_algorithms_bit_identical_at_capacity_one() {
    for (i, algo) in Algorithm::all().into_iter().enumerate() {
        let fx = Fixture::new(graph_for(algo, 17 * (i as u64 + 1)));
        let params = params_for(algo);
        // Starved budget: multiple partitions, multiple shards, spills.
        let budget = MemoryBudget::from_kib(1);
        let baseline = fx.run(&params, budget, EngineOptions::with_parallel_workers(1));
        for threads in [1usize, 2, 8] {
            for prefetch in [true, false] {
                let mut options =
                    EngineOptions::with_parallel_workers(threads).with_queue_cap(1);
                options.prefetch = prefetch;
                let out = fx.run(&params, budget, options);
                assert_eq!(
                    baseline.values, out.values,
                    "{algo:?}: threads={threads} prefetch={prefetch} queue_cap=1 \
                     diverged from the default-capacity baseline"
                );
                assert_eq!(baseline.iterations, out.iterations, "{algo:?} iterations");
                assert_eq!(baseline.messages, out.messages, "{algo:?} messages");
                assert_eq!(baseline.spilled, out.spilled, "{algo:?} spilled");
            }
        }
    }
}

/// Capacity must be a pure throughput knob: a ladder of capacities over a
/// spilling multi-partition run leaves every observable identical.
#[test]
fn capacity_ladder_is_observably_identical() {
    let fx = Fixture::new(symmetrized(power_law_graph(41, 1500)));
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
    let budget = MemoryBudget(256); // 32 u64-sized vertices per partition
    let baseline = fx.run(&params, budget, EngineOptions::with_parallel_workers(1));
    assert!(baseline.partitions > 1, "budget must force multiple partitions");
    assert!(baseline.spilled > 0, "budget must force message spills");
    for cap in [1usize, 2, 3, 64] {
        let options = EngineOptions::with_parallel_workers(8).with_queue_cap(cap);
        let out = fx.run(&params, budget, options);
        assert_eq!(baseline.values, out.values, "queue_cap={cap}");
        assert_eq!(baseline.iterations, out.iterations, "queue_cap={cap}");
        assert_eq!(baseline.spilled, out.spilled, "queue_cap={cap}");
    }
}

/// Background spill writer at queue capacity 1 under the starved budget —
/// the submit path must backpressure, never drop or reorder sealed runs.
#[test]
fn background_spill_at_capacity_one_is_identical() {
    let fx = Fixture::new(symmetrized(power_law_graph(43, 1500)));
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
    let budget = MemoryBudget(256);
    let baseline = fx.run(&params, budget, EngineOptions::with_parallel_workers(1));
    assert!(baseline.spilled > 0, "budget must force message spills");
    let mut options = EngineOptions::with_parallel_workers(2).with_queue_cap(1);
    options.background_spill = true;
    let out = fx.run(&params, budget, options);
    assert_eq!(baseline.values, out.values);
    assert_eq!(baseline.iterations, out.iterations);
    assert_eq!(baseline.spilled, out.spilled);
}
