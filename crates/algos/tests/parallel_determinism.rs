//! Parallel-Worker determinism: the shard schedule is a function of
//! `worker_shards` alone, so any `pipeline_threads` value — and prefetch on
//! or off — must produce bit-identical vertex arrays and identical message
//! counters for every algorithm, including runs that spill messages across
//! partitions and runs interrupted by a checkpoint/resume cycle.

use std::sync::Arc;

use graphz_algos::common::{AlgoParams, Algorithm};
use graphz_algos::runner::{self, AlgoOutcome, CheckpointSpec};
use graphz_gen::rmat_edges;
use graphz_io::{IoStats, ScratchDir};
use graphz_storage::DosGraph;
use graphz_storage::EdgeListFile;
use graphz_types::{Edge, EngineOptions, MemoryBudget};

fn power_law_graph(seed: u64, edges: u64) -> Vec<Edge> {
    rmat_edges(8, edges, Default::default(), seed).collect()
}

fn symmetrized(edges: Vec<Edge>) -> Vec<Edge> {
    let mut out: Vec<Edge> = edges
        .iter()
        .filter(|e| e.src != e.dst)
        .flat_map(|e| [*e, Edge::new(e.dst, e.src)])
        .collect();
    out.sort();
    out.dedup();
    out
}

struct Fixture {
    _dir: ScratchDir,
    stats: Arc<IoStats>,
    dos: DosGraph,
}

impl Fixture {
    fn new(edges: Vec<Edge>) -> Fixture {
        let dir = ScratchDir::new("par-det").unwrap();
        let stats = IoStats::new();
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos = runner::prepare_dos(
            &el,
            &dir.path().join("dos"),
            MemoryBudget::from_mib(4),
            Arc::clone(&stats),
        )
        .unwrap();
        Fixture { _dir: dir, stats, dos }
    }

    fn run(
        &self,
        params: &AlgoParams,
        budget: MemoryBudget,
        threads: usize,
        prefetch: bool,
        ckpt: &CheckpointSpec,
    ) -> AlgoOutcome {
        let mut options = EngineOptions::with_parallel_workers(threads);
        options.prefetch = prefetch;
        runner::run_graphz_configured(
            &self.dos,
            params,
            budget,
            options,
            ckpt,
            Arc::clone(&self.stats),
        )
        .unwrap()
    }
}

fn params_for(algo: Algorithm) -> AlgoParams {
    let p = AlgoParams::new(algo).with_source(0);
    match algo {
        Algorithm::PageRank => p.with_max_iterations(30),
        Algorithm::Bp => p.with_rounds(4).with_max_iterations(30),
        Algorithm::RandomWalk => p.with_rounds(5).with_max_iterations(30),
        _ => p.with_max_iterations(200),
    }
}

fn graph_for(algo: Algorithm, seed: u64) -> Vec<Edge> {
    let edges = power_law_graph(seed, 1500);
    if algo.wants_symmetrized() {
        symmetrized(edges)
    } else {
        edges
    }
}

/// The headline guarantee: for all six algorithms, at a roomy and a starved
/// budget, every {threads} × {prefetch} combination is bit-identical to the
/// single-threaded run of the same shard schedule.
#[test]
fn six_algorithms_bit_identical_across_threads_and_prefetch() {
    let none = CheckpointSpec::disabled();
    for (i, algo) in Algorithm::all().into_iter().enumerate() {
        let fx = Fixture::new(graph_for(algo, 11 * (i as u64 + 1)));
        let params = params_for(algo);
        for budget in [MemoryBudget::from_kib(8), MemoryBudget::from_kib(1)] {
            let baseline = fx.run(&params, budget, 1, true, &none);
            for threads in [1usize, 2, 8] {
                for prefetch in [true, false] {
                    if threads == 1 && prefetch {
                        continue; // that is the baseline itself
                    }
                    let out = fx.run(&params, budget, threads, prefetch, &none);
                    assert_eq!(
                        baseline.values, out.values,
                        "{algo:?} at {budget}: threads={threads} prefetch={prefetch} \
                         diverged from the single-threaded baseline"
                    );
                    assert_eq!(baseline.iterations, out.iterations, "{algo:?} iterations");
                    assert_eq!(baseline.messages, out.messages, "{algo:?} messages");
                    assert_eq!(baseline.spilled, out.spilled, "{algo:?} spilled");
                }
            }
        }
    }
}

/// The adaptive cost model (`EngineOptions::adaptive`) rewrites the plan as
/// a pure function of graph shape: a small graph degrades to the serial
/// schedule (so it must match an explicitly-serial run bit for bit, at any
/// pipeline width), and a large graph keeps its requested shards (so it
/// must match the fixed-plan run bit for bit). Either way, nothing about
/// thread count or timing may leak into the results.
#[test]
fn adaptive_plan_keeps_results_bit_identical() {
    let none = CheckpointSpec::disabled();
    let budget = MemoryBudget::from_kib(1);
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
    let run_opts = |fx: &Fixture, options: EngineOptions| {
        runner::run_graphz_configured(&fx.dos, &params, budget, options, &none, Arc::clone(&fx.stats))
            .unwrap()
    };

    // 1500 edges / 8 requested shards is far below the serial-degrade
    // threshold: every adaptive run collapses to the serial schedule.
    let fx = Fixture::new(symmetrized(power_law_graph(7, 1500)));
    let serial = run_opts(&fx, EngineOptions::default());
    for threads in [1usize, 2, 8] {
        let mut options = EngineOptions::with_parallel_workers(threads);
        options.adaptive = true;
        let out = run_opts(&fx, options);
        assert_eq!(serial.values, out.values, "degraded threads={threads}");
        assert_eq!(serial.iterations, out.iterations, "degraded threads={threads}");
        assert_eq!(serial.messages, out.messages, "degraded threads={threads}");
        assert_eq!(serial.spilled, out.spilled, "degraded threads={threads}");
    }

    // A symmetrized 12_000-edge graph keeps all 8 shards busy above the
    // threshold: adaptive must be a no-op against the fixed 8-shard plan.
    let fx = Fixture::new(symmetrized(power_law_graph(7, 12_000)));
    assert!(
        fx.dos.meta().num_edges / 8 >= 1024,
        "large fixture must stay above the serial-degrade threshold, got {}",
        fx.dos.meta().num_edges
    );
    let baseline = fx.run(&params, budget, 8, true, &none);
    for threads in [2usize, 8] {
        let mut options = EngineOptions::with_parallel_workers(threads);
        options.adaptive = true;
        let out = run_opts(&fx, options);
        assert_eq!(baseline.values, out.values, "parallel threads={threads}");
        assert_eq!(baseline.iterations, out.iterations, "parallel threads={threads}");
        assert_eq!(baseline.messages, out.messages, "parallel threads={threads}");
        assert_eq!(baseline.spilled, out.spilled, "parallel threads={threads}");
    }
}

/// A budget small enough to force many partitions *and* message spills:
/// every partition still spans multiple shards, and the claimed-segment
/// protocol (prefetcher pre-draining spilled runs) must not change results.
#[test]
fn spilled_multi_partition_run_is_deterministic() {
    let fx = Fixture::new(symmetrized(power_law_graph(99, 1500)));
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
    let budget = MemoryBudget(256); // 32 u64-sized vertices per partition
    let none = CheckpointSpec::disabled();
    let baseline = fx.run(&params, budget, 1, true, &none);
    assert!(baseline.partitions > 1, "budget must force multiple partitions");
    assert!(baseline.spilled > 0, "budget must force message spills");
    for (threads, prefetch) in [(8, true), (8, false), (2, true)] {
        let out = fx.run(&params, budget, threads, prefetch, &none);
        assert_eq!(baseline.values, out.values, "threads={threads} prefetch={prefetch}");
        assert_eq!(baseline.spilled, out.spilled);
        assert_eq!(baseline.iterations, out.iterations);
    }
}

/// Interrupt a parallel run mid-computation, then resume with a *different*
/// thread count and prefetch setting: the checkpoint carries sealed spill
/// segments and the global iteration counter, so the resumed run must land
/// exactly where an uninterrupted single-threaded run does.
#[test]
fn checkpoint_resume_mid_run_matches_uninterrupted() {
    let fx = Fixture::new(symmetrized(power_law_graph(123, 1500)));
    let params = AlgoParams::new(Algorithm::Cc).with_max_iterations(300);
    let budget = MemoryBudget::from_kib(1);
    let none = CheckpointSpec::disabled();
    let reference = fx.run(&params, budget, 1, true, &none);
    assert!(reference.converged);
    assert!(reference.iterations >= 2, "need room to interrupt: {}", reference.iterations);

    // Stop strictly before the uninterrupted run converged (the parallel run
    // follows the same schedule, so its trajectory is the same).
    let cut = (reference.iterations - 1).max(1);
    let gens = ScratchDir::new("par-det-gens").unwrap();
    let write = CheckpointSpec {
        dir: Some(gens.path().to_path_buf()),
        every: 1,
        resume: false,
    };
    let head = fx.run(&params.with_max_iterations(cut), budget, 8, true, &write);
    assert!(!head.converged, "interrupted run must stop before convergence");

    let resume = CheckpointSpec {
        dir: Some(gens.path().to_path_buf()),
        every: 0,
        resume: true,
    };
    let tail = fx.run(&params, budget, 2, false, &resume);
    assert!(tail.converged);
    assert_eq!(reference.values, tail.values);
}
