//! Single-source shortest paths for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

use crate::common::sssp_weight;

/// Bellman–Ford over static edge values. An edge value of `0.0` means "no
/// offer"; otherwise it is the tentative distance *through* that edge
/// (derived weights are >= 1, so offers are always positive).
pub struct ChiSssp {
    /// Source vertex (original id).
    pub source: VertexId,
}

const NONE: f32 = 0.0;

impl ChiProgram for ChiSssp {
    type VertexValue = f32; // distance, +inf = unreached
    type EdgeValue = f32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> f32 {
        if vid == self.source {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn update(
        &self,
        vid: VertexId,
        value: &mut f32,
        in_edges: &[(VertexId, f32)],
        out_edges: &mut [OutEdgeSlot<f32>],
        ctx: &mut ChiContext,
    ) {
        let offer = in_edges
            .iter()
            .filter(|(_, v)| *v != NONE)
            .map(|(_, v)| *v)
            .fold(f32::INFINITY, f32::min);
        let mut announce = false;
        if offer < *value {
            *value = offer;
            ctx.mark_changed();
            announce = true;
        }
        if ctx.iteration() == 0 && value.is_finite() {
            ctx.mark_changed();
            announce = true;
        }
        if announce {
            for e in out_edges.iter_mut() {
                e.value = *value + sssp_weight(vid, e.dst);
            }
        }
    }
}
