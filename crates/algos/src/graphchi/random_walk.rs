//! Random-walk visit mass for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

/// Walker-mass diffusion over static edge values with parity
/// double-buffering (see [`super::bp::ChiBp`] for the slot discipline):
/// slot `k % 2` holds the mass arriving at round `k`.
pub struct ChiRandomWalk {
    pub rounds: u32,
}

impl ChiProgram for ChiRandomWalk {
    type VertexValue = f32; // accumulated visits
    type EdgeValue = [f32; 2]; // mass by round parity

    fn update(
        &self,
        _vid: VertexId,
        value: &mut f32,
        in_edges: &[(VertexId, [f32; 2])],
        out_edges: &mut [OutEdgeSlot<[f32; 2]>],
        ctx: &mut ChiContext,
    ) {
        let k = ctx.iteration();
        if k >= self.rounds {
            return;
        }
        ctx.mark_changed();
        let read = (k % 2) as usize;
        let mass: f32 = if k == 0 {
            1.0 // every vertex starts one walker
        } else {
            in_edges.iter().map(|(_, ev)| ev[read]).sum()
        };
        *value += mass;
        if !out_edges.is_empty() {
            let share = mass / out_edges.len() as f32;
            let write = ((k + 1) % 2) as usize;
            for e in out_edges.iter_mut() {
                e.value[write] = share;
            }
        }
    }
}
