//! The six benchmarks written against the GraphChi edge-value model.
//! One file per algorithm; Table IX counts these files.

pub mod bfs;
pub mod bp;
pub mod cc;
pub mod pagerank;
pub mod random_walk;
pub mod sssp;

pub use bfs::ChiBfs;
pub use bp::ChiBp;
pub use cc::ChiCc;
pub use pagerank::ChiPageRank;
pub use random_walk::ChiRandomWalk;
pub use sssp::ChiSssp;
