//! Two-state loopy belief propagation for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

use crate::common::{bp_combine, bp_message, bp_prior};

/// Loopy BP over static edge values with parity double-buffering: each edge
/// stores *two* log-messages (`[even round, odd round]` slots, 2 floats
/// each). A vertex at round `k` reads slot `k % 2` and writes slot
/// `(k + 1) % 2`, so a freshly written message never clobbers one that has
/// not been consumed — giving the bulk-synchronous trajectory on an
/// asynchronous engine. This doubles the edge-value storage, which is
/// exactly the static-message overhead the paper's dynamic messages avoid.
pub struct ChiBp {
    pub rounds: u32,
}

impl ChiProgram for ChiBp {
    type VertexValue = [f32; 2]; // belief
    type EdgeValue = [f32; 4]; // [even m0, even m1, odd m0, odd m1]

    fn init(&self, vid: VertexId, _out_degree: u32) -> [f32; 2] {
        bp_prior(vid)
    }

    fn update(
        &self,
        vid: VertexId,
        value: &mut [f32; 2],
        in_edges: &[(VertexId, [f32; 4])],
        out_edges: &mut [OutEdgeSlot<[f32; 4]>],
        ctx: &mut ChiContext,
    ) {
        let k = ctx.iteration();
        let read = (k % 2) as usize * 2;
        if k > 0 {
            let mut acc = [0.0f32; 2];
            for (_, ev) in in_edges {
                acc[0] += ev[read];
                acc[1] += ev[read + 1];
            }
            *value = bp_combine(bp_prior(vid), acc);
        }
        if k < self.rounds {
            ctx.mark_changed();
            let m = bp_message(*value);
            let write = ((k + 1) % 2) as usize * 2;
            for e in out_edges.iter_mut() {
                e.value[write] = m[0];
                e.value[write + 1] = m[1];
            }
        }
    }
}
