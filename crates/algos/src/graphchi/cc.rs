//! Connected components for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

/// Minimum-label propagation over static edge values. An edge value of `0`
/// means "no label yet", otherwise it encodes `label + 1`. Run on a
/// symmetrized graph for undirected semantics.
pub struct ChiCc;

const NONE: u32 = 0;

impl ChiProgram for ChiCc {
    type VertexValue = u32; // current label
    type EdgeValue = u32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> u32 {
        vid
    }

    fn update(
        &self,
        _vid: VertexId,
        value: &mut u32,
        in_edges: &[(VertexId, u32)],
        out_edges: &mut [OutEdgeSlot<u32>],
        ctx: &mut ChiContext,
    ) {
        let offer = in_edges
            .iter()
            .filter(|(_, v)| *v != NONE)
            .map(|(_, v)| v - 1)
            .min()
            .unwrap_or(u32::MAX);
        let mut announce = ctx.iteration() == 0;
        if offer < *value {
            *value = offer;
            announce = true;
        }
        if announce {
            ctx.mark_changed();
            for e in out_edges.iter_mut() {
                e.value = *value + 1;
            }
        }
    }
}
