//! Breadth-first search for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

/// BFS over static edge values. An edge value of `0` means "no offer yet";
/// otherwise it encodes `sender's distance + 2` so that distance 0 is
/// representable (`0 -> 2`). Monotone min-folds tolerate the asynchronous
/// model's mixed-age reads.
pub struct ChiBfs {
    /// Source vertex (original id — GraphChi keeps original order).
    pub source: VertexId,
}

const NONE: u32 = 0;

impl ChiProgram for ChiBfs {
    type VertexValue = u32; // distance, u32::MAX = unreached
    type EdgeValue = u32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> u32 {
        if vid == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn update(
        &self,
        _vid: VertexId,
        value: &mut u32,
        in_edges: &[(VertexId, u32)],
        out_edges: &mut [OutEdgeSlot<u32>],
        ctx: &mut ChiContext,
    ) {
        // Candidate distance via an in-neighbor = its encoded distance + 1,
        // i.e. (enc - 2) + 1.
        let offer = in_edges
            .iter()
            .filter(|(_, v)| *v != NONE)
            .map(|(_, v)| v - 1)
            .min()
            .unwrap_or(u32::MAX);
        let mut announce = false;
        if offer < *value {
            *value = offer;
            ctx.mark_changed();
            announce = true;
        }
        if ctx.iteration() == 0 && *value != u32::MAX {
            // The source kicks off the frontier.
            ctx.mark_changed();
            announce = true;
        }
        if announce {
            for e in out_edges.iter_mut() {
                e.value = *value + 2;
            }
        }
    }
}
