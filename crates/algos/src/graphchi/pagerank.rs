//! PageRank for the GraphChi-class engine.

use graphz_baselines::graphchi::{ChiContext, ChiProgram, OutEdgeSlot};
use graphz_types::VertexId;

use crate::common::pr_rank;

/// PageRank over static edge values: every update writes `rank / deg` on
/// its out-edges; the next update of each neighbor reads them as in-edges.
pub struct ChiPageRank {
    pub tolerance: f32,
}

impl ChiProgram for ChiPageRank {
    type VertexValue = f32;
    type EdgeValue = f32;

    fn init(&self, _vid: VertexId, _out_degree: u32) -> f32 {
        1.0
    }

    fn update(
        &self,
        _vid: VertexId,
        value: &mut f32,
        in_edges: &[(VertexId, f32)],
        out_edges: &mut [OutEdgeSlot<f32>],
        ctx: &mut ChiContext,
    ) {
        if ctx.iteration() == 0 {
            ctx.mark_changed();
        } else {
            let votes: f32 = in_edges.iter().map(|(_, v)| *v).sum();
            let new = pr_rank(votes);
            if (new - *value).abs() > self.tolerance {
                ctx.mark_changed();
            }
            *value = new;
        }
        if !out_edges.is_empty() {
            let share = *value / out_edges.len() as f32;
            for e in out_edges.iter_mut() {
                e.value = share;
            }
        }
    }
}
