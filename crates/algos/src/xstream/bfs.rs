//! Breadth-first search for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::VertexId;

/// Bulk-synchronous frontier BFS. The activity field choreographs phases:
/// `1` = in the current frontier (scatter this iteration), `2` = improved
/// by this iteration's gather, `0` = settled. The post-gather pass demotes
/// `2 -> 1 -> 0`.
pub struct XsBfs {
    /// Source vertex (original id).
    pub source: VertexId,
}

impl XsProgram for XsBfs {
    type VertexValue = (u32, u32); // (distance, activity)
    type Update = u32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> (u32, u32) {
        if vid == self.source {
            (0, 1)
        } else {
            (u32::MAX, 0)
        }
    }

    fn scatter(&self, _src: VertexId, v: &(u32, u32), _dst: VertexId, _it: u32) -> Option<u32> {
        // `.then` (lazy), not `.then_some`: `v.0 + 1` would overflow for
        // unreached vertices whose distance is still u32::MAX.
        (v.1 == 1).then(|| v.0 + 1)
    }

    fn gather(&self, _dst: VertexId, v: &mut (u32, u32), upd: &u32) -> bool {
        if *upd < v.0 {
            v.0 = *upd;
            v.1 = 2;
            true
        } else {
            false
        }
    }

    fn post_gather(&self, _vid: VertexId, v: &mut (u32, u32), _it: u32) -> bool {
        v.1 = match v.1 {
            2 => 1,
            _ => 0,
        };
        false
    }
}
