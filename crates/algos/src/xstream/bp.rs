//! Two-state loopy belief propagation for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::prelude::*;

use crate::common::{bp_combine, bp_message, bp_prior};

/// Vertex state: belief plus the log-message accumulator being gathered.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct XsBpData {
    pub belief: [f32; 2],
    acc: [f32; 2],
}

impl FixedCodec for XsBpData {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        for (i, v) in [self.belief[0], self.belief[1], self.acc[0], self.acc[1]]
            .iter()
            .enumerate()
        {
            buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let f = |i: usize| f32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap());
        XsBpData { belief: [f(0), f(1)], acc: [f(2), f(3)] }
    }
}

/// Bulk-synchronous loopy BP for exactly `rounds` message exchanges. No
/// parity buffers are needed: BSP already guarantees scatter reads only the
/// previous iteration's beliefs.
pub struct XsBp {
    pub rounds: u32,
}

impl XsProgram for XsBp {
    type VertexValue = XsBpData;
    type Update = (f32, f32);

    fn init(&self, vid: VertexId, _out_degree: u32) -> XsBpData {
        XsBpData { belief: bp_prior(vid), acc: [0.0; 2] }
    }

    fn scatter(&self, _src: VertexId, v: &XsBpData, _dst: VertexId, it: u32) -> Option<(f32, f32)> {
        if it >= self.rounds {
            return None;
        }
        let m = bp_message(v.belief);
        Some((m[0], m[1]))
    }

    fn gather(&self, _dst: VertexId, v: &mut XsBpData, upd: &(f32, f32)) -> bool {
        v.acc[0] += upd.0;
        v.acc[1] += upd.1;
        false
    }

    fn post_gather(&self, vid: VertexId, v: &mut XsBpData, iteration: u32) -> bool {
        if iteration >= self.rounds {
            return false;
        }
        let acc = std::mem::take(&mut v.acc);
        v.belief = bp_combine(bp_prior(vid), acc);
        iteration + 1 < self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let d = XsBpData { belief: [0.4, 0.6], acc: [-1.0, 0.5] };
        assert_eq!(XsBpData::read_from(&d.to_bytes()), d);
    }
}
