//! PageRank for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::VertexId;

use crate::common::pr_rank;

/// Bulk-synchronous PageRank: scatter streams every edge every iteration
/// (X-Stream's edge-centric contract), gather accumulates votes, and the
/// post-gather pass folds votes into the next rank.
pub struct XsPageRank {
    pub tolerance: f32,
}

impl XsProgram for XsPageRank {
    type VertexValue = (f32, f32, u32); // (rank, votes, out-degree)
    type Update = f32;

    fn init(&self, _vid: VertexId, out_degree: u32) -> (f32, f32, u32) {
        (1.0, 0.0, out_degree)
    }

    fn scatter(
        &self,
        _src: VertexId,
        v: &(f32, f32, u32),
        _dst: VertexId,
        _iteration: u32,
    ) -> Option<f32> {
        // Degree is never 0 here: a vertex with no out-edges scatters
        // nothing because it owns no edges to stream.
        Some(v.0 / v.2 as f32)
    }

    fn gather(&self, _dst: VertexId, v: &mut (f32, f32, u32), upd: &f32) -> bool {
        v.1 += upd;
        false // change is judged after the fold, in post_gather
    }

    fn post_gather(&self, _vid: VertexId, v: &mut (f32, f32, u32), _iteration: u32) -> bool {
        let new = pr_rank(v.1);
        let changed = (new - v.0).abs() > self.tolerance;
        v.0 = new;
        v.1 = 0.0;
        changed
    }
}
