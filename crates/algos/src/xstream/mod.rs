//! The six benchmarks written as X-Stream edge-centric scatter/gather
//! programs. One file per algorithm; Table IX counts these files — note how
//! the bulk-synchronous activity choreography (active flags, phase
//! demotion) makes these uniformly longer than their GraphZ counterparts,
//! matching the paper's LOC observations.

pub mod bfs;
pub mod bp;
pub mod cc;
pub mod pagerank;
pub mod random_walk;
pub mod sssp;

pub use bfs::XsBfs;
pub use bp::XsBp;
pub use cc::XsCc;
pub use pagerank::XsPageRank;
pub use random_walk::XsRandomWalk;
pub use sssp::XsSssp;
