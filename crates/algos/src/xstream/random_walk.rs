//! Random-walk visit mass for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::VertexId;

/// Bulk-synchronous walker-mass diffusion: scatter splits the current mass
/// over out-edges, gather collects next round's mass, post-gather banks the
/// visit count and rotates the buffers.
pub struct XsRandomWalk {
    pub rounds: u32,
}

impl XsProgram for XsRandomWalk {
    type VertexValue = (f32, f32, f32, u32); // (visits, current, gathering, out-degree)
    type Update = f32;

    fn init(&self, _vid: VertexId, out_degree: u32) -> (f32, f32, f32, u32) {
        (0.0, 1.0, 0.0, out_degree)
    }

    fn scatter(
        &self,
        _src: VertexId,
        v: &(f32, f32, f32, u32),
        _dst: VertexId,
        iteration: u32,
    ) -> Option<f32> {
        if iteration >= self.rounds || v.1 == 0.0 {
            return None;
        }
        Some(v.1 / v.3 as f32)
    }

    fn gather(&self, _dst: VertexId, v: &mut (f32, f32, f32, u32), upd: &f32) -> bool {
        v.2 += upd;
        false
    }

    fn post_gather(&self, _vid: VertexId, v: &mut (f32, f32, f32, u32), iteration: u32) -> bool {
        if iteration >= self.rounds {
            return false;
        }
        v.0 += v.1; // bank this round's mass as visits
        v.1 = v.2; // next round's arriving mass
        v.2 = 0.0;
        iteration + 1 < self.rounds
    }
}
