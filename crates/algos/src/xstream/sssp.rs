//! Single-source shortest paths for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::VertexId;

use crate::common::sssp_weight;

/// Bulk-synchronous Bellman–Ford over derived edge weights, with the
/// standard frontier/activity choreography.
pub struct XsSssp {
    /// Source vertex (original id).
    pub source: VertexId,
}

impl XsProgram for XsSssp {
    type VertexValue = (f32, u32); // (distance, activity)
    type Update = f32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> (f32, u32) {
        if vid == self.source {
            (0.0, 1)
        } else {
            (f32::INFINITY, 0)
        }
    }

    fn scatter(&self, src: VertexId, v: &(f32, u32), dst: VertexId, _it: u32) -> Option<f32> {
        (v.1 == 1).then(|| v.0 + sssp_weight(src, dst))
    }

    fn gather(&self, _dst: VertexId, v: &mut (f32, u32), upd: &f32) -> bool {
        if *upd < v.0 {
            v.0 = *upd;
            v.1 = 2;
            true
        } else {
            false
        }
    }

    fn post_gather(&self, _vid: VertexId, v: &mut (f32, u32), _it: u32) -> bool {
        v.1 = match v.1 {
            2 => 1,
            _ => 0,
        };
        false
    }
}
