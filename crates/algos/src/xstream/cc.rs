//! Connected components for the X-Stream-class engine.

use graphz_baselines::xstream::XsProgram;
use graphz_types::VertexId;

/// Bulk-synchronous minimum-label propagation with the same activity
/// choreography as [`super::bfs::XsBfs`]; every vertex starts in the
/// frontier announcing its own label. Run on a symmetrized graph.
pub struct XsCc;

impl XsProgram for XsCc {
    type VertexValue = (u32, u32); // (label, activity)
    type Update = u32;

    fn init(&self, vid: VertexId, _out_degree: u32) -> (u32, u32) {
        (vid, 1)
    }

    fn scatter(&self, _src: VertexId, v: &(u32, u32), _dst: VertexId, _it: u32) -> Option<u32> {
        (v.1 == 1).then_some(v.0)
    }

    fn gather(&self, _dst: VertexId, v: &mut (u32, u32), upd: &u32) -> bool {
        if *upd < v.0 {
            v.0 = *upd;
            v.1 = 2;
            true
        } else {
            false
        }
    }

    fn post_gather(&self, _vid: VertexId, v: &mut (u32, u32), _it: u32) -> bool {
        v.1 = match v.1 {
            2 => 1,
            _ => 0,
        };
        false
    }
}
