//! Single-source shortest paths for GraphZ.

use std::sync::Arc;

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::VertexId;

use crate::common::sssp_weight;

/// Bellman–Ford relaxation over edge weights.
///
/// When the graph store carries a `weights.bin` (DOS converted
/// `with_weights`), the stored per-edge weights are streamed alongside the
/// adjacency lists and used directly. Otherwise weights are derived on the
/// fly from the *original* endpoint ids — identical numbers, because
/// weighted conversion stores exactly `derive_weight(old_src, old_dst)` —
/// which requires the resident `new -> old` id map (4 bytes/vertex).
pub struct Sssp {
    /// Source in storage-id space.
    pub source: VertexId,
    /// Storage id -> original id (fallback weight derivation).
    pub new2old: Arc<Vec<VertexId>>,
}

impl VertexProgram for Sssp {
    type VertexData = (f32, f32); // (dist, pending)
    type Message = f32;

    fn init(&self, vid: VertexId, _degree: u32) -> (f32, f32) {
        (f32::INFINITY, if vid == self.source { 0.0 } else { f32::INFINITY })
    }

    fn update(&self, vid: VertexId, data: &mut (f32, f32), ctx: &mut UpdateContext<'_, f32>) {
        if data.1 < data.0 {
            data.0 = data.1;
            ctx.mark_changed();
            if ctx.has_weights() {
                let weights = ctx.neighbor_weights();
                for (i, &n) in ctx.neighbors().iter().enumerate() {
                    ctx.send(n, data.0 + weights[i]);
                }
            } else {
                let src_orig = self.new2old[vid as usize];
                for &n in ctx.neighbors() {
                    let w = sssp_weight(src_orig, self.new2old[n as usize]);
                    ctx.send(n, data.0 + w);
                }
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut (f32, f32), msg: &f32) {
        data.1 = data.1.min(*msg);
    }
}
