//! Breadth-first search for GraphZ.

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::VertexId;

/// BFS: vertex data is `(adopted distance, best pending offer)`; a message
/// is a candidate distance folded with `min` — the canonical dynamic
/// message.
pub struct Bfs {
    /// Source vertex in *storage* id space (translate with
    /// `Engine::to_storage_id` before constructing).
    pub source: VertexId,
}

impl VertexProgram for Bfs {
    type VertexData = (u32, u32); // (dist, pending)
    type Message = u32;

    fn init(&self, vid: VertexId, _degree: u32) -> (u32, u32) {
        (u32::MAX, if vid == self.source { 0 } else { u32::MAX })
    }

    fn update(&self, _vid: VertexId, data: &mut (u32, u32), ctx: &mut UpdateContext<'_, u32>) {
        if data.1 < data.0 {
            data.0 = data.1;
            ctx.mark_changed();
            let next = data.0 + 1;
            for &n in ctx.neighbors() {
                ctx.send(n, next);
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut (u32, u32), msg: &u32) {
        data.1 = data.1.min(*msg);
    }
}
