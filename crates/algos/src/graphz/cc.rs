//! Connected components for GraphZ.

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::VertexId;

/// Minimum-label propagation. Labels live in storage-id space; the runner
/// canonicalizes them afterwards (`common::canonicalize_labels`). Run on a
/// symmetrized graph for undirected semantics.
pub struct Cc;

impl VertexProgram for Cc {
    type VertexData = (u32, u32); // (label, pending)
    type Message = u32;

    fn init(&self, vid: VertexId, _degree: u32) -> (u32, u32) {
        (vid, vid)
    }

    fn update(&self, _vid: VertexId, data: &mut (u32, u32), ctx: &mut UpdateContext<'_, u32>) {
        let mut announce = false;
        if ctx.iteration() == 0 {
            // Every vertex announces its initial label once.
            ctx.mark_changed();
            announce = true;
        }
        if data.1 < data.0 {
            data.0 = data.1;
            ctx.mark_changed();
            announce = true;
        }
        if announce {
            for &n in ctx.neighbors() {
                ctx.send(n, data.0);
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut (u32, u32), msg: &u32) {
        data.1 = data.1.min(*msg);
    }
}
