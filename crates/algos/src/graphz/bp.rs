//! Two-state loopy belief propagation for GraphZ.

use std::sync::Arc;

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::prelude::*;

use crate::common::{bp_combine, bp_message, bp_prior};

/// Vertex state: current belief plus two parity-indexed accumulators of
/// incoming log-messages (this round's and next round's).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BpData {
    pub belief: [f32; 2],
    acc: [[f32; 2]; 2],
}

impl FixedCodec for BpData {
    const SIZE: usize = 24;

    fn write_to(&self, buf: &mut [u8]) {
        let vals =
            [self.belief[0], self.belief[1], self.acc[0][0], self.acc[0][1], self.acc[1][0], self.acc[1][1]];
        for (i, v) in vals.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let f = |i: usize| f32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap());
        BpData { belief: [f(0), f(1)], acc: [[f(2), f(3)], [f(4), f(5)]] }
    }
}

/// Loopy BP over `rounds` synchronized message exchanges.
///
/// Messages carry an iteration *parity tag* so that, even on this
/// asynchronous engine, a message is folded into the accumulator of the
/// round it belongs to — giving trajectories comparable across all engines
/// (see the crate docs on cross-engine semantics).
pub struct Bp {
    pub rounds: u32,
    /// Storage id -> original id, for the per-vertex prior.
    pub new2old: Arc<Vec<VertexId>>,
}

impl VertexProgram for Bp {
    type VertexData = BpData;
    type Message = (f32, f32, u32); // (log m0, log m1, parity)

    fn init(&self, vid: VertexId, _degree: u32) -> BpData {
        BpData { belief: bp_prior(self.new2old[vid as usize]), acc: [[0.0; 2]; 2] }
    }

    fn update(&self, vid: VertexId, data: &mut BpData, ctx: &mut UpdateContext<'_, Self::Message>) {
        let k = ctx.iteration();
        let par = (k % 2) as usize;
        let a = std::mem::take(&mut data.acc[par]);
        if k > 0 {
            data.belief = bp_combine(bp_prior(self.new2old[vid as usize]), a);
        }
        if k < self.rounds {
            ctx.mark_changed();
            let m = bp_message(data.belief);
            let tag = (k + 1) % 2;
            for &n in ctx.neighbors() {
                ctx.send(n, (m[0], m[1], tag));
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut BpData, msg: &Self::Message) {
        let acc = &mut data.acc[msg.2 as usize];
        acc[0] += msg.0;
        acc[1] += msg.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bp_data_codec_roundtrip() {
        let d = BpData { belief: [0.25, 0.75], acc: [[1.5, -0.5], [0.0, 2.0]] };
        let bytes = d.to_bytes();
        assert_eq!(bytes.len(), BpData::SIZE);
        assert_eq!(BpData::read_from(&bytes), d);
    }
}
