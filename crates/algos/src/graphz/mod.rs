//! The six benchmarks written as GraphZ `update()` / `apply_message()`
//! programs (paper §IV). One file per algorithm; the Table IX LOC
//! comparison counts these files.

pub mod bfs;
pub mod bp;
pub mod cc;
pub mod pagerank;
pub mod random_walk;
pub mod sssp;

pub use bfs::Bfs;
pub use bp::Bp;
pub use cc::Cc;
pub use pagerank::PageRank;
pub use random_walk::RandomWalk;
pub use sssp::Sssp;
