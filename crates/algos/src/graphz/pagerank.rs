//! PageRank for GraphZ — the paper's running example (Algorithms 3 & 4).

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::VertexId;

use crate::common::pr_rank;

/// PageRank: `VertexDataType` is `(rank, accumulated votes)`, the
/// `MessageDataType` is one vote share (paper Alg. 3).
pub struct PageRank {
    pub tolerance: f32,
}

impl VertexProgram for PageRank {
    type VertexData = (f32, f32); // (vval, votes)
    type Message = f32;

    fn init(&self, _vid: VertexId, _degree: u32) -> (f32, f32) {
        (1.0, 0.0)
    }

    fn update(&self, _vid: VertexId, data: &mut (f32, f32), ctx: &mut UpdateContext<'_, f32>) {
        if ctx.iteration() == 0 {
            ctx.mark_changed();
        } else {
            let new = pr_rank(data.1);
            if (new - data.0).abs() > self.tolerance {
                ctx.mark_changed();
            }
            data.0 = new;
        }
        data.1 = 0.0;
        let deg = ctx.out_degree();
        if deg > 0 {
            let share = data.0 / deg as f32;
            for &n in ctx.neighbors() {
                ctx.send(n, share);
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut (f32, f32), msg: &f32) {
        data.1 += msg;
    }
}
