//! Random-walk visit mass for GraphZ.

use graphz_core::{UpdateContext, VertexProgram};
use graphz_types::VertexId;

/// Walker mass diffusion: every vertex starts with one unit of walker mass
/// which splits uniformly over its out-edges each round (dead ends absorb).
/// `visits` integrates the mass seen over `rounds` rounds.
///
/// Messages carry a parity tag (like [`crate::graphz::Bp`]) so one round of
/// movement per iteration is preserved under asynchronous execution and the
/// totals match the other engines exactly.
pub struct RandomWalk {
    pub rounds: u32,
}

impl VertexProgram for RandomWalk {
    type VertexData = (f32, f32, f32); // (visits, bucket even, bucket odd)
    type Message = (f32, u32); // (mass, parity)

    fn init(&self, _vid: VertexId, _degree: u32) -> (f32, f32, f32) {
        (0.0, 1.0, 0.0) // one walker's mass, arriving at round 0
    }

    fn update(
        &self,
        _vid: VertexId,
        data: &mut (f32, f32, f32),
        ctx: &mut UpdateContext<'_, (f32, u32)>,
    ) {
        let k = ctx.iteration();
        if k >= self.rounds {
            return;
        }
        ctx.mark_changed();
        let mass = if k % 2 == 0 { std::mem::take(&mut data.1) } else { std::mem::take(&mut data.2) };
        data.0 += mass;
        let deg = ctx.out_degree();
        if deg > 0 && mass != 0.0 {
            let share = mass / deg as f32;
            let tag = (k + 1) % 2;
            for &n in ctx.neighbors() {
                ctx.send(n, (share, tag));
            }
        }
    }

    fn apply_message(
        &self,
        _vid: VertexId,
        data: &mut (f32, f32, f32),
        msg: &(f32, u32),
    ) {
        if msg.1 == 0 {
            data.1 += msg.0;
        } else {
            data.2 += msg.0;
        }
    }
}
