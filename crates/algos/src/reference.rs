//! In-memory reference implementations over a [`CsrGraph`].
//!
//! These play two roles from the paper:
//!
//! 1. the "plain C" competitor of Tables I–II — straightforward single-node
//!    implementations with no out-of-core machinery, fastest when the graph
//!    fits in memory;
//! 2. ground truth for the engine tests: every out-of-core engine's output
//!    is checked against these.

use graphz_storage::CsrGraph;
use graphz_types::VertexId;

use crate::common::{
    bp_combine, bp_message, bp_prior, canonicalize_labels, pr_rank, sssp_weight,
};

/// PageRank by power iteration to the fixed point of
/// `r = 0.15 + 0.85 * sum(in-votes)` (paper Eq. 2, non-normalized form).
/// Returns `(ranks, iterations)`.
pub fn pagerank(g: &CsrGraph, tolerance: f32, max_iterations: u32) -> (Vec<f32>, u32) {
    let n = g.num_vertices();
    let mut ranks = vec![1.0f32; n];
    let mut votes = vec![0.0f32; n];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        votes.iter_mut().for_each(|v| *v = 0.0);
        for u in 0..n as VertexId {
            let neighbors = g.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            let share = ranks[u as usize] / neighbors.len() as f32;
            for &v in neighbors {
                votes[v as usize] += share;
            }
        }
        let mut changed = false;
        for (r, &vt) in ranks.iter_mut().zip(&votes) {
            let new = pr_rank(vt);
            if (new - *r).abs() > tolerance {
                changed = true;
            }
            *r = new;
        }
        if !changed {
            break;
        }
    }
    (ranks, iterations)
}

/// Hop distance from `source` along out-edges (`u32::MAX` = unreachable).
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut frontier = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    frontier.push_back(source);
    while let Some(u) = frontier.pop_front() {
        let next = dist[u as usize] + 1;
        for &v in g.neighbors(u) {
            if next < dist[v as usize] {
                dist[v as usize] = next;
                frontier.push_back(v);
            }
        }
    }
    dist
}

/// Connected components over out-edges (callers symmetrize for undirected
/// semantics); labels canonicalized to the minimum member id.
pub fn cc(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n as VertexId {
            for &v in g.neighbors(u) {
                let (lu, lv) = (label[u as usize], label[v as usize]);
                let min = lu.min(lv);
                if lu != min {
                    label[u as usize] = min;
                    changed = true;
                }
                if lv != min {
                    label[v as usize] = min;
                    changed = true;
                }
            }
        }
    }
    canonicalize_labels(&label)
}

/// Bellman–Ford shortest paths from `source` over derived weights.
pub fn sssp(g: &CsrGraph, source: VertexId) -> Vec<f32> {
    let n = g.num_vertices();
    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n as VertexId {
            let du = dist[u as usize];
            if du.is_infinite() {
                continue;
            }
            for &v in g.neighbors(u) {
                let cand = du + sssp_weight(u, v);
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    changed = true;
                }
            }
        }
    }
    dist
}

/// Bulk-synchronous two-state loopy belief propagation for exactly
/// `rounds` message exchanges.
pub fn bp(g: &CsrGraph, rounds: u32) -> Vec<[f32; 2]> {
    let n = g.num_vertices();
    let mut belief: Vec<[f32; 2]> = (0..n as u32).map(bp_prior).collect();
    let mut acc = vec![[0.0f32; 2]; n];
    for _ in 0..rounds {
        acc.iter_mut().for_each(|a| *a = [0.0; 2]);
        for u in 0..n as VertexId {
            let m = bp_message(belief[u as usize]);
            for &v in g.neighbors(u) {
                acc[v as usize][0] += m[0];
                acc[v as usize][1] += m[1];
            }
        }
        for v in 0..n {
            belief[v] = bp_combine(bp_prior(v as u32), acc[v]);
        }
    }
    belief
}

/// Random-walk visit mass: one unit of walker mass starts at every vertex
/// and splits uniformly over out-edges each round (dead ends absorb);
/// `visits[v]` sums the mass present at `v` over rounds `0..rounds`.
pub fn random_walk(g: &CsrGraph, rounds: u32) -> Vec<f32> {
    let n = g.num_vertices();
    let mut current = vec![1.0f32; n];
    let mut visits = vec![0.0f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..rounds {
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as VertexId {
            let mass = current[u as usize];
            visits[u as usize] += mass;
            let neighbors = g.neighbors(u);
            if neighbors.is_empty() || mass == 0.0 {
                continue;
            }
            let share = mass / neighbors.len() as f32;
            for &v in neighbors {
                next[v as usize] += share;
            }
        }
        std::mem::swap(&mut current, &mut next);
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_types::Edge;

    fn triangle_plus_tail() -> CsrGraph {
        // 0 <-> 1 <-> 2 <-> 0 triangle; 2 -> 3 tail; 4 isolated.
        CsrGraph::from_edges(
            5,
            &[
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(1, 2),
                Edge::new(2, 1),
                Edge::new(2, 0),
                Edge::new(0, 2),
                Edge::new(2, 3),
            ],
        )
    }

    #[test]
    fn bfs_distances() {
        let g = triangle_plus_tail();
        assert_eq!(bfs(&g, 0), vec![0, 1, 1, 2, u32::MAX]);
        assert_eq!(bfs(&g, 3), vec![u32::MAX, u32::MAX, u32::MAX, 0, u32::MAX]);
    }

    #[test]
    fn cc_components() {
        let g = triangle_plus_tail();
        // 3 reachable via 2->3; treated as connected through directed edge
        // scan (symmetric relaxation in the loop). 4 isolated.
        assert_eq!(cc(&g), vec![0, 0, 0, 0, 4]);
    }

    #[test]
    fn sssp_matches_bfs_structure() {
        let g = triangle_plus_tail();
        let d = sssp(&g, 0);
        assert_eq!(d[0], 0.0);
        assert!(d[1] >= 1.0 && d[1] < 2.0); // one hop, weight in [1,2)
        assert!(d[3] > d[2]);
        assert!(d[4].is_infinite());
    }

    #[test]
    fn pagerank_fixed_point() {
        let g = triangle_plus_tail();
        let (ranks, iters) = pagerank(&g, 1e-6, 200);
        assert!(iters < 200, "should converge");
        // Verify the fixed point equation at every vertex.
        let mut votes = [0.0f32; 5];
        for u in 0..5u32 {
            let nb = g.neighbors(u);
            if nb.is_empty() {
                continue;
            }
            for &v in nb {
                votes[v as usize] += ranks[u as usize] / nb.len() as f32;
            }
        }
        for v in 0..5 {
            assert!((ranks[v] - pr_rank(votes[v])).abs() < 1e-4, "vertex {v}");
        }
        // Isolated vertex keeps the base rank.
        assert!((ranks[4] - 0.15).abs() < 1e-5);
    }

    #[test]
    fn bp_beliefs_are_distributions() {
        let g = triangle_plus_tail();
        let beliefs = bp(&g, 5);
        for b in &beliefs {
            assert!((b[0] + b[1] - 1.0).abs() < 1e-5);
            assert!(b[0] > 0.0 && b[1] > 0.0);
        }
        // Vertex 4 has no in-edges: belief equals its prior.
        let prior = bp_prior(4);
        assert!((beliefs[4][0] - prior[0]).abs() < 1e-6);
    }

    #[test]
    fn random_walk_mass_is_conserved_without_dead_ends() {
        // A 4-ring has no dead ends: total mass per round stays 4, so
        // visits total 4 * rounds.
        let ring = CsrGraph::from_edges(
            4,
            &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 0)],
        );
        let visits = random_walk(&ring, 6);
        let total: f32 = visits.iter().sum();
        assert!((total - 24.0).abs() < 1e-4, "{total}");
    }

    #[test]
    fn random_walk_dead_ends_absorb() {
        let g = triangle_plus_tail();
        let visits = random_walk(&g, 3);
        // Vertex 3 accumulates mass but never forwards it.
        assert!(visits[3] > 1.0);
        // An isolated vertex counts only its own initial mass, once.
        assert!((visits[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rounds_means_zero_visits() {
        let g = triangle_plus_tail();
        assert!(random_walk(&g, 0).iter().all(|&v| v == 0.0));
    }
}
