//! Shared algorithm definitions: parameters, result values, and the
//! numerical kernels every engine must agree on.

use graphz_types::prelude::*;

/// The six benchmarks of the paper's evaluation (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search: hop distance from a source.
    Bfs,
    /// Connected components: minimum-label propagation (undirected inputs).
    Cc,
    /// PageRank with damping 0.85.
    PageRank,
    /// Single-source shortest paths over derived edge weights.
    Sssp,
    /// Two-state loopy belief propagation, fixed rounds.
    Bp,
    /// Random-walk visit mass, fixed rounds.
    RandomWalk,
}

impl Algorithm {
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::Bfs,
            Algorithm::Cc,
            Algorithm::PageRank,
            Algorithm::Sssp,
            Algorithm::Bp,
            Algorithm::RandomWalk,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Cc => "CC",
            Algorithm::PageRank => "PR",
            Algorithm::Sssp => "SSSP",
            Algorithm::Bp => "BP",
            Algorithm::RandomWalk => "RW",
        }
    }

    /// Whether the algorithm expects a symmetrized (undirected) input, as
    /// the paper's CC benchmark does.
    pub fn wants_symmetrized(self) -> bool {
        matches!(self, Algorithm::Cc)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters shared by every engine's run of an algorithm.
#[derive(Debug, Clone, Copy)]
pub struct AlgoParams {
    pub algorithm: Algorithm,
    /// Source vertex (original id) for BFS / SSSP.
    pub source: VertexId,
    /// Iteration cap.
    pub max_iterations: u32,
    /// PageRank convergence tolerance.
    pub pr_tolerance: f32,
    /// Fixed rounds for RandomWalk / Belief Propagation.
    pub rounds: u32,
}

impl AlgoParams {
    pub fn new(algorithm: Algorithm) -> Self {
        AlgoParams { algorithm, source: 0, max_iterations: 100, pr_tolerance: 1e-4, rounds: 10 }
    }

    pub fn with_source(mut self, source: VertexId) -> Self {
        self.source = source;
        self
    }

    pub fn with_max_iterations(mut self, max: u32) -> Self {
        self.max_iterations = max;
        self
    }

    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }
}

/// Final per-vertex values, indexed by original vertex id.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoValues {
    /// BFS hop counts (`u32::MAX` = unreachable).
    Hops(Vec<u32>),
    /// Canonical component labels (minimum original id in the component).
    Labels(Vec<u32>),
    /// PageRank scores.
    Ranks(Vec<f32>),
    /// Shortest-path costs (`f32::INFINITY` = unreachable).
    Costs(Vec<f32>),
    /// Normalized two-state beliefs.
    Beliefs(Vec<[f32; 2]>),
    /// Random-walk visit mass.
    Visits(Vec<f32>),
}

impl AlgoValues {
    pub fn len(&self) -> usize {
        match self {
            AlgoValues::Hops(v) => v.len(),
            AlgoValues::Labels(v) => v.len(),
            AlgoValues::Ranks(v) => v.len(),
            AlgoValues::Costs(v) => v.len(),
            AlgoValues::Beliefs(v) => v.len(),
            AlgoValues::Visits(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum relative difference against another result of the same kind.
    ///
    /// Used by tests and the harness to confirm engines agree. Panics if the
    /// variants differ — that is a harness bug, not a data condition.
    pub fn max_relative_error(&self, other: &AlgoValues) -> f64 {
        fn rel(a: f64, b: f64) -> f64 {
            if a == b {
                return 0.0; // covers infinities and exact zeros
            }
            (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
        }
        match (self, other) {
            (AlgoValues::Hops(a), AlgoValues::Hops(b)) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| if x == y { 0.0 } else { 1.0 })
                .fold(0.0, f64::max),
            (AlgoValues::Labels(a), AlgoValues::Labels(b)) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| if x == y { 0.0 } else { 1.0 })
                .fold(0.0, f64::max),
            (AlgoValues::Ranks(a), AlgoValues::Ranks(b)) => {
                a.iter().zip(b).map(|(&x, &y)| rel(x as f64, y as f64)).fold(0.0, f64::max)
            }
            (AlgoValues::Costs(a), AlgoValues::Costs(b)) => {
                a.iter().zip(b).map(|(&x, &y)| rel(x as f64, y as f64)).fold(0.0, f64::max)
            }
            (AlgoValues::Beliefs(a), AlgoValues::Beliefs(b)) => a
                .iter()
                .zip(b)
                .flat_map(|(x, y)| [(x[0], y[0]), (x[1], y[1])])
                .map(|(x, y)| rel(x as f64, y as f64))
                .fold(0.0, f64::max),
            (AlgoValues::Visits(a), AlgoValues::Visits(b)) => {
                a.iter().zip(b).map(|(&x, &y)| rel(x as f64, y as f64)).fold(0.0, f64::max)
            }
            _ => panic!("comparing AlgoValues of different kinds"),
        }
    }
}

/// Canonicalize raw min-fold component labels: every vertex gets the
/// *minimum original id* of its component, making labels comparable across
/// engines that propagate labels in different id spaces (GraphZ propagates
/// storage ids, the baselines original ids — the partition into components
/// is what matters).
pub fn canonicalize_labels(raw: &[u32]) -> Vec<u32> {
    use std::collections::HashMap;
    let mut rep: HashMap<u32, u32> = HashMap::new();
    for (v, &label) in raw.iter().enumerate() {
        let entry = rep.entry(label).or_insert(u32::MAX);
        *entry = (*entry).min(v as u32);
    }
    raw.iter().map(|l| rep[l]).collect()
}

// ---------------------------------------------------------------------------
// Numerical kernels shared by every engine implementation.
// ---------------------------------------------------------------------------

/// PageRank damping factor.
pub const PR_DAMPING: f32 = 0.85;

/// The non-normalized PageRank recurrence the paper's Eq. 2 uses:
/// `r = (1 - d) + d * sum(votes)`.
#[inline]
pub fn pr_rank(votes: f32) -> f32 {
    (1.0 - PR_DAMPING) + PR_DAMPING * votes
}

/// SSSP edge weight — every engine derives it from *original* endpoint ids
/// so no engine has to store weights (see `graphz_types::derive_weight`).
#[inline]
pub fn sssp_weight(src_original: VertexId, dst_original: VertexId) -> Weight {
    derive_weight(src_original, dst_original)
}

/// BP vertex prior in probability space, derived from the original id.
#[inline]
pub fn bp_prior(original_id: VertexId) -> [f32; 2] {
    let w = derive_weight(original_id, !original_id) - 1.0; // [0, 1)
    let p = 0.2 + 0.6 * w;
    [p, 1.0 - p]
}

/// The symmetric pairwise potential (agreement-favoring Potts model).
pub const BP_POTENTIAL: [[f32; 2]; 2] = [[0.7, 0.3], [0.3, 0.7]];

/// The log-domain message a vertex with `belief` sends its neighbors:
/// `ln(normalize(potential x belief))`.
#[inline]
pub fn bp_message(belief: [f32; 2]) -> [f32; 2] {
    let m0 = BP_POTENTIAL[0][0] * belief[0] + BP_POTENTIAL[0][1] * belief[1];
    let m1 = BP_POTENTIAL[1][0] * belief[0] + BP_POTENTIAL[1][1] * belief[1];
    let z = m0 + m1;
    [(m0 / z).ln(), (m1 / z).ln()]
}

/// Fold accumulated log-messages into a normalized belief:
/// `normalize(prior * exp(acc))`.
#[inline]
pub fn bp_combine(prior: [f32; 2], acc: [f32; 2]) -> [f32; 2] {
    let b0 = prior[0].ln() + acc[0];
    let b1 = prior[1].ln() + acc[1];
    // Subtract the max before exponentiating for numerical stability.
    let m = b0.max(b1);
    let e0 = (b0 - m).exp();
    let e1 = (b1 - m).exp();
    let z = e0 + e1;
    [e0 / z, e1 / z]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::all().len(), 6);
        assert_eq!(Algorithm::PageRank.name(), "PR");
        assert!(Algorithm::Cc.wants_symmetrized());
        assert!(!Algorithm::Bfs.wants_symmetrized());
        assert_eq!(Algorithm::Sssp.to_string(), "SSSP");
    }

    #[test]
    fn params_builder() {
        let p = AlgoParams::new(Algorithm::Bfs)
            .with_source(7)
            .with_max_iterations(5)
            .with_rounds(3);
        assert_eq!(p.source, 7);
        assert_eq!(p.max_iterations, 5);
        assert_eq!(p.rounds, 3);
    }

    #[test]
    fn relative_error_detects_differences() {
        let a = AlgoValues::Ranks(vec![1.0, 2.0]);
        let b = AlgoValues::Ranks(vec![1.0, 2.2]);
        let err = a.max_relative_error(&b);
        assert!(err > 0.05 && err < 0.15, "{err}");
        assert_eq!(a.max_relative_error(&a), 0.0);
        // Infinities compare equal to themselves.
        let c = AlgoValues::Costs(vec![f32::INFINITY]);
        assert_eq!(c.max_relative_error(&c), 0.0);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn relative_error_rejects_kind_mismatch() {
        AlgoValues::Ranks(vec![]).max_relative_error(&AlgoValues::Hops(vec![]));
    }

    #[test]
    fn canonical_labels_pick_min_member() {
        // Vertices 0,2 share label 9; vertices 1,3 share label 5.
        let raw = vec![9, 5, 9, 5];
        let canon = canonicalize_labels(&raw);
        assert_eq!(canon, vec![0, 1, 0, 1]);
    }

    #[test]
    fn bp_kernels_are_normalized() {
        let prior = bp_prior(42);
        assert!((prior[0] + prior[1] - 1.0).abs() < 1e-6);
        assert!(prior[0] > 0.19 && prior[0] < 0.81);
        let msg = bp_message([0.9, 0.1]);
        let back = [msg[0].exp(), msg[1].exp()];
        assert!((back[0] + back[1] - 1.0).abs() < 1e-6);
        let belief = bp_combine(prior, msg);
        assert!((belief[0] + belief[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pr_rank_formula() {
        assert!((pr_rank(0.0) - 0.15).abs() < 1e-7);
        assert!((pr_rank(1.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn sssp_weight_is_original_id_based() {
        assert_eq!(sssp_weight(3, 4), derive_weight(3, 4));
        assert!(sssp_weight(3, 4) >= 1.0 && sssp_weight(3, 4) < 2.0);
    }
}
