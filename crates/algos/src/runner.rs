//! Uniform harness layer: prepare a graph for any engine, run any of the
//! six algorithms on it, and get back comparable values plus run metrics.
//!
//! The benchmark binaries in `graphz-bench` drive everything through this
//! module so that every engine is measured through exactly the same code
//! path and IO accounting.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphz_baselines::graphchi::{ChiEngine, ChiEngineConfig, ChiShards, ShardingConfig};
use graphz_baselines::gridgraph::{GridEngine, GridEngineConfig, GridPartitions};
use graphz_baselines::xstream::{XsEngine, XsEngineConfig, XsPartitions};
use graphz_baselines::BaselineRun;
use graphz_core::{DenseStore, DosStore, Engine, EngineConfig, GraphStore, StageTimes, VertexProgram};
use graphz_io::{IoSnapshot, IoStats, PrefetchSnapshot};
use graphz_storage::{CsrFiles, CsrGraph, DosConverter, DosGraph, EdgeListFile};
use graphz_types::prelude::*;

use crate::common::{canonicalize_labels, AlgoParams, Algorithm, AlgoValues};
use crate::{graphchi as chi, graphz as gz, reference, xstream as xs};

/// Which system executes the algorithm (paper Fig. 5–7 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Full GraphZ: degree-ordered storage + dynamic messages.
    GraphZ,
    /// Fig. 7 ablation: GraphZ engine, dense-indexed original order, DM on.
    GraphZNoDos,
    /// Fig. 7 ablation: dense-indexed original order, DM off (all messages
    /// buffered like a static-message system).
    GraphZNoDosNoDm,
    /// GraphChi-class parallel sliding windows.
    GraphChi,
    /// X-Stream-class edge-centric streaming.
    XStream,
    /// GridGraph-class 2-level grid streaming (extension beyond the paper's
    /// comparisons — see `graphz_baselines::gridgraph`).
    GridGraph,
    /// Plain in-memory implementation (Tables I–II's "C" rows).
    Reference,
}

impl EngineKind {
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::GraphZ => "GraphZ",
            EngineKind::GraphZNoDos => "GraphZ w/o DOS",
            EngineKind::GraphZNoDosNoDm => "GraphZ w/o DOS and DM",
            EngineKind::GraphChi => "GraphChi",
            EngineKind::XStream => "X-Stream",
            EngineKind::GridGraph => "GridGraph",
            EngineKind::Reference => "C (in-memory)",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a benchmark needs to report about one run.
#[derive(Debug, Clone)]
pub struct AlgoOutcome {
    pub engine: EngineKind,
    pub algorithm: Algorithm,
    pub iterations: u32,
    pub converged: bool,
    pub partitions: u32,
    /// Messages / updates / edge-writes that crossed the engine's
    /// communication layer.
    pub messages: u64,
    /// Buffered messages that overflowed to spill files (GraphZ engines;
    /// baselines report 0).
    pub spilled: u64,
    pub io: IoSnapshot,
    pub wall: Duration,
    /// Engine-thread wall time per pipeline stage (GraphZ engines only).
    pub stages: Option<StageTimes>,
    /// Partition-prefetch effectiveness (GraphZ engines only).
    pub prefetch: Option<PrefetchSnapshot>,
    /// Per-vertex results indexed by original id.
    pub values: AlgoValues,
}

// ---------------------------------------------------------------------------
// Preparation (the Table XII "preprocessing" steps).
// ---------------------------------------------------------------------------

/// Convert to degree-ordered storage (GraphZ preprocessing).
pub fn prepare_dos(
    input: &EdgeListFile,
    dir: &Path,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<DosGraph> {
    DosConverter::builder().budget(budget).stats(stats).build()?.convert(input, dir)
}

/// Convert to on-disk CSR (substrate for the w/o-DOS ablations).
pub fn prepare_csr(
    input: &EdgeListFile,
    dir: &Path,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<CsrFiles> {
    CsrFiles::convert(input, dir, stats, budget)
}

/// Shard for the GraphChi-class engine.
pub fn prepare_chi(
    input: &EdgeListFile,
    dir: &Path,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<ChiShards> {
    ChiShards::convert(input, dir, ShardingConfig::new(budget), stats)
}

/// Bucket into the 2-level grid for the GridGraph-class engine.
pub fn prepare_grid(
    input: &EdgeListFile,
    dir: &Path,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<GridPartitions> {
    GridPartitions::convert(input, dir, budget, stats)
}

/// Bucket into streaming partitions for the X-Stream-class engine.
pub fn prepare_xs(
    input: &EdgeListFile,
    dir: &Path,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<XsPartitions> {
    XsPartitions::convert(input, dir, budget, stats)
}

// ---------------------------------------------------------------------------
// GraphZ runs (full and ablated).
// ---------------------------------------------------------------------------

/// Durability knobs for a GraphZ run, kept separate from the `Copy`-able
/// [`AlgoParams`]: where to write checkpoint generations, how often, and
/// whether to resume from the newest valid one before running.
#[derive(Debug, Clone, Default)]
pub struct CheckpointSpec {
    /// Root directory for `gen-NNNNNNNN/` generations; `None` disables
    /// checkpointing (and resuming).
    pub dir: Option<std::path::PathBuf>,
    /// Checkpoint after every `every` completed iterations (0 = only resume,
    /// never write).
    pub every: u32,
    /// Scan `dir` for the newest valid generation and continue from it.
    pub resume: bool,
}

impl CheckpointSpec {
    /// No checkpointing at all (the default).
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// Run on the full GraphZ configuration (DOS + dynamic messages).
pub fn run_graphz(
    dos: &DosGraph,
    params: &AlgoParams,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    run_graphz_checkpointed(dos, params, budget, &CheckpointSpec::disabled(), stats)
}

/// Run on the full GraphZ configuration with crash-safe checkpointing: write
/// a generation under `ckpt.dir` every `ckpt.every` iterations and, when
/// `ckpt.resume` is set, continue from the newest valid generation instead
/// of starting over.
pub fn run_graphz_checkpointed(
    dos: &DosGraph,
    params: &AlgoParams,
    budget: MemoryBudget,
    ckpt: &CheckpointSpec,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    run_graphz_configured(dos, params, budget, EngineOptions::full(), ckpt, stats)
}

/// Run the GraphZ engine over DOS with explicit [`EngineOptions`] — the
/// entry point for parallel-worker / prefetch configurations (CLI
/// `--threads` / `--no-prefetch`, the determinism suite, the throughput
/// bench).
pub fn run_graphz_configured(
    dos: &DosGraph,
    params: &AlgoParams,
    budget: MemoryBudget,
    options: EngineOptions,
    ckpt: &CheckpointSpec,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    run_graphz_with(
        Box::new(DosStore::new(dos.clone())),
        EngineKind::GraphZ,
        params,
        budget,
        options,
        ckpt,
        stats,
    )
}

/// Run a GraphZ ablation over a dense-indexed CSR store
/// (`EngineKind::GraphZNoDos` / `GraphZNoDosNoDm`).
pub fn run_graphz_dense(
    csr: &CsrFiles,
    params: &AlgoParams,
    budget: MemoryBudget,
    dynamic_messages: bool,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    let store = DenseStore::new(csr.clone(), budget, Arc::clone(&stats))?;
    let (kind, options) = if dynamic_messages {
        (EngineKind::GraphZNoDos, EngineOptions::without_dos())
    } else {
        (EngineKind::GraphZNoDosNoDm, EngineOptions::without_dos_and_dm())
    };
    run_graphz_with(
        Box::new(store),
        kind,
        params,
        budget,
        options,
        &CheckpointSpec::disabled(),
        stats,
    )
}

fn run_graphz_with(
    store: Box<dyn GraphStore>,
    kind: EngineKind,
    params: &AlgoParams,
    budget: MemoryBudget,
    options: EngineOptions,
    ckpt: &CheckpointSpec,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    let mut config = EngineConfig::new(budget).with_options(options);
    if let Some(dir) = &ckpt.dir {
        config = config.checkpoint_every(dir, ckpt.every);
    }
    let max = effective_max_iterations(params);

    fn finish<P, F>(
        mut engine: Engine<P>,
        kind: EngineKind,
        params: &AlgoParams,
        max: u32,
        ckpt: &CheckpointSpec,
        extract: F,
    ) -> Result<AlgoOutcome>
    where
        P: VertexProgram,
        F: FnOnce(Vec<P::VertexData>) -> AlgoValues,
    {
        if ckpt.resume {
            if let Some(dir) = &ckpt.dir {
                engine.resume_latest(dir)?;
            }
        }
        let run = engine.run(max)?;
        let values = extract(engine.values_by_original_id()?);
        Ok(AlgoOutcome {
            engine: kind,
            algorithm: params.algorithm,
            iterations: run.iterations,
            converged: run.converged,
            partitions: run.partitions,
            messages: run.messages_sent,
            spilled: run.spilled,
            io: run.io,
            wall: run.wall,
            stages: Some(run.stages),
            prefetch: Some(run.prefetch),
            values,
        })
    }

    match params.algorithm {
        Algorithm::PageRank => {
            let program = gz::PageRank { tolerance: params.pr_tolerance };
            let engine = Engine::new(store, program, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                AlgoValues::Ranks(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bfs => {
            let source = store.to_storage_id(params.source, &stats)?;
            let engine = Engine::new(store, gz::Bfs { source }, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                AlgoValues::Hops(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Cc => {
            let engine = Engine::new(store, gz::Cc, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                let raw: Vec<u32> = vals.into_iter().map(|v| v.0).collect();
                AlgoValues::Labels(canonicalize_labels(&raw))
            })
        }
        Algorithm::Sssp => {
            let source = store.to_storage_id(params.source, &stats)?;
            let new2old = Arc::new(store.original_ids(&stats)?);
            let engine = Engine::new(store, gz::Sssp { source, new2old }, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                AlgoValues::Costs(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bp => {
            let new2old = Arc::new(store.original_ids(&stats)?);
            let program = gz::Bp { rounds: params.rounds, new2old };
            let engine = Engine::new(store, program, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                AlgoValues::Beliefs(vals.into_iter().map(|v| v.belief).collect())
            })
        }
        Algorithm::RandomWalk => {
            let program = gz::RandomWalk { rounds: params.rounds };
            let engine = Engine::new(store, program, config, stats)?;
            finish(engine, kind, params, max, ckpt, |vals| {
                AlgoValues::Visits(vals.into_iter().map(|v| v.0).collect())
            })
        }
    }
}

// ---------------------------------------------------------------------------
// GraphChi runs.
// ---------------------------------------------------------------------------

/// Run on the GraphChi-class engine. Fails with
/// [`graphz_types::GraphError::IndexExceedsMemory`] when the dense vertex
/// index cannot fit — the paper's xlarge failure mode.
pub fn run_graphchi(
    shards: &ChiShards,
    params: &AlgoParams,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    let config = ChiEngineConfig::new(budget);
    let max = effective_max_iterations(params);

    fn finish<P, F>(
        mut engine: ChiEngine<P>,
        params: &AlgoParams,
        max: u32,
        extract: F,
    ) -> Result<AlgoOutcome>
    where
        P: graphz_baselines::graphchi::ChiProgram,
        F: FnOnce(Vec<P::VertexValue>) -> AlgoValues,
    {
        let run = engine.run(max)?;
        let values = extract(engine.values()?);
        Ok(baseline_outcome(EngineKind::GraphChi, params, run, values))
    }

    match params.algorithm {
        Algorithm::PageRank => {
            let program = chi::ChiPageRank { tolerance: params.pr_tolerance };
            let engine = ChiEngine::new(shards.clone(), program, config, stats)?;
            finish(engine, params, max, AlgoValues::Ranks)
        }
        Algorithm::Bfs => {
            let program = chi::ChiBfs { source: params.source };
            let engine = ChiEngine::new(shards.clone(), program, config, stats)?;
            finish(engine, params, max, AlgoValues::Hops)
        }
        Algorithm::Cc => {
            let engine = ChiEngine::new(shards.clone(), chi::ChiCc, config, stats)?;
            finish(engine, params, max, |raw| AlgoValues::Labels(canonicalize_labels(&raw)))
        }
        Algorithm::Sssp => {
            let program = chi::ChiSssp { source: params.source };
            let engine = ChiEngine::new(shards.clone(), program, config, stats)?;
            finish(engine, params, max, AlgoValues::Costs)
        }
        Algorithm::Bp => {
            let program = chi::ChiBp { rounds: params.rounds };
            let engine = ChiEngine::new(shards.clone(), program, config, stats)?;
            finish(engine, params, max, AlgoValues::Beliefs)
        }
        Algorithm::RandomWalk => {
            let program = chi::ChiRandomWalk { rounds: params.rounds };
            let engine = ChiEngine::new(shards.clone(), program, config, stats)?;
            finish(engine, params, max, AlgoValues::Visits)
        }
    }
}

// ---------------------------------------------------------------------------
// X-Stream runs.
// ---------------------------------------------------------------------------

/// Run on the X-Stream-class engine.
pub fn run_xstream(
    parts: &XsPartitions,
    params: &AlgoParams,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    let config = XsEngineConfig::new(budget);
    let max = effective_max_iterations(params);

    fn finish<P, F>(
        mut engine: XsEngine<P>,
        params: &AlgoParams,
        max: u32,
        extract: F,
    ) -> Result<AlgoOutcome>
    where
        P: graphz_baselines::xstream::XsProgram,
        F: FnOnce(Vec<P::VertexValue>) -> AlgoValues,
    {
        let run = engine.run(max)?;
        let values = extract(engine.values()?);
        Ok(baseline_outcome(EngineKind::XStream, params, run, values))
    }

    match params.algorithm {
        Algorithm::PageRank => {
            let program = xs::XsPageRank { tolerance: params.pr_tolerance };
            let engine = XsEngine::new(parts.clone(), program, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Ranks(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bfs => {
            let engine =
                XsEngine::new(parts.clone(), xs::XsBfs { source: params.source }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Hops(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Cc => {
            let engine = XsEngine::new(parts.clone(), xs::XsCc, config, stats)?;
            finish(engine, params, max, |vals| {
                let raw: Vec<u32> = vals.into_iter().map(|v| v.0).collect();
                AlgoValues::Labels(canonicalize_labels(&raw))
            })
        }
        Algorithm::Sssp => {
            let engine =
                XsEngine::new(parts.clone(), xs::XsSssp { source: params.source }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Costs(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bp => {
            let engine =
                XsEngine::new(parts.clone(), xs::XsBp { rounds: params.rounds }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Beliefs(vals.into_iter().map(|v| v.belief).collect())
            })
        }
        Algorithm::RandomWalk => {
            let program = xs::XsRandomWalk { rounds: params.rounds };
            let engine = XsEngine::new(parts.clone(), program, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Visits(vals.into_iter().map(|v| v.0).collect())
            })
        }
    }
}

// ---------------------------------------------------------------------------
// GridGraph runs (extension).
// ---------------------------------------------------------------------------

/// Run on the GridGraph-class engine. Reuses the X-Stream programs — the
/// grid engine's programming model is the same edge-centric scatter/gather.
pub fn run_gridgraph(
    grid: &GridPartitions,
    params: &AlgoParams,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<AlgoOutcome> {
    let config = GridEngineConfig::new(budget);
    let max = effective_max_iterations(params);

    fn finish<P, F>(
        mut engine: GridEngine<P>,
        params: &AlgoParams,
        max: u32,
        extract: F,
    ) -> Result<AlgoOutcome>
    where
        P: graphz_baselines::xstream::XsProgram,
        F: FnOnce(Vec<P::VertexValue>) -> AlgoValues,
    {
        let run = engine.run(max)?;
        let values = extract(engine.values()?);
        Ok(baseline_outcome(EngineKind::GridGraph, params, run, values))
    }

    match params.algorithm {
        Algorithm::PageRank => {
            let program = xs::XsPageRank { tolerance: params.pr_tolerance };
            let engine = GridEngine::new(grid.clone(), program, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Ranks(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bfs => {
            let engine =
                GridEngine::new(grid.clone(), xs::XsBfs { source: params.source }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Hops(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Cc => {
            let engine = GridEngine::new(grid.clone(), xs::XsCc, config, stats)?;
            finish(engine, params, max, |vals| {
                let raw: Vec<u32> = vals.into_iter().map(|v| v.0).collect();
                AlgoValues::Labels(canonicalize_labels(&raw))
            })
        }
        Algorithm::Sssp => {
            let engine =
                GridEngine::new(grid.clone(), xs::XsSssp { source: params.source }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Costs(vals.into_iter().map(|v| v.0).collect())
            })
        }
        Algorithm::Bp => {
            let engine =
                GridEngine::new(grid.clone(), xs::XsBp { rounds: params.rounds }, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Beliefs(vals.into_iter().map(|v| v.belief).collect())
            })
        }
        Algorithm::RandomWalk => {
            let program = xs::XsRandomWalk { rounds: params.rounds };
            let engine = GridEngine::new(grid.clone(), program, config, stats)?;
            finish(engine, params, max, |vals| {
                AlgoValues::Visits(vals.into_iter().map(|v| v.0).collect())
            })
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory reference runs.
// ---------------------------------------------------------------------------

/// Run the plain in-memory implementation (ground truth; the "C" rows of
/// Tables I–II).
pub fn run_reference(g: &CsrGraph, params: &AlgoParams) -> Result<AlgoOutcome> {
    let start = Instant::now();
    let (values, iterations) = match params.algorithm {
        Algorithm::PageRank => {
            let (ranks, iters) = reference::pagerank(g, params.pr_tolerance, params.max_iterations);
            (AlgoValues::Ranks(ranks), iters)
        }
        Algorithm::Bfs => (AlgoValues::Hops(reference::bfs(g, params.source)), 0),
        Algorithm::Cc => (AlgoValues::Labels(reference::cc(g)), 0),
        Algorithm::Sssp => (AlgoValues::Costs(reference::sssp(g, params.source)), 0),
        Algorithm::Bp => (AlgoValues::Beliefs(reference::bp(g, params.rounds)), params.rounds),
        Algorithm::RandomWalk => {
            (AlgoValues::Visits(reference::random_walk(g, params.rounds)), params.rounds)
        }
    };
    Ok(AlgoOutcome {
        engine: EngineKind::Reference,
        algorithm: params.algorithm,
        iterations,
        converged: true,
        partitions: 1,
        messages: 0,
        spilled: 0,
        io: IoSnapshot::default(),
        wall: start.elapsed(),
        stages: None,
        prefetch: None,
        values,
    })
}

// ---------------------------------------------------------------------------

fn baseline_outcome(
    kind: EngineKind,
    params: &AlgoParams,
    run: BaselineRun,
    values: AlgoValues,
) -> AlgoOutcome {
    AlgoOutcome {
        engine: kind,
        algorithm: params.algorithm,
        iterations: run.iterations,
        converged: run.converged,
        partitions: run.partitions,
        messages: run.updates_sent,
        spilled: 0,
        io: run.io,
        wall: run.wall,
        stages: None,
        prefetch: None,
        values,
    }
}

/// Fixed-round algorithms (BP, RW) need `rounds + 1` engine iterations to
/// flush the final exchange; cap everything at the caller's maximum.
fn effective_max_iterations(params: &AlgoParams) -> u32 {
    match params.algorithm {
        Algorithm::Bp | Algorithm::RandomWalk => params.max_iterations.max(params.rounds + 2),
        _ => params.max_iterations,
    }
}

/// Convenience for tests and examples: the source vertex must exist.
pub fn validate_source(num_vertices: u64, source: VertexId) -> Result<()> {
    if (source as u64) < num_vertices {
        Ok(())
    } else {
        Err(graphz_types::GraphError::Algorithm(format!(
            "source vertex {source} out of range (graph has {num_vertices} vertices)"
        )))
    }
}
