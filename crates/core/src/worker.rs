//! The deterministic parallel Worker stage.
//!
//! The paper's Worker (§V, Fig. 4) applies `program.update` over the
//! resident partition. Here that work is split across *logical shards* —
//! contiguous sub-ranges of the partition's vertex range — executed by a
//! persistent pool of worker threads. Determinism comes from one rule:
//!
//! **The shard plan is a function of the partition and `worker_shards`
//! only, never of the thread count.** Threads merely execute a fixed
//! logical schedule: shard *s* always runs on worker `s % threads`, jobs
//! for a shard are FIFO, shards touch disjoint vertex ranges, and every
//! message that crosses a shard boundary is deferred into the sending
//! shard's ordered buffer and applied at the partition barrier in
//! `(shard, send order)` sequence. `pipeline_threads: N` is therefore
//! bit-identical to `pipeline_threads: 1` — the single-threaded executor
//! runs the *same* sharded schedule inline through the same
//! [`ShardState`] code path.
//!
//! Messages whose destination lies inside the *sending shard* keep the
//! paper's dynamic-message fast path and are applied immediately.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use graphz_types::{cast, GraphError, Result, VertexId};

use crate::program::{UpdateContext, VertexProgram};
use crate::sio::{AdjBatch, BatchPool};

/// Shards smaller than this are not worth a hand-off; `plan_shards` lowers
/// the shard count for small partitions so tiny graphs run single-sharded
/// (and thus byte-for-byte like the pre-sharding engine).
pub const MIN_SHARD_VERTICES: usize = 16;

/// Split the partition `[a, b)` into at most `max_shards` contiguous vertex
/// ranges. Deterministic in its arguments alone — in particular it never
/// looks at how many worker threads exist.
pub fn plan_shards(a: VertexId, b: VertexId, max_shards: usize) -> Vec<(VertexId, VertexId)> {
    let count = (b - a) as usize;
    if count == 0 {
        return Vec::new();
    }
    let shards = max_shards.max(1).min(count.div_ceil(MIN_SHARD_VERTICES)).max(1);
    let per = count.div_ceil(shards);
    (0..shards)
        .map(|s| (a + ((s * per).min(count)) as VertexId, a + (((s + 1) * per).min(count)) as VertexId))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Index of the shard containing `v` (plan ranges are contiguous and sorted).
pub fn shard_of(plan: &[(VertexId, VertexId)], v: VertexId) -> usize {
    match plan.binary_search_by(|&(lo, _)| lo.cmp(&v)) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

/// Route one Dispatcher batch to the shards it overlaps. The common case —
/// the batch lies inside a single shard — moves the batch without copying;
/// only batches straddling a shard boundary are sliced, and the slices are
/// carved into recycled buffers from `pool` (the straddler itself goes back
/// into the pool) so the steady state allocates nothing.
pub fn split_batch(
    batch: AdjBatch,
    plan: &[(VertexId, VertexId)],
    pool: &BatchPool,
) -> Vec<(usize, AdjBatch)> {
    let lo = batch.first_vertex;
    let hi = lo + batch.degrees.len() as VertexId;
    if lo >= hi {
        pool.put(batch);
        return Vec::new();
    }
    let s0 = shard_of(plan, lo);
    // ipa:allow(panic-freedom) — shard_of returns an index into plan by construction
    if hi <= plan[s0].1 {
        return vec![(s0, batch)];
    }
    let mut out = Vec::new();
    let mut v = lo;
    let mut edge_at = 0usize;
    let mut s = s0;
    while v < hi {
        // ipa:allow(panic-freedom) — plan covers [0, num_vertices): s stays in range while v < hi
        let end = plan[s].1.min(hi);
        let vi = (v - lo) as usize;
        let mut piece = pool.take();
        piece.first_vertex = v;
        piece.degrees.clear();
        // ipa:allow(panic-freedom) — vi + (end - v) <= degrees.len(): end <= hi == lo + degrees.len()
        piece.degrees.extend_from_slice(&batch.degrees[vi..vi + (end - v) as usize]);
        let edge_count: usize = piece.degrees.iter().map(|&d| d as usize).sum();
        piece.edges.clear();
        // ipa:allow(panic-freedom) — batch invariant: edges.len() == sum(degrees) >= edge_at + edge_count
        piece.edges.extend_from_slice(&batch.edges[edge_at..edge_at + edge_count]);
        piece.weights.clear();
        if !batch.weights.is_empty() {
            // ipa:allow(panic-freedom) — weights.len() == edges.len() when weighted
            piece.weights.extend_from_slice(&batch.weights[edge_at..edge_at + edge_count]);
        }
        out.push((s, piece));
        edge_at += edge_count;
        v = end;
        s += 1;
    }
    pool.put(batch);
    out
}

/// Messages grouped by destination partition (first-touch group order; each
/// group in shard-local send order).
pub type DeferredGroups<M> = Vec<(u32, Vec<(VertexId, M)>)>;

/// One shard's owned slice of the partition, plus everything its updates
/// produced. The same struct runs inline (1 thread) and on the pool (N
/// threads), which is what makes the two bit-identical.
pub struct ShardState<P: VertexProgram> {
    first: VertexId,
    end: VertexId,
    data: Vec<P::VertexData>,
    /// Messages leaving this shard, coalesced into per-destination-partition
    /// buffers indexed by partition id (each bucket in shard-local send
    /// order). Sized once in [`ShardState::start`], so the per-message
    /// [`ShardState::defer`] is an O(1) push with no allocation and no
    /// group scan. [`ShardState::finish`] converts the non-empty buckets to
    /// [`DeferredGroups`]; per-destination order — the only order the
    /// replay contract observes — is exactly the old `(shard, send order)`
    /// sequence projected onto that destination.
    deferred: Vec<Vec<(VertexId, P::Message)>>,
    changed: u64,
    sent: u64,
    dynamic_applied: u64,
    iteration: u32,
    num_vertices: u64,
    dynamic: bool,
    /// Uniform partition width, for routing deferred messages to their
    /// destination partition without a barrier-side pass.
    per_partition: u64,
    outbox: Vec<(VertexId, P::Message)>,
}

impl<P: VertexProgram> ShardState<P> {
    fn start(job: ShardStart<P>, program: &P) -> Self {
        let per_partition = job.per_partition.max(1);
        // One bucket per destination partition, allocated here (outside the
        // per-message path) so `defer` never allocates or scans.
        let partitions = job.num_vertices.div_ceil(per_partition) as usize;
        let mut state = ShardState {
            first: job.first,
            end: job.end,
            data: job.data,
            deferred: (0..partitions).map(|_| Vec::new()).collect(),
            changed: 0,
            sent: 0,
            dynamic_applied: 0,
            iteration: job.iteration,
            num_vertices: job.num_vertices,
            dynamic: job.dynamic,
            per_partition,
            outbox: Vec::new(),
        };
        // Replay this shard's pending messages before any update runs.
        // Grouping the global replay stream by shard preserves per-vertex
        // order (each vertex lives in exactly one shard), so the result is
        // identical to the sequential replay.
        for (dst, msg) in job.replay {
            // ipa:allow(panic-freedom) — replay is routed per shard: first <= dst < end
            program.apply_message(dst, &mut state.data[(dst - state.first) as usize], &msg);
        }
        state
    }

    fn process(&mut self, program: &P, batch: &AdjBatch) {
        for (v, neighbors, weights) in batch.vertices_weighted() {
            let mut ctx = UpdateContext {
                iteration: self.iteration,
                num_vertices: self.num_vertices,
                neighbors,
                weights,
                outbox: &mut self.outbox,
                changed: false,
            };
            // ipa:allow(panic-freedom) — the batch was split on shard bounds: first <= v < end
            program.update(v, &mut self.data[(v - self.first) as usize], &mut ctx);
            if ctx.changed {
                self.changed += 1;
            }
            self.sent += self.outbox.len() as u64;
            let mut outbox = std::mem::take(&mut self.outbox);
            for (dst, msg) in outbox.drain(..) {
                if self.dynamic && dst >= self.first && dst < self.end {
                    // Intra-shard dynamic fast path: the destination is
                    // owned by this shard, so the apply races with nothing.
                    program.apply_message(
                        dst,
                        // ipa:allow(panic-freedom) — guarded by first <= dst < end just above
                        &mut self.data[(dst - self.first) as usize],
                        &msg,
                    );
                    self.dynamic_applied += 1;
                } else {
                    self.defer(dst, msg);
                }
            }
            self.outbox = outbox; // hand the drained buffer back for reuse
        }
    }

    /// Append a cross-shard message to its destination partition's bucket.
    /// Bucket membership is a pure function of `dst` and the partition
    /// width, so the grouping is identical for every thread count; the
    /// bucket vector is pre-sized in [`ShardState::start`], making this an
    /// O(1) push with no allocation and no group scan.
    fn defer(&mut self, dst: VertexId, msg: P::Message) {
        // ipa:allow(panic-freedom) — per_partition is clamped to >= 1 in start
        let p = (cast::widen_u32(dst) / self.per_partition) as usize;
        if p >= self.deferred.len() {
            // Unreachable while dst < num_vertices (p <= num_vertices /
            // per_partition rounds into the last bucket); grow rather than
            // panic or misroute if a caller ever violates that.
            self.deferred.resize_with(p + 1, Vec::new);
        }
        if let Some(bucket) = self.deferred.get_mut(p) {
            bucket.push((dst, msg));
        }
    }

    fn finish(self, shard: usize) -> ShardResult<P> {
        ShardResult {
            shard,
            data: self.data,
            deferred: self
                .deferred
                .into_iter()
                .enumerate()
                .filter(|(_, bucket)| !bucket.is_empty())
                .map(|(p, bucket)| (p as u32, bucket))
                .collect(),
            changed: self.changed,
            sent: self.sent,
            dynamic_applied: self.dynamic_applied,
        }
    }
}

/// Everything a shard needs to begin an iteration over its vertex range.
pub struct ShardStart<P: VertexProgram> {
    pub shard: usize,
    pub first: VertexId,
    pub end: VertexId,
    pub data: Vec<P::VertexData>,
    /// This shard's slice of the partition's replay stream, in send order.
    pub replay: Vec<(VertexId, P::Message)>,
    pub iteration: u32,
    pub num_vertices: u64,
    pub dynamic: bool,
    /// Uniform partition width of the engine's partition set.
    pub per_partition: u64,
}

/// What a shard hands back at the partition barrier.
pub struct ShardResult<P: VertexProgram> {
    pub shard: usize,
    pub data: Vec<P::VertexData>,
    /// Cross-shard messages grouped by destination partition (first-touch
    /// group order; each group in shard-local send order).
    pub deferred: DeferredGroups<P::Message>,
    pub changed: u64,
    pub sent: u64,
    pub dynamic_applied: u64,
}

enum Job<P: VertexProgram> {
    Start(Box<ShardStart<P>>),
    Piece { shard: usize, batch: AdjBatch },
    Finish { shard: usize },
}

/// Default job-queue depth per worker when no [`queue_cap`] override is set.
///
/// [`queue_cap`]: graphz_types::EngineOptions::queue_cap
pub const DEFAULT_JOB_QUEUE_CAP: usize = 8;

fn worker_died() -> GraphError {
    GraphError::Io(std::io::Error::other("worker thread panicked"))
}

/// A persistent pool of Worker threads. Spawned once per [`Engine::run`]
/// and reused for every partition of every iteration — no per-batch or
/// per-partition thread spawns.
///
/// [`Engine::run`]: crate::Engine::run
pub struct WorkerPool<P: VertexProgram> {
    txs: Vec<Sender<Job<P>>>,
    results: Receiver<ShardResult<P>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<P: VertexProgram> WorkerPool<P> {
    /// `max_shards` bounds how many `Finish` results can be outstanding at
    /// once (one partition's worth), sizing the result queue so workers
    /// never block on it. `queue_cap` (when set) overrides every queue
    /// depth — including down to capacity 1, which [`Executor::finish`]
    /// is written to tolerate.
    pub fn spawn(
        threads: usize,
        max_shards: usize,
        queue_cap: Option<usize>,
        program: Arc<P>,
        pool: Arc<BatchPool>,
    ) -> Result<Self> {
        let threads = threads.max(1);
        let results_cap = queue_cap.unwrap_or(max_shards.max(1)).max(1);
        let job_cap = queue_cap.unwrap_or(DEFAULT_JOB_QUEUE_CAP).max(1);
        let (result_tx, results) = bounded::<ShardResult<P>>(results_cap);
        let mut txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = bounded::<Job<P>>(job_cap);
            let program = Arc::clone(&program);
            let batch_pool = Arc::clone(&pool);
            let result_tx = result_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("graphz-worker-{w}"))
                .spawn(move || {
                    let mut states: HashMap<usize, ShardState<P>> = HashMap::new();
                    for job in rx {
                        match job {
                            Job::Start(start) => {
                                let shard = start.shard;
                                states.insert(shard, ShardState::start(*start, &program));
                            }
                            Job::Piece { shard, batch } => {
                                // A piece for an un-started shard is an
                                // engine protocol bug; exiting closes this
                                // worker's queues, which the engine observes
                                // as a typed send error — no panic.
                                let Some(state) = states.get_mut(&shard) else { return };
                                state.process(&program, &batch);
                                batch_pool.put(batch);
                            }
                            Job::Finish { shard } => {
                                let Some(state) = states.remove(&shard) else { return };
                                if result_tx.send(state.finish(shard)).is_err() {
                                    return; // engine hung up
                                }
                            }
                        }
                    }
                })
                .map_err(std::io::Error::other)?;
            txs.push(tx);
            handles.push(handle);
        }
        Ok(WorkerPool { txs, results, handles })
    }

    fn tx(&self, shard: usize) -> &Sender<Job<P>> {
        // ipa:allow(panic-freedom) — spawn() rejects zero workers: nonzero divisor, in-range index
        &self.txs[shard % self.txs.len()]
    }
}

impl<P: VertexProgram> Drop for WorkerPool<P> {
    fn drop(&mut self) {
        self.txs.clear(); // close every job queue; workers drain and exit
        for h in self.handles.drain(..) {
            // A barrier abandoned mid-stream (an emit error) can leave
            // results published — and workers blocked publishing more into a
            // full results queue. Keep draining while waiting so every
            // worker can finish its queue and observe the closed channel.
            while !h.is_finished() {
                while self.results.try_recv().is_ok() {}
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }
}

/// Executes one partition's shard schedule: inline on the engine thread, or
/// fanned out over the [`WorkerPool`]. Both paths drive the identical
/// [`ShardState`] logic, so their results are bit-for-bit the same.
pub enum Executor<P: VertexProgram> {
    Inline { program: Arc<P>, pool: Arc<BatchPool>, states: Vec<Option<ShardState<P>>> },
    Pooled(WorkerPool<P>),
}

impl<P: VertexProgram> Executor<P> {
    pub fn new(
        threads: usize,
        max_shards: usize,
        queue_cap: Option<usize>,
        program: Arc<P>,
        pool: Arc<BatchPool>,
    ) -> Result<Self> {
        if threads > 1 {
            Ok(Executor::Pooled(WorkerPool::spawn(threads, max_shards, queue_cap, program, pool)?))
        } else {
            Ok(Executor::Inline { program, pool, states: Vec::new() })
        }
    }

    /// Hand a shard its vertex data and replay stream.
    pub fn start(&mut self, job: ShardStart<P>) -> Result<()> {
        match self {
            Executor::Inline { program, states, .. } => {
                let shard = job.shard;
                if states.len() <= shard {
                    states.resize_with(shard + 1, || None);
                }
                // ipa:allow(panic-freedom) — resized to shard + 1 just above
                states[shard] = Some(ShardState::start(job, program));
                Ok(())
            }
            Executor::Pooled(pool) => {
                pool.tx(job.shard).send(Job::Start(Box::new(job))).map_err(|_| worker_died())
            }
        }
    }

    /// Feed one (already shard-routed) batch to its shard.
    pub fn feed(&mut self, shard: usize, batch: AdjBatch) -> Result<()> {
        match self {
            Executor::Inline { program, pool, states } => {
                let state = states.get_mut(shard).and_then(Option::as_mut).ok_or_else(|| {
                    GraphError::InvalidConfig(format!("batch routed to un-started shard {shard}"))
                })?;
                state.process(program, &batch);
                pool.put(batch);
                Ok(())
            }
            Executor::Pooled(pool) => {
                pool.tx(shard).send(Job::Piece { shard, batch }).map_err(|_| worker_died())
            }
        }
    }

    /// Barrier: collect every shard's result, returned sorted by shard.
    /// Thin wrapper over [`finish_with`](Self::finish_with) for callers that
    /// want the whole partition at once.
    pub fn finish(&mut self, shards: usize) -> Result<Vec<ShardResult<P>>> {
        let mut out: Vec<ShardResult<P>> = Vec::with_capacity(shards);
        self.finish_with(shards, |r| {
            out.push(r);
            Ok(())
        })?;
        Ok(out)
    }

    /// Streaming barrier: invoke `emit` on every shard's result in strict
    /// shard order, releasing each result *as soon as its shard's order is
    /// settled* — i.e. the moment shards `0..=s` have all reported — instead
    /// of waiting for the whole partition and sorting. The emission order is
    /// a constant of the plan, so the merge stays bit-identical to the old
    /// collect-then-sort barrier while the engine's merge work (slab
    /// reassembly, message enqueue) overlaps still-running shards.
    ///
    /// Finish jobs are dispatched with `try_send`, draining any already-
    /// available results whenever a job queue is full. A blocking send here
    /// would deadlock at small queue capacities: with capacity-1 queues the
    /// engine could wait to enqueue `Finish(s₂)` for a worker that is itself
    /// blocked publishing `result(s₀)` into the full results queue — a
    /// two-party wait cycle the model checker's wait-for graph catches, and
    /// this loop structurally avoids.
    pub fn finish_with<F>(&mut self, shards: usize, mut emit: F) -> Result<()>
    where
        F: FnMut(ShardResult<P>) -> Result<()>,
    {
        match self {
            Executor::Inline { states, .. } => {
                for (shard, slot) in states.iter_mut().enumerate().take(shards) {
                    let state = slot.take().ok_or_else(|| {
                        GraphError::InvalidConfig(format!("finish for un-started shard {shard}"))
                    })?;
                    emit(state.finish(shard))?;
                }
            }
            Executor::Pooled(pool) => {
                // Out-of-order arrivals park in their shard's slot; the
                // settled prefix is emitted eagerly.
                let mut slots: Vec<Option<ShardResult<P>>> = Vec::new();
                slots.resize_with(shards, || None);
                let mut next_emit = 0usize;
                let mut received = 0usize;
                let mut dispatched = 0usize;
                while dispatched < shards {
                    match pool.tx(dispatched).try_send(Job::Finish { shard: dispatched }) {
                        Ok(()) => dispatched += 1,
                        Err(TrySendError::Full(_)) => {
                            // Unblock workers stuck publishing results, then
                            // retry the same shard.
                            while let Ok(r) = pool.results.try_recv() {
                                received += 1;
                                let s = r.shard;
                                // ipa:allow(panic-freedom) — workers echo job.shard < shards == slots.len()
                                slots[s] = Some(r);
                            }
                            while next_emit < shards {
                                // ipa:allow(panic-freedom) — next_emit < shards == slots.len()
                                match slots[next_emit].take() {
                                    Some(r) => {
                                        emit(r)?;
                                        next_emit += 1;
                                    }
                                    None => break,
                                }
                            }
                            std::thread::yield_now();
                        }
                        Err(TrySendError::Disconnected(_)) => return Err(worker_died()),
                    }
                }
                while received < shards {
                    match pool.results.recv() {
                        Ok(r) => {
                            received += 1;
                            let s = r.shard;
                            // ipa:allow(panic-freedom) — workers echo job.shard < shards == slots.len()
                            slots[s] = Some(r);
                        }
                        Err(_) => return Err(worker_died()),
                    }
                    while next_emit < shards {
                        // ipa:allow(panic-freedom) — next_emit < shards == slots.len()
                        match slots[next_emit].take() {
                            Some(r) => {
                                emit(r)?;
                                next_emit += 1;
                            }
                            None => break,
                        }
                    }
                }
                debug_assert_eq!(next_emit, shards, "all results received implies all emitted");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_thread_independent_and_covers_range() {
        let plan = plan_shards(100, 300, 8);
        assert!(plan.len() <= 8);
        assert_eq!(plan.first().unwrap().0, 100);
        assert_eq!(plan.last().unwrap().1, 300);
        for w in plan.windows(2) {
            assert_eq!(w[0].1, w[1].0, "shards must tile the range");
        }
        // Small partitions collapse to one shard (pre-sharding behaviour).
        assert_eq!(plan_shards(0, 10, 8), vec![(0, 10)]);
        assert_eq!(plan_shards(5, 5, 8), vec![]);
        // Max shards of 1 is always a single range.
        assert_eq!(plan_shards(0, 1000, 1), vec![(0, 1000)]);
    }

    #[test]
    fn shard_of_finds_containing_range() {
        let plan = plan_shards(0, 64, 4);
        for (i, &(lo, hi)) in plan.iter().enumerate() {
            assert_eq!(shard_of(&plan, lo), i);
            assert_eq!(shard_of(&plan, hi - 1), i);
        }
    }

    #[test]
    fn split_batch_moves_single_shard_batches_and_slices_straddlers() {
        let pool = BatchPool::new(4);
        let plan = vec![(0u32, 32u32), (32, 64)];
        // Entirely inside shard 0: moved, not copied.
        let whole = AdjBatch {
            first_vertex: 4,
            degrees: vec![1, 2],
            edges: vec![9, 8, 7],
            weights: vec![],
        };
        let parts = split_batch(whole.clone(), &plan, &pool);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1, whole);
        // Straddles the boundary at 32.
        let straddler = AdjBatch {
            first_vertex: 30,
            degrees: vec![1, 2, 3, 1],
            edges: vec![0, 1, 2, 3, 4, 5, 6],
            weights: (0..7).map(|i| i as f32).collect(),
        };
        let parts = split_batch(straddler.clone(), &plan, &pool);
        assert_eq!(parts.len(), 2);
        let (s_a, a) = &parts[0];
        let (s_b, b) = &parts[1];
        assert_eq!((*s_a, a.first_vertex, a.degrees.clone()), (0, 30, vec![1, 2]));
        assert_eq!(a.edges, vec![0, 1, 2]);
        assert_eq!(a.weights, vec![0.0, 1.0, 2.0]);
        assert_eq!((*s_b, b.first_vertex, b.degrees.clone()), (1, 32, vec![3, 1]));
        assert_eq!(b.edges, vec![3, 4, 5, 6]);
        assert_eq!(b.weights, vec![3.0, 4.0, 5.0, 6.0]);
        // The sliced straddler was recycled into the pool, not dropped.
        assert_eq!(pool.take(), straddler);
    }

    #[test]
    fn split_batch_reuses_pooled_buffers_for_straddler_pieces() {
        let pool = BatchPool::new(8);
        let plan = vec![(0u32, 2u32), (2, 4)];
        let straddler = AdjBatch {
            first_vertex: 0,
            degrees: vec![1, 1, 1, 1],
            edges: vec![10, 11, 12, 13],
            weights: vec![],
        };
        // First split mints fresh pieces (pool empty) and recycles the
        // original; from then on pieces come from the pool.
        let first = split_batch(straddler.clone(), &plan, &pool);
        assert_eq!(first.len(), 2);
        for (_, piece) in first {
            pool.put(piece);
        }
        let before = pool.counters();
        let again = split_batch(straddler, &plan, &pool);
        assert_eq!(again.len(), 2);
        let after = pool.counters();
        assert_eq!(after.fresh, before.fresh, "steady-state split must not allocate");
        assert_eq!(after.reused, before.reused + 2);
    }
}
