//! Checkpoint generation discovery and verification, factored out of the
//! engine so it can be shared by every consumer of a checkpoint root:
//! [`crate::engine::Engine::resume_latest`] (restore-into-engine), the
//! serving layer's `Snapshot` (pin-and-read without an engine), and any
//! tooling that needs to enumerate what generations exist.
//!
//! A checkpoint root holds `gen-NNNNNNNN/` directories (one per completed
//! generation, named by the iteration the run would continue from), each
//! written atomically via a staged rename and described by a `manifest.txt`
//! recording the payload length and CRC32 of every framed file. The
//! functions here only ever *read*: listing is one `read_dir`, and
//! verification replays each file's frame against the manifest entry
//! without touching the files' contents on disk — which is what makes a
//! pinned generation safe to serve from while a writer lays down newer
//! ones next to it (DESIGN.md §6l).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_io::IoStats;
use graphz_storage::meta::MetaFile;
use graphz_types::{GraphError, IoCtx, Result};

/// On-disk checkpoint layout version (`manifest.txt` + framed files).
pub const CHECKPOINT_VERSION: u64 = 2;

/// Parse a `gen-NNNNNNNN` checkpoint directory name. Anything else — staging
/// leftovers (`.tmp`), displaced old generations (`.old`), stray files —
/// returns `None`.
pub fn parse_generation_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("gen-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Path of generation `n` under a checkpoint root.
pub fn generation_path(root: &Path, n: u32) -> PathBuf {
    root.join(format!("gen-{n:08}"))
}

/// One discovered generation directory (not yet verified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// The `next_iteration` the directory name encodes.
    pub number: u32,
    pub path: PathBuf,
}

/// Enumerate the generation directories under `root`, newest first. A
/// missing root is an empty listing (a run that never checkpointed), not an
/// error; names that are not `gen-NNNNNNNN` (staging leftovers, displaced
/// `.old` trees) are skipped. No manifest is opened — pair with
/// [`load_manifest`] / [`GenerationManifest::verify_files`] to find the
/// newest *usable* one.
pub fn list_generations(root: &Path) -> Result<Vec<Generation>> {
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(GraphError::Io(e)).ctx("read-dir", root),
    };
    let mut gens: Vec<Generation> = Vec::new();
    for entry in entries {
        let entry = entry.ctx("read-dir", root)?;
        let name = entry.file_name();
        let Some(number) = parse_generation_name(&name.to_string_lossy()) else { continue };
        gens.push(Generation { number, path: entry.path() });
    }
    gens.sort_by_key(|g| std::cmp::Reverse(g.number));
    Ok(gens)
}

/// A parsed (and structurally validated) checkpoint manifest: the layout
/// version and format markers checked, the file table decoded, and
/// `vertices.bin` confirmed present. Contents are *not* yet checked against
/// the recorded checksums — that is [`verify_files`].
///
/// [`verify_files`]: GenerationManifest::verify_files
#[derive(Debug)]
pub struct GenerationManifest {
    dir: PathBuf,
    meta: MetaFile,
    /// `(relative path, payload length, payload crc32)` per manifest entry.
    files: Vec<(String, u64, u32)>,
}

/// Parse a `file:<rel>` manifest value of the form `<len>,<crc-hex>`.
fn parse_manifest_entry(rel: &str, value: &str) -> Result<(u64, u32)> {
    value
        .split_once(',')
        .and_then(|(len, crc)| Some((len.parse().ok()?, u32::from_str_radix(crc, 16).ok()?)))
        .ok_or_else(|| {
            GraphError::Corrupt(format!("manifest entry for `{rel}` is malformed: `{value}`"))
        })
}

/// Load and structurally validate the manifest of one generation directory.
/// A missing manifest is [`GraphError::NotFound`] (torn rename / not a
/// checkpoint); a wrong format marker, unsupported version, or missing
/// `vertices.bin` entry is [`GraphError::Corrupt`].
pub fn load_manifest(dir: &Path) -> Result<GenerationManifest> {
    let manifest_path = dir.join("manifest.txt");
    if !manifest_path.is_file() {
        return Err(GraphError::NotFound(format!(
            "no checkpoint manifest at {}",
            manifest_path.display()
        )));
    }
    let mf = MetaFile::load(&manifest_path)?;
    if mf.get("format") != Some("graphz-checkpoint") {
        return Err(GraphError::Corrupt(format!("{} is not a GraphZ checkpoint", dir.display())));
    }
    let version = mf.get_u64("version")?;
    if version != CHECKPOINT_VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let mut files: Vec<(String, u64, u32)> = Vec::new();
    for (key, value) in mf.entries() {
        let Some(rel) = key.strip_prefix("file:") else { continue };
        let (len, crc) = parse_manifest_entry(rel, value)?;
        files.push((rel.to_string(), len, crc));
    }
    if !files.iter().any(|(rel, _, _)| rel == "vertices.bin") {
        return Err(GraphError::Corrupt(format!(
            "checkpoint manifest at {} lists no vertices.bin",
            dir.display()
        )));
    }
    Ok(GenerationManifest { dir: dir.to_path_buf(), meta: mf, files })
}

impl GenerationManifest {
    /// The generation directory this manifest describes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The iteration a resumed run continues from.
    pub fn next_iteration(&self) -> Result<u32> {
        Ok(self.meta.get_u64("next_iteration")? as u32)
    }

    /// The partition count the checkpoint was written under.
    pub fn partitions(&self) -> Result<u32> {
        Ok(self.meta.get_u64("partitions")? as u32)
    }

    /// Raw access to the manifest key/value table (engine-specific fields
    /// such as message counters).
    pub fn meta(&self) -> &MetaFile {
        &self.meta
    }

    /// `(relative path, payload length, payload crc32)` per manifest entry.
    pub fn files(&self) -> &[(String, u64, u32)] {
        &self.files
    }

    /// Verify every manifest-listed file against its recorded length and
    /// CRC32 by replaying the frames. Nothing is modified; damage surfaces
    /// as typed [`GraphError::Corrupt`] so a caller scanning newest-first
    /// can skip to the next older generation.
    pub fn verify_files(&self, stats: &Arc<IoStats>) -> Result<()> {
        for (rel, want_len, want_crc) in &self.files {
            let path = self.dir.join(rel);
            let reader =
                graphz_io::tracked::reader(&path, Arc::clone(stats)).map_err(|e| match e.kind() {
                    std::io::ErrorKind::NotFound => GraphError::Corrupt(format!(
                        "checkpoint file {} listed in manifest is missing",
                        path.display()
                    )),
                    _ => GraphError::Io(e),
                })?;
            let (len, crc) = graphz_io::framed::verify_stream(reader)
                .map_err(GraphError::from)
                .ctx("verify", &path)?;
            if len != *want_len || crc != *want_crc {
                return Err(GraphError::Corrupt(format!(
                    "checkpoint file {} does not match its manifest entry: \
                     len {len} vs {want_len}, crc {crc:08x} vs {want_crc:08x}",
                    path.display()
                )));
            }
        }
        Ok(())
    }

    /// Unframe one manifest-listed file fully into memory (the serving
    /// layer's way to read `vertices.bin` from a pinned generation without
    /// an engine scratch directory). The frame's own trailer checksum is
    /// verified by the reader as a side effect of draining it.
    pub fn read_file(&self, rel: &str, stats: &Arc<IoStats>) -> Result<Vec<u8>> {
        if !self.files.iter().any(|(r, _, _)| r == rel) {
            return Err(GraphError::NotFound(format!(
                "checkpoint manifest at {} lists no `{rel}`",
                self.dir.display()
            )));
        }
        let path = self.dir.join(rel);
        let reader = graphz_io::tracked::reader(&path, Arc::clone(stats)).ctx("read", &path)?;
        let mut framed =
            graphz_io::FramedReader::new(reader).map_err(GraphError::from).ctx("read", &path)?;
        let mut out = Vec::new();
        std::io::Read::read_to_end(&mut framed, &mut out)
            .map_err(GraphError::from)
            .ctx("read", &path)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    #[test]
    fn parses_generation_names_strictly() {
        assert_eq!(parse_generation_name("gen-00000012"), Some(12));
        assert_eq!(parse_generation_name("gen-0"), Some(0));
        assert_eq!(parse_generation_name("gen-"), None);
        assert_eq!(parse_generation_name("gen-12.tmp"), None);
        assert_eq!(parse_generation_name("gen-12.old"), None);
        assert_eq!(parse_generation_name("snapshot"), None);
    }

    #[test]
    fn generation_path_round_trips_through_the_parser() {
        let p = generation_path(Path::new("/ck"), 7);
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(parse_generation_name(&name), Some(7));
    }

    #[test]
    fn listing_is_newest_first_and_skips_leftovers() {
        let dir = ScratchDir::new("generations-list").unwrap();
        for name in ["gen-00000002", "gen-00000010", "gen-00000001", "gen-3.tmp", "junk"] {
            std::fs::create_dir(dir.path().join(name)).unwrap();
        }
        std::fs::write(dir.path().join("stray.txt"), b"x").unwrap();
        let gens = list_generations(dir.path()).unwrap();
        let numbers: Vec<u32> = gens.iter().map(|g| g.number).collect();
        assert_eq!(numbers, vec![10, 2, 1]);
    }

    #[test]
    fn missing_root_lists_empty() {
        let dir = ScratchDir::new("generations-missing").unwrap();
        let gens = list_generations(&dir.path().join("never-created")).unwrap();
        assert!(gens.is_empty());
    }

    #[test]
    fn manifest_of_a_non_checkpoint_is_typed() {
        let dir = ScratchDir::new("generations-nonckpt").unwrap();
        // No manifest at all: NotFound (torn rename / empty dir).
        assert!(matches!(load_manifest(dir.path()), Err(GraphError::NotFound(_))));
        // A manifest with the wrong format marker: Corrupt.
        let mut mf = MetaFile::new();
        mf.set("format", "something-else");
        mf.save(&dir.path().join("manifest.txt")).unwrap();
        assert!(matches!(load_manifest(dir.path()), Err(GraphError::Corrupt(_))));
    }
}
