//! The GraphZ engine: partition-at-a-time asynchronous execution with
//! ordered dynamic messages (paper §IV-B, §V).

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphz_io::{
    Crc32, FaultState, FramedReader, FramedWriter, GatedWriter, IoSnapshot, IoStats,
    PrefetchSnapshot, RecordWriter, RetryPolicy, ScratchDir, StagedDir, TrackedFile,
};
use graphz_storage::{PartitionSet, Partitioner};
use graphz_types::{
    EngineOptions, FixedCodec, GraphError, IoCtx, MemoryBudget, Result, VertexId,
};

/// On-disk checkpoint layout version (`manifest.txt` + framed files) —
/// defined once in [`crate::generations`], shared with every non-engine
/// consumer of a checkpoint root (the serving layer's snapshot pinning).
use crate::generations::{self, CHECKPOINT_VERSION};

/// Copy `src` into `dst` wrapped in a checksummed frame, returning the
/// payload length and CRC32 recorded in the checkpoint manifest. Writes pass
/// through the optional fault gate *unbuffered* so chaos tests see a
/// deterministic op sequence.
fn copy_into_frame(
    src: &Path,
    dst: &Path,
    stats: &Arc<IoStats>,
    faults: &Option<Arc<FaultState>>,
    retry: RetryPolicy,
) -> Result<(u64, u32)> {
    let mut reader = graphz_io::tracked::reader(src, Arc::clone(stats)).ctx("read", src)?;
    let out = TrackedFile::create(dst, Arc::clone(stats)).ctx("create", dst)?;
    let mut writer =
        FramedWriter::new(GatedWriter::new(out, faults.clone(), retry)).ctx("write", dst)?;
    let mut crc = Crc32::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut buf).ctx("read", src)?;
        if n == 0 {
            break;
        }
        crc.update(&buf[..n]);
        writer.write_all(&buf[..n]).ctx("write", dst)?;
    }
    let len = writer.payload_len();
    writer.finish().ctx("write", dst)?;
    Ok((len, crc.finish()))
}

/// Unframe checkpoint file `src` into engine scratch file `dst`.
fn copy_from_frame(src: &Path, dst: &Path, stats: &Arc<IoStats>) -> Result<()> {
    let reader = graphz_io::tracked::reader(src, Arc::clone(stats)).ctx("read", src)?;
    let mut framed = FramedReader::new(reader).map_err(GraphError::from).ctx("read", src)?;
    let mut out = TrackedFile::create(dst, Arc::clone(stats)).ctx("create", dst)?;
    std::io::copy(&mut framed, &mut out).map_err(GraphError::from).ctx("restore", src)?;
    Ok(())
}

use crate::msgmanager::MsgManager;
use crate::prefetch::{Prefetched, Prefetcher};
use crate::program::VertexProgram;
use crate::sio;
use crate::store::GraphStore;
use crate::worker::{self, Executor, ShardStart};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory the engine may use for resident vertex state and message
    /// buffers — the "RAM" knob of the paper's evaluation.
    pub budget: MemoryBudget,
    /// Ablation switches (DOS / dynamic messages / pipelining), Fig. 7.
    pub options: EngineOptions,
    /// Edges per Sio block.
    pub batch_edges: usize,
    /// Where spill files live; defaults to the system temp dir.
    pub scratch_base: Option<PathBuf>,
    /// Root directory for periodic checkpoint generations (`gen-NNNNNNNN/`
    /// subdirectories). `None` disables mid-run checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint after every `n` completed iterations (0 = never). Takes
    /// effect only when `checkpoint_dir` is set.
    pub checkpoint_every: u32,
    /// Chaos-testing hook: fault gates applied to checkpoint IO. Production
    /// code leaves this `None`.
    pub checkpoint_faults: Option<Arc<graphz_io::FaultState>>,
    /// Retry policy for transient checkpoint IO failures.
    pub checkpoint_retry: graphz_io::RetryPolicy,
}

impl EngineConfig {
    pub fn new(budget: MemoryBudget) -> Self {
        EngineConfig {
            budget,
            options: EngineOptions::default(),
            batch_edges: sio::DEFAULT_BATCH_EDGES,
            scratch_base: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            checkpoint_faults: None,
            checkpoint_retry: graphz_io::RetryPolicy::default(),
        }
    }

    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    pub fn with_batch_edges(mut self, batch_edges: usize) -> Self {
        assert!(batch_edges > 0);
        self.batch_edges = batch_edges;
        self
    }

    /// Write a checkpoint generation under `dir` after every `n` completed
    /// iterations.
    pub fn checkpoint_every(mut self, dir: impl Into<PathBuf>, n: u32) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = n;
        self
    }

    /// Route checkpoint IO through a fault gate (chaos tests only).
    pub fn with_checkpoint_faults(
        mut self,
        faults: Arc<graphz_io::FaultState>,
        retry: graphz_io::RetryPolicy,
    ) -> Self {
        self.checkpoint_faults = Some(faults);
        self.checkpoint_retry = retry;
        self
    }
}

/// Wall-clock time spent in each pipeline stage, as observed from the
/// engine thread (with `pipeline_threads > 1` or prefetch, work overlaps —
/// these measure where the *engine* waited, which is exactly what shows a
/// prefetch win: `load` shrinks).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    /// Loading the partition index and vertex slab (or waiting for the
    /// prefetcher to deliver them).
    pub load: Duration,
    /// Draining and routing pending messages to shards.
    pub replay: Duration,
    /// Streaming adjacency batches through the Worker stage and merging the
    /// barrier results.
    pub compute: Duration,
    /// Writing the partition's vertex slab back to disk.
    pub flush: Duration,
}

impl StageTimes {
    pub fn total(&self) -> Duration {
        self.load + self.replay + self.compute + self.flush
    }
}

impl std::ops::Add for StageTimes {
    type Output = StageTimes;

    fn add(self, rhs: StageTimes) -> StageTimes {
        StageTimes {
            load: self.load + rhs.load,
            replay: self.replay + rhs.replay,
            compute: self.compute + rhs.compute,
            flush: self.flush + rhs.flush,
        }
    }
}

/// Per-iteration progress record (convergence analysis, debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationStats {
    /// 0-based iteration number.
    pub iteration: u32,
    /// Vertices that [`UpdateContext::mark_changed`]-ed.
    ///
    /// [`UpdateContext::mark_changed`]: crate::UpdateContext::mark_changed
    pub changed: u64,
    /// Messages emitted by `update()` calls this iteration.
    pub messages_sent: u64,
    /// Messages applied via the dynamic fast path this iteration.
    pub dynamic_applied: u64,
    /// Engine-thread wall time per pipeline stage this iteration.
    pub stages: StageTimes,
    /// Cumulative batch-pool counters at the end of this iteration. A
    /// steady-state run shows `fresh` flat after the first iteration: every
    /// adjacency batch is a recycled buffer.
    pub pool: sio::PoolCounters,
}

/// What one [`Engine::run`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Iterations executed (including the final quiet one).
    pub iterations: u32,
    /// Whether the run stopped because an iteration changed nothing.
    pub converged: bool,
    /// Number of partitions the vertex space was split into.
    pub partitions: u32,
    /// Messages emitted by `update()` calls.
    pub messages_sent: u64,
    /// Messages applied immediately because the destination was resident
    /// (the dynamic-message fast path).
    pub dynamic_applied: u64,
    /// Messages buffered for non-resident partitions.
    pub buffered: u64,
    /// Buffered messages that overflowed to spill files.
    pub spilled: u64,
    /// Buffered messages replayed at partition loads.
    pub replayed: u64,
    /// IO charged to this run (engine traffic only).
    pub io: IoSnapshot,
    /// Prefetch effectiveness (kept separate from `io` because the
    /// hit/stall split depends on thread timing).
    pub prefetch: PrefetchSnapshot,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Engine-thread wall time per pipeline stage, summed over the run.
    pub stages: StageTimes,
    /// Batch-pool allocation/reuse counters over the whole run.
    pub pool: sio::PoolCounters,
    /// The execution plan the run resolved to (adaptive degrade, prefetch
    /// gating) — a pure function of graph shape and options.
    pub plan: graphz_types::ExecutionPlan,
    /// Per-iteration progress (one entry per executed iteration).
    pub per_iteration: Vec<IterationStats>,
}

/// The GraphZ engine, generic over the vertex program.
pub struct Engine<P: VertexProgram> {
    store: Arc<dyn GraphStore>,
    program: Arc<P>,
    config: EngineConfig,
    stats: Arc<IoStats>,
    scratch: ScratchDir,
    partitions: PartitionSet,
    vertices_path: PathBuf,
    msgs: MsgManager<P::Message>,
    initialized: bool,
    /// Global iteration counter: persists across `run` calls (and through
    /// checkpoint/restore) so iteration-dependent programs stay correct when
    /// a long computation is resumed.
    next_iteration: u32,
}

impl<P: VertexProgram> Engine<P> {
    pub fn new(
        store: Box<dyn GraphStore>,
        program: P,
        config: EngineConfig,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        let scratch = match &config.scratch_base {
            Some(base) => ScratchDir::new_in(base, "graphz-engine").ctx("scratch", base)?,
            None => ScratchDir::new("graphz-engine")?,
        };
        let partitions = Partitioner::new(config.budget)
            .layout(store.num_vertices(), P::VertexData::SIZE);
        let mut msgs = MsgManager::new(
            scratch.file("msgs"),
            partitions.num_partitions(),
            config.budget.bytes() / 4,
            Arc::clone(&stats),
        )?;
        if config.options.background_spill {
            msgs = msgs.with_background_writer(config.options.queue_cap)?;
        }
        let vertices_path = scratch.file("vertices.bin");
        Ok(Engine {
            store: Arc::from(store),
            program: Arc::new(program),
            config,
            stats,
            scratch,
            partitions,
            vertices_path,
            msgs,
            initialized: false,
            next_iteration: 0,
        })
    }

    pub fn store(&self) -> &dyn GraphStore {
        self.store.as_ref()
    }

    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    pub fn num_partitions(&self) -> u32 {
        self.partitions.num_partitions()
    }

    pub fn scratch_dir(&self) -> &ScratchDir {
        &self.scratch
    }

    /// Translate an original vertex id into the engine's storage id (needed
    /// for algorithm parameters like a BFS source).
    pub fn to_storage_id(&self, original: VertexId) -> Result<VertexId> {
        self.store.to_storage_id(original, &self.stats)
    }

    /// Write the initial vertex array (called automatically by `run`).
    pub fn initialize(&mut self) -> Result<()> {
        let mut w = RecordWriter::<P::VertexData>::create(&self.vertices_path, Arc::clone(&self.stats))
            .ctx("create", &self.vertices_path)?;
        for (_, a, b) in self.partitions.iter() {
            let (_, degrees) = self.store.partition_index(a, b, &self.stats)?;
            for (i, &d) in degrees.iter().enumerate() {
                w.push(&self.program.init(a + i as VertexId, d))?;
            }
        }
        w.finish()?;
        self.initialized = true;
        self.next_iteration = 0;
        Ok(())
    }

    /// Run up to `max_iterations` *further* iterations, stopping early after
    /// any iteration in which no vertex
    /// [`UpdateContext::mark_changed`]-ed. Consecutive `run` calls continue
    /// the global iteration count, so `run(3)` followed by `run(7)` is
    /// equivalent to one `run(10)` (checkpointable long computations rely on
    /// this).
    pub fn run(&mut self, max_iterations: u32) -> Result<RunSummary> {
        let start = Instant::now();
        let io_before = self.stats.snapshot();
        let prefetch_before = self.stats.prefetch_snapshot();
        if !self.initialized {
            self.initialize()?;
        }
        let num_vertices = self.store.num_vertices();
        let mut iterations = 0;
        let mut converged = false;
        let mut messages_sent: u64 = 0;
        let mut dynamic_applied: u64 = 0;
        let mut per_iteration: Vec<IterationStats> = Vec::new();
        let mut stages_total = StageTimes::default();
        let mut pool_counters = sio::PoolCounters::default();

        // Resolve the execution plan once per run: a pure function of the
        // graph's shape and the options (never thread availability or
        // timing), so the logical schedule — and with it the result bits —
        // is a constant of the configuration.
        let plan_cfg = self
            .config
            .options
            .plan_execution(self.store.num_edges(), self.partitions.num_partitions());

        if num_vertices > 0 {
            let mut vfile = TrackedFile::open_rw(&self.vertices_path, Arc::clone(&self.stats))
                .ctx("open-rw", &self.vertices_path)?;
            let mut slab_bytes: Vec<u8> = Vec::new();
            let dynamic = self.config.options.dynamic_messages;
            let max_shards = plan_cfg.worker_shards;
            let pipeline_threads = plan_cfg.pipeline_threads;
            let per_partition = self.partitions.per_partition();

            // The Worker stage: a persistent pool when pipelined, the same
            // sharded schedule run inline otherwise. Lives for the whole
            // run — no per-batch or per-partition spawns.
            //
            // The batch pool persists across partitions *and* iterations,
            // pre-warmed to the pipeline's maximum in-flight batch count
            // (producer hand + Sio queue + straddler slices in the engine's
            // hand + every worker queue slot + every worker's hand): after
            // the buffers grow to their working size in iteration 1, no
            // take() ever mints a fresh batch again.
            let queue_cap = self.config.options.queue_cap;
            let sio_cap = queue_cap.unwrap_or(sio::DEFAULT_SIO_QUEUE_CAP).max(1);
            let job_cap = queue_cap.unwrap_or(worker::DEFAULT_JOB_QUEUE_CAP).max(1);
            let pool_cap = 2 + sio_cap + max_shards + pipeline_threads * (job_cap + 1);
            let batch_pool = sio::BatchPool::prewarmed(pool_cap);
            let mut executor: Executor<P> = Executor::new(
                pipeline_threads,
                max_shards,
                queue_cap,
                Arc::clone(&self.program),
                Arc::clone(&batch_pool),
            )?;

            // Double-buffered partition prefetcher; the plan enables it only
            // when enough partitions exist to hide a load behind compute.
            let mut prefetcher: Option<Prefetcher<P>> = if plan_cfg.prefetch {
                Some(Prefetcher::spawn(
                    Arc::clone(&self.store),
                    &self.vertices_path,
                    Arc::clone(&self.stats),
                )?)
            } else {
                None
            };

            // §VI-E future work, opt-in: when the whole graph is a single
            // partition, keep the vertex array resident across iterations
            // instead of spilling and reloading it every pass.
            let fast_path = self.config.options.in_memory_fast_path
                && self.partitions.num_partitions() == 1;
            let mut resident: Option<Vec<P::VertexData>> = if fast_path {
                slab_bytes.resize(num_vertices as usize * P::VertexData::SIZE, 0);
                vfile.seek(SeekFrom::Start(0))?;
                vfile.read_exact(&mut slab_bytes)?;
                Some(graphz_types::codec::decode_slice(&slab_bytes))
            } else {
                None
            };

            for step in 0..max_iterations {
                let iter = self.next_iteration + step;
                iterations = step + 1;
                let mut changed: u64 = 0;
                let sent_before = messages_sent;
                let dynamic_before = dynamic_applied;
                let mut iter_stages = StageTimes::default();

                for (part, a, b) in self.partitions.iter() {
                    let count = (b - a) as usize;
                    let t_load = Instant::now();

                    // MsgManager phase A: load the partition's vertices and
                    // index — from the prefetcher's double buffer when it
                    // has this partition in flight, synchronously otherwise
                    // (first load of a run, or prefetch disabled).
                    let prefetched: Option<Prefetched<P>> =
                        prefetcher.as_mut().and_then(|pf| pf.take(part));
                    let (start_edge, degrees, slab, pre_msgs, claim) = match prefetched {
                        Some(p) => (p.start_edge, p.degrees, p.slab, p.msgs, Some(p.claim)),
                        None => {
                            let (start_edge, degrees) =
                                self.store.partition_index(a, b, &self.stats)?;
                            let slab = match resident.take() {
                                Some(s) => s,
                                None => {
                                    slab_bytes.resize(count * P::VertexData::SIZE, 0);
                                    vfile.seek(SeekFrom::Start(
                                        a as u64 * P::VertexData::SIZE as u64,
                                    ))?;
                                    vfile.read_exact(&mut slab_bytes)?;
                                    graphz_types::codec::decode_slice(&slab_bytes)
                                }
                            };
                            (start_edge, degrees, slab, Vec::new(), None)
                        }
                    };

                    // Kick off the next partition's load (wrapping into the
                    // next iteration) so it overlaps this one's compute.
                    // The claim seals the spill run the prefetcher will
                    // read; anything spilled later lands in new segments.
                    if let Some(pf) = prefetcher.as_mut() {
                        let next = (part + 1) % self.partitions.num_partitions();
                        let (na, nb) = self.partitions.range(next);
                        let next_claim = self.msgs.claim(next)?;
                        pf.request(next, na, nb, next_claim);
                    }
                    iter_stages.load += t_load.elapsed();
                    let t_replay = Instant::now();

                    // Replay pending messages in send order: the claimed
                    // (prefetched) run is oldest, then whatever the
                    // MsgManager still holds. Routing the stream by shard
                    // preserves per-vertex order — each vertex lives in
                    // exactly one shard — so the result is identical to a
                    // sequential replay (paper §V-C: "To accelerate this
                    // process, it is parallelized").
                    let plan = worker::plan_shards(a, b, max_shards);
                    let mut replay_groups: Vec<Vec<(VertexId, P::Message)>> =
                        plan.iter().map(|_| Vec::new()).collect();
                    let pre_count = pre_msgs.len() as u64;
                    for (dst, msg) in pre_msgs {
                        replay_groups[worker::shard_of(&plan, dst)].push((dst, msg));
                    }
                    if let Some(c) = &claim {
                        // Commits the prefetched messages: retire their
                        // segments *before* draining the remainder.
                        self.msgs.consume_claimed(c, pre_count)?;
                    }
                    self.msgs.drain(part, |dst, msg| {
                        replay_groups[worker::shard_of(&plan, dst)].push((dst, msg));
                    })?;

                    // Hand each shard its slice of the slab and its replay
                    // stream; workers replay concurrently.
                    let mut rest = slab;
                    for ((shard, &(lo, hi)), replay) in
                        plan.iter().enumerate().zip(replay_groups)
                    {
                        let tail = rest.split_off((hi - lo) as usize);
                        let data = std::mem::replace(&mut rest, tail);
                        executor.start(ShardStart {
                            shard,
                            first: lo,
                            end: hi,
                            data,
                            replay,
                            iteration: iter,
                            num_vertices,
                            dynamic,
                            per_partition,
                        })?;
                    }
                    iter_stages.replay += t_replay.elapsed();
                    let t_compute = Instant::now();

                    // Sio/Dispatcher stream feeding the Worker shards.
                    let stream = sio::stream_partition_weighted(
                        &self.store.edges_path(),
                        self.store.weights_path().as_deref(),
                        start_edge,
                        a,
                        degrees,
                        self.config.batch_edges,
                        Arc::clone(&self.stats),
                        pipeline_threads > 1,
                        Some(Arc::clone(&batch_pool)),
                        queue_cap,
                    )?;
                    for batch in stream {
                        for (shard, piece) in worker::split_batch(batch?, &plan, &batch_pool) {
                            executor.feed(shard, piece)?;
                        }
                    }

                    // Partition barrier, streamed: each shard's slab slice
                    // and coalesced message groups merge the moment shards
                    // `0..=s` have all reported — the emission order is a
                    // constant of the plan, so the merge is bit-identical to
                    // a full collect-then-sort while overlapping the
                    // still-running shards. Cross-partition groups append to
                    // the MsgManager in bulk (one hop per group, not per
                    // message). In-partition dynamic destinations may live
                    // in shards that have not reported yet, so their applies
                    // park until the slab is whole (paper Alg. 7).
                    let mut slab: Vec<P::VertexData> = rest; // empty, keeps capacity
                    let mut pending_local: Vec<(VertexId, P::Message)> = Vec::new();
                    let msgs = &mut self.msgs;
                    executor.finish_with(plan.len(), |result| {
                        slab.extend(result.data);
                        changed += result.changed;
                        messages_sent += result.sent;
                        dynamic_applied += result.dynamic_applied;
                        for (p, mut group) in result.deferred {
                            if dynamic && p == part {
                                // audit:allow(dropped-result) — Vec::append returns ()
                                pending_local.append(&mut group);
                            } else {
                                msgs.enqueue_bulk(p, group)?;
                            }
                        }
                        Ok(())
                    })?;
                    debug_assert_eq!(slab.len(), count);
                    for (dst, msg) in pending_local {
                        self.program.apply_message(
                            dst,
                            &mut slab[(dst - a) as usize],
                            &msg,
                        );
                        dynamic_applied += 1;
                    }
                    iter_stages.compute += t_compute.elapsed();
                    let t_flush = Instant::now();

                    // Flush the partition's vertices back to disk, or keep
                    // them resident on the fast path.
                    if fast_path {
                        resident = Some(slab);
                    } else {
                        slab_bytes.resize(count * P::VertexData::SIZE, 0);
                        for (i, v) in slab.iter().enumerate() {
                            v.write_to(&mut slab_bytes[i * P::VertexData::SIZE..]);
                        }
                        vfile.seek(SeekFrom::Start(a as u64 * P::VertexData::SIZE as u64))?;
                        vfile.write_all(&slab_bytes)?;
                    }
                    iter_stages.flush += t_flush.elapsed();
                }

                stages_total = stages_total + iter_stages;
                per_iteration.push(IterationStats {
                    iteration: iter,
                    changed,
                    messages_sent: messages_sent - sent_before,
                    dynamic_applied: dynamic_applied - dynamic_before,
                    stages: iter_stages,
                    pool: batch_pool.counters(),
                });

                // Periodic crash-safe checkpoint. The generation number is
                // the iteration count a restored engine resumes at, so the
                // sequence keeps ascending across crash/resume cycles.
                if let Some(root) = self.config.checkpoint_dir.clone() {
                    let every = self.config.checkpoint_every;
                    if every > 0 && (step + 1) % every == 0 {
                        // The fast path holds vertex state in memory only;
                        // write it back so the on-disk array is current.
                        if let Some(slab) = &resident {
                            slab_bytes.resize(slab.len() * P::VertexData::SIZE, 0);
                            for (i, v) in slab.iter().enumerate() {
                                v.write_to(&mut slab_bytes[i * P::VertexData::SIZE..]);
                            }
                            vfile.seek(SeekFrom::Start(0))?;
                            vfile.write_all(&slab_bytes)?;
                        }
                        vfile.flush()?;
                        self.msgs.flush()?;
                        let next = iter + 1;
                        self.write_checkpoint(&generations::generation_path(&root, next), next)?;
                    }
                }

                if changed == 0 {
                    converged = true;
                    break;
                }
            }
            self.next_iteration += iterations;
            pool_counters = batch_pool.counters();
            // The fast path writes the final state exactly once.
            if let Some(slab) = resident {
                slab_bytes.resize(slab.len() * P::VertexData::SIZE, 0);
                for (i, v) in slab.iter().enumerate() {
                    v.write_to(&mut slab_bytes[i * P::VertexData::SIZE..]);
                }
                vfile.seek(SeekFrom::Start(0))?;
                vfile.write_all(&slab_bytes)?;
            }
            vfile.flush()?;
        } else {
            converged = true;
        }

        let mc = self.msgs.counters();
        Ok(RunSummary {
            iterations,
            converged,
            partitions: self.partitions.num_partitions(),
            messages_sent,
            dynamic_applied,
            buffered: mc.buffered,
            spilled: mc.spilled,
            replayed: mc.replayed,
            io: self.stats.snapshot() - io_before,
            prefetch: self.stats.prefetch_snapshot() - prefetch_before,
            wall: start.elapsed(),
            stages: stages_total,
            pool: pool_counters,
            plan: plan_cfg,
            per_iteration,
        })
    }

    /// Checkpoint the engine's whole computation state — vertex values,
    /// pending messages, iteration counter — into `dir`. The engine can
    /// continue running afterwards; a fresh engine over the same graph and
    /// program can [`restore`](Self::restore) and continue where this one
    /// left off.
    ///
    /// The write is crash-consistent: everything is staged into `dir.tmp/`,
    /// each file is wrapped in a checksummed frame and listed with its
    /// length and CRC32 in `manifest.txt`, the tree is fsynced, and the
    /// staging directory is atomically renamed over `dir`. A crash at any
    /// point leaves either the previous checkpoint or the new one.
    pub fn checkpoint(&mut self, dir: &Path) -> Result<()> {
        if !self.initialized {
            return Err(GraphError::InvalidConfig(
                "cannot checkpoint before the engine has initialized".into(),
            ));
        }
        self.msgs.flush()?;
        self.write_checkpoint(dir, self.next_iteration)
    }

    /// Write one checkpoint into `dest` recording `next_iteration` as the
    /// resume point. Assumes message buffers are already flushed and the
    /// on-disk vertex array is current.
    fn write_checkpoint(&mut self, dest: &Path, next_iteration: u32) -> Result<()> {
        let faults = self.config.checkpoint_faults.clone();
        let retry = self.config.checkpoint_retry;
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent).ctx("create-dir", parent)?;
        }
        let staged = StagedDir::stage_with_faults(dest, faults.clone(), retry)
            .ctx("stage", dest)?;

        let mut mf = graphz_storage::meta::MetaFile::new();
        let counters = self.msgs.counters();
        mf.set("format", "graphz-checkpoint")
            .set("version", CHECKPOINT_VERSION)
            .set("next_iteration", next_iteration)
            .set("partitions", self.partitions.num_partitions())
            .set("msg_buffered", counters.buffered)
            .set("msg_spilled", counters.spilled)
            .set("msg_replayed", counters.replayed);

        let (len, crc) = copy_into_frame(
            &self.vertices_path,
            &staged.path().join("vertices.bin"),
            &self.stats,
            &faults,
            retry,
        )?;
        mf.set("file:vertices.bin", format!("{len},{crc:08x}"));

        let msg_dst = staged.path().join("msgs");
        std::fs::create_dir(&msg_dst).ctx("create-dir", &msg_dst)?;
        let mut spill_names: Vec<std::ffi::OsString> = Vec::new();
        for entry in std::fs::read_dir(self.msgs.dir()).ctx("read-dir", self.msgs.dir())? {
            spill_names.push(entry.ctx("read-dir", self.msgs.dir())?.file_name());
        }
        // Deterministic order so fault-sweep op counts are reproducible.
        spill_names.sort();
        for name in spill_names {
            let (len, crc) = copy_into_frame(
                &self.msgs.dir().join(&name),
                &msg_dst.join(&name),
                &self.stats,
                &faults,
                retry,
            )?;
            mf.set(&format!("file:msgs/{}", name.to_string_lossy()), format!("{len},{crc:08x}"));
        }

        mf.save(&staged.path().join("manifest.txt"))?;
        staged.commit().ctx("commit", dest)?;
        Ok(())
    }

    /// Restore a computation previously saved with
    /// [`checkpoint`](Self::checkpoint). The engine must have been built
    /// over the same graph, program, and budget (partition layout is
    /// verified).
    ///
    /// Every file is verified against the manifest's length and CRC32
    /// before any engine state is touched; damage surfaces as typed
    /// [`GraphError::Corrupt`] (or [`GraphError::NotFound`] for a missing
    /// checkpoint), never as silently wrong values.
    pub fn restore(&mut self, dir: &Path) -> Result<()> {
        // Structural validation + checksum verification live in the shared
        // generations module (the serving layer pins generations through
        // the same code); the partition-compatibility check and the apply
        // pass are engine-specific.
        let manifest = generations::load_manifest(dir)?;
        let partitions = manifest.partitions()?;
        if partitions != self.partitions.num_partitions() {
            return Err(GraphError::InvalidConfig(format!(
                "checkpoint has {partitions} partitions, engine has {} — graph or budget mismatch",
                self.partitions.num_partitions()
            )));
        }

        // Verification pass: every manifest-listed file must exist and match
        // its recorded length + checksum. Nothing is modified yet, so a
        // corrupt generation leaves the engine untouched.
        manifest.verify_files(&self.stats)?;

        // Apply pass: unframe into engine scratch.
        for entry in std::fs::read_dir(self.msgs.dir()).ctx("read-dir", self.msgs.dir())? {
            let _ = std::fs::remove_file(entry.ctx("read-dir", self.msgs.dir())?.path());
        }
        for (rel, _, _) in manifest.files() {
            let src = dir.join(rel);
            let dst = if rel == "vertices.bin" {
                self.vertices_path.clone()
            } else if let Some(name) = rel.strip_prefix("msgs/") {
                self.msgs.dir().join(name)
            } else {
                return Err(GraphError::Corrupt(format!(
                    "checkpoint manifest lists unexpected file `{rel}`"
                )));
            };
            copy_from_frame(&src, &dst, &self.stats)?;
        }

        let mf = manifest.meta();
        self.msgs.restore(crate::msgmanager::MsgCounters {
            buffered: mf.get_u64("msg_buffered")?,
            spilled: mf.get_u64("msg_spilled")?,
            replayed: mf.get_u64("msg_replayed")?,
        });
        self.next_iteration = manifest.next_iteration()?;
        self.initialized = true;
        Ok(())
    }

    /// Resume from the newest valid checkpoint generation under `root`
    /// (as written by [`EngineConfig::checkpoint_every`]).
    ///
    /// Generations are scanned newest-first; a damaged one — torn rename,
    /// truncated file, checksum mismatch — is skipped and the next older
    /// generation is tried. Returns the `next_iteration` of the generation
    /// resumed, or `None` if no usable generation exists (the caller starts
    /// from scratch). Only crash damage is skipped: a generation from an
    /// incompatible engine layout still fails with
    /// [`GraphError::InvalidConfig`].
    pub fn resume_latest(&mut self, root: &Path) -> Result<Option<u32>> {
        for generation in generations::list_generations(root)? {
            match self.restore(&generation.path) {
                Ok(()) => return Ok(Some(generation.number)),
                // Crash damage: skip to the next older generation.
                Err(GraphError::Corrupt(_) | GraphError::NotFound(_) | GraphError::Io(_)) => {
                    continue
                }
                Err(other) => return Err(other),
            }
        }
        Ok(None)
    }

    /// Final vertex values in storage order.
    pub fn values(&self) -> Result<Vec<P::VertexData>> {
        if !self.initialized {
            return Err(graphz_types::GraphError::InvalidConfig(
                "engine has not run yet".into(),
            ));
        }
        graphz_io::record::read_records(&self.vertices_path, Arc::clone(&self.stats))
    }

    /// Final vertex values re-ordered by *original* vertex id, for
    /// comparison with other engines.
    pub fn values_by_original_id(&self) -> Result<Vec<P::VertexData>> {
        let storage_values = self.values()?;
        let originals = self.store.original_ids(&self.stats)?;
        let mut out: Vec<P::VertexData> =
            vec![P::VertexData::default(); storage_values.len()];
        for (storage, value) in storage_values.into_iter().enumerate() {
            out[originals[storage] as usize] = value;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::UpdateContext;
    use crate::store::{DenseStore, DosStore};
    use graphz_storage::{CsrFiles, DosConverter, EdgeListFile};
    use graphz_types::Edge;

    /// Counts, at every vertex, how many messages it has received; each
    /// iteration every vertex sends `1` to each out-neighbor. After k
    /// full iterations vertex v holds (approximately) k * in_degree(v).
    struct InDegreeCounter {
        rounds: u32,
    }

    impl VertexProgram for InDegreeCounter {
        type VertexData = u64;
        type Message = u64;

        fn update(&self, _vid: VertexId, _data: &mut u64, ctx: &mut UpdateContext<'_, u64>) {
            if ctx.iteration() < self.rounds {
                ctx.mark_changed();
                for &n in ctx.neighbors() {
                    ctx.send(n, 1);
                }
            }
        }

        fn apply_message(&self, _vid: VertexId, data: &mut u64, msg: &u64) {
            *data += msg;
        }
    }

    fn test_graph() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 0),
            Edge::new(3, 1),
        ]
    }

    fn dos_engine(
        edges: Vec<Edge>,
        budget: MemoryBudget,
        options: EngineOptions,
        rounds: u32,
    ) -> (graphz_io::ScratchDir, Engine<InDegreeCounter>) {
        dos_engine_cfg(edges, EngineConfig::new(budget).with_options(options), rounds)
    }

    fn dos_engine_cfg(
        edges: Vec<Edge>,
        config: EngineConfig,
        rounds: u32,
    ) -> (graphz_io::ScratchDir, Engine<InDegreeCounter>) {
        let dir = graphz_io::ScratchDir::new("engine-test").unwrap();
        let stats = IoStats::new();
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), Arc::clone(&stats))
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        let engine = Engine::new(
            Box::new(DosStore::new(dos)),
            InDegreeCounter { rounds },
            config,
            stats,
        )
        .unwrap();
        (dir, engine)
    }

    #[test]
    fn counts_in_degrees_single_partition() {
        let (_dir, mut engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            1,
        );
        assert_eq!(engine.num_partitions(), 1);
        let summary = engine.run(10).unwrap();
        assert!(summary.converged);
        assert_eq!(summary.iterations, 2); // 1 active + 1 quiet
        assert_eq!(summary.messages_sent, 7);
        let by_orig = engine.values_by_original_id().unwrap();
        // in-degrees: 0<-{2,3}=2, 1<-{0,3}=2, 2<-{0,1}=2, 3<-{0}=1
        assert_eq!(by_orig, vec![2, 2, 2, 1]);
    }

    #[test]
    fn many_partitions_give_identical_results() {
        let (_d1, mut e1) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            3,
        );
        // 16-byte budget for vertex slabs => 1 vertex per partition.
        let (_d2, mut e2) =
            dos_engine(test_graph(), MemoryBudget(16), EngineOptions::full(), 3);
        assert!(e2.num_partitions() > 1);
        let s1 = e1.run(10).unwrap();
        let s2 = e2.run(10).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(
            e1.values_by_original_id().unwrap(),
            e2.values_by_original_id().unwrap()
        );
        assert!(s2.buffered > 0, "multi-partition run must buffer messages");
    }

    #[test]
    fn ablations_change_io_not_results() {
        // 32-byte budget => 2 u64 vertices per partition, so some messages
        // are partition-local (DM fast path) and some cross partitions.
        let budget = MemoryBudget(32);
        let (_d1, mut full) = dos_engine(test_graph(), budget, EngineOptions::full(), 3);
        let (_d2, mut nodm) = dos_engine(
            test_graph(),
            budget,
            EngineOptions { dynamic_messages: false, ..EngineOptions::full() },
            3,
        );
        let s_full = full.run(10).unwrap();
        let s_nodm = nodm.run(10).unwrap();
        assert_eq!(
            full.values_by_original_id().unwrap(),
            nodm.values_by_original_id().unwrap()
        );
        // Without DM every message is buffered; with DM some apply directly.
        assert_eq!(s_nodm.dynamic_applied, 0);
        assert!(s_full.dynamic_applied > 0, "expected partition-local messages");
        assert!(s_nodm.buffered > s_full.buffered);
        assert_eq!(s_full.messages_sent, s_full.dynamic_applied + s_full.buffered);
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let (_d1, mut st) = dos_engine(
            test_graph(),
            MemoryBudget(16),
            EngineOptions { pipeline_threads: 1, ..EngineOptions::full() },
            3,
        );
        let (_d2, mut mt) = dos_engine(
            test_graph(),
            MemoryBudget(16),
            EngineOptions { pipeline_threads: 4, ..EngineOptions::full() },
            3,
        );
        st.run(10).unwrap();
        mt.run(10).unwrap();
        assert_eq!(
            st.values_by_original_id().unwrap(),
            mt.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn dense_store_matches_dos_store() {
        let dir = graphz_io::ScratchDir::new("engine-dense").unwrap();
        let stats = IoStats::new();
        let el =
            EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), test_graph()).unwrap();
        let csr = CsrFiles::convert(
            &el,
            &dir.path().join("csr"),
            Arc::clone(&stats),
            MemoryBudget::from_kib(64),
        )
        .unwrap();
        let dense =
            DenseStore::new(csr, MemoryBudget::from_mib(1), Arc::clone(&stats)).unwrap();
        let mut engine = Engine::new(
            Box::new(dense),
            InDegreeCounter { rounds: 2 },
            EngineConfig::new(MemoryBudget::from_mib(1)),
            stats,
        )
        .unwrap();
        engine.run(10).unwrap();
        let dense_vals = engine.values_by_original_id().unwrap();

        let (_d, mut dos_engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            2,
        );
        dos_engine.run(10).unwrap();
        assert_eq!(dense_vals, dos_engine.values_by_original_id().unwrap());
    }

    #[test]
    fn values_before_run_is_an_error() {
        let (_dir, engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            1,
        );
        assert!(engine.values().is_err());
    }

    #[test]
    fn empty_graph_runs_trivially() {
        let (_dir, mut engine) =
            dos_engine(vec![Edge::new(0, 0)], MemoryBudget::from_mib(1), EngineOptions::full(), 0);
        let s = engine.run(5).unwrap();
        assert!(s.converged);
    }

    #[test]
    fn in_memory_fast_path_same_results_less_io() {
        let budget = MemoryBudget::from_mib(1); // single partition
        let (_d1, mut slow) = dos_engine(test_graph(), budget, EngineOptions::full(), 4);
        let (_d2, mut fast) = dos_engine(
            test_graph(),
            budget,
            EngineOptions::with_in_memory_fast_path(),
            4,
        );
        let s_slow = slow.run(10).unwrap();
        let s_fast = fast.run(10).unwrap();
        assert_eq!(s_slow.iterations, s_fast.iterations);
        assert_eq!(
            slow.values_by_original_id().unwrap(),
            fast.values_by_original_id().unwrap()
        );
        assert!(
            s_fast.io.bytes_read < s_slow.io.bytes_read,
            "fast path must skip per-iteration reloads: {} vs {}",
            s_fast.io.bytes_read,
            s_slow.io.bytes_read
        );
        assert!(s_fast.io.bytes_written < s_slow.io.bytes_written);
    }

    #[test]
    fn fast_path_is_inert_when_multi_partition() {
        // With several partitions the option must not change behaviour.
        let budget = MemoryBudget(32);
        let (_d1, mut a) = dos_engine(test_graph(), budget, EngineOptions::full(), 3);
        let (_d2, mut b) = dos_engine(
            test_graph(),
            budget,
            EngineOptions { in_memory_fast_path: true, ..EngineOptions::full() },
            3,
        );
        let ra = a.run(10).unwrap();
        let rb = b.run(10).unwrap();
        assert!(rb.partitions > 1);
        assert_eq!(ra.io, rb.io);
        assert_eq!(
            a.values_by_original_id().unwrap(),
            b.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn background_spill_matches_synchronous() {
        // Dense cross-partition traffic with a tiny budget forces constant
        // spilling; the background writer must produce identical results.
        let edges: Vec<Edge> = (0..48u32)
            .flat_map(|i| (0..5u32).map(move |j| Edge::new(i, (i * 11 + j * 17) % 48)))
            .collect();
        let budget = MemoryBudget(64);
        let mut results = Vec::new();
        let mut spilled = Vec::new();
        for background in [false, true] {
            let (_d, mut engine) = dos_engine(
                edges.clone(),
                budget,
                EngineOptions { background_spill: background, ..EngineOptions::full() },
                5,
            );
            let s = engine.run(12).unwrap();
            assert!(s.spilled > 0, "tiny budget must force spills");
            spilled.push(s.spilled);
            results.push(engine.values_by_original_id().unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(spilled[0], spilled[1]);
    }

    #[test]
    fn parallel_message_replay_matches_sequential() {
        // Many partitions + many cross-partition messages force the replay
        // path; compare 1 thread (sequential) against 8 (parallel groups).
        let edges: Vec<Edge> = (0..64u32)
            .flat_map(|i| (0..4u32).map(move |j| Edge::new(i, (i * 7 + j * 13) % 64)))
            .collect();
        let budget = MemoryBudget(128); // 8 u64 vertices per partition
        let mut results = Vec::new();
        for threads in [1usize, 8] {
            let (_d, mut engine) = dos_engine(
                edges.clone(),
                budget,
                EngineOptions { pipeline_threads: threads, ..EngineOptions::full() },
                4,
            );
            let summary = engine.run(10).unwrap();
            assert!(summary.replayed > 0, "replay path must be exercised");
            results.push(engine.values_by_original_id().unwrap());
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn parallel_shards_bit_identical_across_thread_counts() {
        // 96 vertices / 48 per partition → 2 partitions of 3 shards each:
        // exercises split_batch, cross-shard deferral, barrier merge, and
        // prefetch. The shard plan depends on worker_shards only, so every
        // thread count must produce byte-identical state and counters.
        let edges: Vec<Edge> = (0..96u32)
            .flat_map(|i| (0..4u32).map(move |j| Edge::new(i, (i * 7 + j * 13) % 96)))
            .collect();
        let budget = MemoryBudget(8 * 48);
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let (_d, mut engine) = dos_engine(
                edges.clone(),
                budget,
                EngineOptions {
                    worker_shards: 8,
                    pipeline_threads: threads,
                    ..EngineOptions::full()
                },
                4,
            );
            let s = engine.run(10).unwrap();
            results.push((
                engine.values_by_original_id().unwrap(),
                s.iterations,
                s.messages_sent,
                s.dynamic_applied,
                s.buffered,
            ));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn batch_pool_reuses_buffers_across_iterations() {
        // The engine prewarms the pool to the structural in-flight bound, so
        // every take() is a recycle: `fresh` stays zero for the whole run —
        // not just after iteration 1 — at any thread count, and the pooled
        // pipeline visibly recycles buffers each iteration.
        let edges: Vec<Edge> = (0..96u32)
            .flat_map(|i| (0..4u32).map(move |j| Edge::new(i, (i * 7 + j * 13) % 96)))
            .collect();
        let budget = MemoryBudget(8 * 48);
        for threads in [1usize, 2, 8] {
            let (_d, mut engine) = dos_engine(
                edges.clone(),
                budget,
                EngineOptions {
                    worker_shards: 8,
                    pipeline_threads: threads,
                    ..EngineOptions::full()
                },
                4,
            );
            let s = engine.run(10).unwrap();
            assert!(s.iterations >= 2, "need multiple iterations, got {}", s.iterations);
            assert_eq!(s.pool.fresh, 0, "threads={threads}: prewarmed pool must never miss");
            assert!(s.pool.reused > 0, "threads={threads}: pooled pipeline must recycle");
            let mut prev = 0u64;
            for (i, it) in s.per_iteration.iter().enumerate() {
                assert_eq!(it.pool.fresh, 0, "threads={threads} iteration {i}");
                assert!(
                    it.pool.reused > prev,
                    "threads={threads} iteration {i}: no buffers recycled this iteration"
                );
                prev = it.pool.reused;
            }
        }
    }

    #[test]
    fn prefetch_counters_track_activity() {
        let budget = MemoryBudget(16); // one vertex per partition: 4 partitions
        let (_d1, mut on) = dos_engine(test_graph(), budget, EngineOptions::full(), 3);
        let s_on = on.run(10).unwrap();
        assert!(s_on.partitions >= EngineOptions::MIN_PREFETCH_PARTITIONS);
        assert!(s_on.plan.prefetch, "enough partitions: the plan keeps prefetch");
        assert!(
            s_on.prefetch.hits + s_on.prefetch.stalls > 0,
            "multi-partition run with prefetch must request loads: {:?}",
            s_on.prefetch
        );
        let (_d2, mut off) = dos_engine(
            test_graph(),
            budget,
            EngineOptions { prefetch: false, ..EngineOptions::full() },
            3,
        );
        let s_off = off.run(10).unwrap();
        assert_eq!(s_off.prefetch, graphz_io::PrefetchSnapshot::default());
        assert_eq!(
            on.values_by_original_id().unwrap(),
            off.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn prefetch_auto_disables_below_three_partitions() {
        // Budget 32 → two partitions: the plan refuses the prefetcher even
        // though the options request it (it is pure overhead there), and the
        // results are identical to an explicit prefetch=false run.
        let budget = MemoryBudget(32);
        let (_d1, mut auto_off) = dos_engine(test_graph(), budget, EngineOptions::full(), 3);
        let s = auto_off.run(10).unwrap();
        assert_eq!(s.partitions, 2);
        assert!(!s.plan.prefetch, "two partitions cannot hide a load: plan must refuse");
        assert_eq!(s.prefetch, graphz_io::PrefetchSnapshot::default());
        let (_d2, mut off) = dos_engine(
            test_graph(),
            budget,
            EngineOptions { prefetch: false, ..EngineOptions::full() },
            3,
        );
        off.run(10).unwrap();
        assert_eq!(
            auto_off.values_by_original_id().unwrap(),
            off.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn stage_times_sum_across_iterations() {
        let (_dir, mut engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            3,
        );
        let s = engine.run(10).unwrap();
        assert!(s.stages.total() > Duration::ZERO);
        let sum = s
            .per_iteration
            .iter()
            .fold(StageTimes::default(), |acc, i| acc + i.stages);
        assert_eq!(sum, s.stages);
    }

    #[test]
    fn per_iteration_stats_account_for_totals() {
        let (_dir, mut engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            3,
        );
        let s = engine.run(10).unwrap();
        assert_eq!(s.per_iteration.len() as u32, s.iterations);
        assert_eq!(
            s.per_iteration.iter().map(|i| i.messages_sent).sum::<u64>(),
            s.messages_sent
        );
        assert_eq!(
            s.per_iteration.iter().map(|i| i.dynamic_applied).sum::<u64>(),
            s.dynamic_applied
        );
        // The final (converged) iteration is quiet.
        assert_eq!(s.per_iteration.last().unwrap().changed, 0);
        // Earlier iterations were active.
        assert!(s.per_iteration[0].changed > 0);
    }

    #[test]
    fn split_runs_equal_one_long_run() {
        let budget = MemoryBudget(32); // several partitions
        let (_d1, mut whole) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        let (_d2, mut split) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        let s_whole = whole.run(20).unwrap();
        let a = split.run(3).unwrap();
        assert_eq!(a.iterations, 3);
        assert!(!a.converged);
        let b = split.run(20).unwrap();
        assert_eq!(a.iterations + b.iterations, s_whole.iterations);
        assert_eq!(
            whole.values_by_original_id().unwrap(),
            split.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        let budget = MemoryBudget(32);
        let ckpt_dir = graphz_io::ScratchDir::new("engine-ckpt").unwrap();

        // Reference: one uninterrupted run.
        let (_d1, mut reference) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        reference.run(20).unwrap();

        // Interrupted run: 2 iterations, checkpoint, drop the engine.
        let (_d2, mut first) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        first.run(2).unwrap();
        first.checkpoint(ckpt_dir.path()).unwrap();
        drop(first);

        // Fresh engine restores and finishes.
        let (_d3, mut resumed) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        resumed.restore(ckpt_dir.path()).unwrap();
        let tail = resumed.run(20).unwrap();
        assert!(tail.converged);
        assert_eq!(
            resumed.values_by_original_id().unwrap(),
            reference.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn restore_rejects_layout_mismatch() {
        let ckpt_dir = graphz_io::ScratchDir::new("engine-ckpt-bad").unwrap();
        let (_d1, mut a) =
            dos_engine(test_graph(), MemoryBudget(32), EngineOptions::full(), 2);
        a.run(1).unwrap();
        a.checkpoint(ckpt_dir.path()).unwrap();
        // Different budget => different partition layout => refused.
        let (_d2, mut b) =
            dos_engine(test_graph(), MemoryBudget::from_mib(1), EngineOptions::full(), 2);
        b.initialize().unwrap();
        let err = b.restore(ckpt_dir.path()).unwrap_err();
        assert!(matches!(err, graphz_types::GraphError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn checkpoint_before_init_is_an_error() {
        let ckpt_dir = graphz_io::ScratchDir::new("engine-ckpt-early").unwrap();
        let (_d, mut e) =
            dos_engine(test_graph(), MemoryBudget::from_mib(1), EngineOptions::full(), 1);
        assert!(e.checkpoint(ckpt_dir.path()).is_err());
    }

    #[test]
    fn layout_mismatch_message_names_both_counts() {
        let ckpt_dir = graphz_io::ScratchDir::new("engine-ckpt-msg").unwrap();
        let (_d1, mut a) = dos_engine(test_graph(), MemoryBudget(32), EngineOptions::full(), 2);
        a.run(1).unwrap();
        a.checkpoint(ckpt_dir.path()).unwrap();
        let (_d2, mut b) =
            dos_engine(test_graph(), MemoryBudget::from_mib(1), EngineOptions::full(), 2);
        b.initialize().unwrap();
        let msg = b.restore(ckpt_dir.path()).unwrap_err().to_string();
        let expected = format!(
            "checkpoint has {} partitions, engine has 1 — graph or budget mismatch",
            a.num_partitions()
        );
        assert!(msg.contains(&expected), "got: {msg}");
    }

    #[test]
    fn restore_missing_checkpoint_is_not_found() {
        let dir = graphz_io::ScratchDir::new("engine-ckpt-missing").unwrap();
        let (_d, mut e) =
            dos_engine(test_graph(), MemoryBudget::from_mib(1), EngineOptions::full(), 2);
        e.initialize().unwrap();
        let err = e.restore(&dir.path().join("nope")).unwrap_err();
        assert!(matches!(err, graphz_types::GraphError::NotFound(_)), "{err:?}");
    }

    #[test]
    fn restore_rejects_corrupted_checkpoint_file() {
        let ckpt_dir = graphz_io::ScratchDir::new("engine-ckpt-corrupt").unwrap();
        let (_d1, mut a) = dos_engine(test_graph(), MemoryBudget(32), EngineOptions::full(), 4);
        a.run(2).unwrap();
        a.checkpoint(ckpt_dir.path()).unwrap();

        // Flip one payload byte in the framed vertex file.
        let vpath = ckpt_dir.path().join("vertices.bin");
        let mut bytes = std::fs::read(&vpath).unwrap();
        bytes[graphz_io::framed::HEADER_LEN] ^= 0xFF;
        std::fs::write(&vpath, bytes).unwrap();

        let (_d2, mut b) = dos_engine(test_graph(), MemoryBudget(32), EngineOptions::full(), 4);
        b.initialize().unwrap();
        let err = b.restore(ckpt_dir.path()).unwrap_err();
        assert!(matches!(err, graphz_types::GraphError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn checkpoint_every_resume_latest_matches_uninterrupted_run() {
        let budget = MemoryBudget(32);
        let gens = graphz_io::ScratchDir::new("engine-gens").unwrap();

        let (_d1, mut reference) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        reference.run(20).unwrap();

        // Periodically-checkpointing run killed after 3 iterations.
        let cfg = EngineConfig::new(budget)
            .with_options(EngineOptions::full())
            .checkpoint_every(gens.path(), 1);
        let (_d2, mut first) = dos_engine_cfg(test_graph(), cfg, 6);
        first.run(3).unwrap();
        drop(first);

        let (_d3, mut resumed) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        let gen = resumed.resume_latest(gens.path()).unwrap();
        assert_eq!(gen, Some(3), "newest generation should be gen 3");
        let tail = resumed.run(20).unwrap();
        assert!(tail.converged);
        assert_eq!(
            resumed.values_by_original_id().unwrap(),
            reference.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn resume_latest_skips_truncated_newest_generation() {
        let budget = MemoryBudget(32);
        let gens = graphz_io::ScratchDir::new("engine-gens-trunc").unwrap();

        let (_d1, mut reference) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        reference.run(20).unwrap();

        let cfg = EngineConfig::new(budget)
            .with_options(EngineOptions::full())
            .checkpoint_every(gens.path(), 1);
        let (_d2, mut first) = dos_engine_cfg(test_graph(), cfg, 6);
        first.run(3).unwrap();
        drop(first);

        // Simulate a torn newest generation: chop the vertex file short.
        let newest = gens.path().join("gen-00000003").join("vertices.bin");
        let len = std::fs::metadata(&newest).unwrap().len();
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..len as usize / 2]).unwrap();

        let (_d3, mut resumed) = dos_engine(test_graph(), budget, EngineOptions::full(), 6);
        let gen = resumed.resume_latest(gens.path()).unwrap();
        assert_eq!(gen, Some(2), "damaged gen 3 must be skipped for gen 2");
        let tail = resumed.run(20).unwrap();
        assert!(tail.converged);
        assert_eq!(
            resumed.values_by_original_id().unwrap(),
            reference.values_by_original_id().unwrap()
        );
    }

    #[test]
    fn resume_latest_with_no_checkpoints_is_none() {
        let gens = graphz_io::ScratchDir::new("engine-gens-none").unwrap();
        let (_d, mut e) =
            dos_engine(test_graph(), MemoryBudget::from_mib(1), EngineOptions::full(), 2);
        // Root doesn't exist at all.
        assert_eq!(e.resume_latest(&gens.path().join("missing")).unwrap(), None);
        // Root exists but holds no generation directories.
        std::fs::create_dir_all(gens.path().join("gen-bogus.tmp")).unwrap();
        assert_eq!(e.resume_latest(gens.path()).unwrap(), None);
    }

    #[test]
    fn max_iterations_caps_run() {
        let (_dir, mut engine) = dos_engine(
            test_graph(),
            MemoryBudget::from_mib(1),
            EngineOptions::full(),
            u32::MAX, // never stops on its own
        );
        let s = engine.run(3).unwrap();
        assert_eq!(s.iterations, 3);
        assert!(!s.converged);
    }
}
