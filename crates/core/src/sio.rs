//! Sio + Dispatcher (paper §V-A): sequential block IO turned into adjacency
//! batches.
//!
//! Sio reads raw blocks of the adjacency file in file order — "vertices
//! within a partition are always read in order, taking advantage of
//! system-level prefetching" — and the Dispatcher slices each block into
//! per-vertex adjacency lists using the (memory-resident) degree run for the
//! partition. With `pipeline_threads > 1` the two stages run on their own
//! thread connected to the Worker by a bounded queue, overlapping IO with
//! computation exactly as the paper's Fig. 4 pipeline does; results are
//! bit-identical either way.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use graphz_io::{IoStats, TrackedFile};
use graphz_types::{GraphError, IoCtx, Result, VertexId};

/// A parsed block: consecutive vertices with their concatenated adjacency.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjBatch {
    /// Storage id of the first vertex in the batch.
    pub first_vertex: VertexId,
    /// Out-degrees of the batch's vertices.
    pub degrees: Vec<u32>,
    /// Concatenated out-neighbor lists (`degrees` gives the split points).
    pub edges: Vec<VertexId>,
    /// Per-edge weights parallel to `edges`; empty when the graph store
    /// carries no weights.
    pub weights: Vec<f32>,
}

impl AdjBatch {
    /// Iterate `(vertex, neighbors)` pairs.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        let mut cursor = 0usize;
        self.degrees.iter().enumerate().map(move |(i, &d)| {
            let slice = &self.edges[cursor..cursor + d as usize];
            cursor += d as usize;
            (self.first_vertex + i as VertexId, slice)
        })
    }

    /// Iterate `(vertex, neighbors, weights)`; the weights slice is empty
    /// for unweighted graphs.
    pub fn vertices_weighted(&self) -> impl Iterator<Item = (VertexId, &[VertexId], &[f32])> {
        let weighted = !self.weights.is_empty();
        let mut cursor = 0usize;
        self.degrees.iter().enumerate().map(move |(i, &d)| {
            // ipa:allow(panic-freedom) — batch invariant: edges.len() == sum(degrees)
            let edges = &self.edges[cursor..cursor + d as usize];
            let ws: &[f32] =
                // ipa:allow(panic-freedom) — weights.len() == edges.len() when weighted
                if weighted { &self.weights[cursor..cursor + d as usize] } else { &[] };
            cursor += d as usize;
            (self.first_vertex + i as VertexId, edges, ws)
        })
    }
}

/// How many edges a batch targets; 64 Ki edges = 256 KiB per block, a few
/// blocks in flight keeps the pipeline fed without denting the budget.
pub const DEFAULT_BATCH_EDGES: usize = 64 * 1024;

/// Recycles [`AdjBatch`] allocations between the Dispatcher and the Worker.
///
/// The Dispatcher's hot path otherwise allocates three vectors per block
/// (degrees, edges, weights). Consumers return finished batches with
/// [`put`](BatchPool::put); the Dispatcher picks them up with
/// [`take`](BatchPool::take) and refills them in place. The pool is a
/// bounded channel: `take` on an empty pool falls back to a fresh
/// allocation and `put` on a full pool drops the batch, so neither side
/// ever blocks and the pool never grows past its capacity.
pub struct BatchPool {
    tx: Sender<AdjBatch>,
    rx: Receiver<AdjBatch>,
    fresh: AtomicU64,
    reused: AtomicU64,
}

/// Point-in-time counters from a [`BatchPool`]; `fresh` counts `take` calls
/// that had to allocate, `reused` counts takes served by a recycled batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    pub fresh: u64,
    pub reused: u64,
}

impl BatchPool {
    pub fn new(capacity: usize) -> Arc<Self> {
        let (tx, rx) = bounded(capacity.max(1));
        Arc::new(BatchPool { tx, rx, fresh: AtomicU64::new(0), reused: AtomicU64::new(0) })
    }

    /// A pool pre-filled with `capacity` empty batches. Sized to the
    /// pipeline's maximum in-flight batch count, this makes `take` hit the
    /// pool from the first block on: the buffers grow to their working size
    /// during the first iteration and recirculate for the rest of the run,
    /// so the `fresh` counter staying at zero is exactly the "no fresh
    /// allocations after warm-up" property the reuse tests assert.
    pub fn prewarmed(capacity: usize) -> Arc<Self> {
        let pool = Self::new(capacity);
        for _ in 0..capacity.max(1) {
            pool.put(AdjBatch::default());
        }
        pool
    }

    /// An empty batch, recycled if one is available.
    pub fn take(&self) -> AdjBatch {
        match self.rx.try_recv() {
            Ok(batch) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                batch
            }
            Err(_) => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                AdjBatch::default()
            }
        }
    }

    /// Return a finished batch for reuse (contents are cleared on refill).
    pub fn put(&self, batch: AdjBatch) {
        let _ = self.tx.try_send(batch); // full pool: just drop the buffers
    }

    /// Lifetime allocation/reuse counters (monotonic; counters only — the
    /// numbers never influence scheduling, so determinism is untouched).
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            fresh: self.fresh.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }
}

/// Stream the adjacency lists of `degrees.len()` vertices starting at
/// storage id `first_vertex`, whose edges begin at record `start_edge` of
/// `edges_path`.
pub fn stream_partition(
    edges_path: &Path,
    start_edge: u64,
    first_vertex: VertexId,
    degrees: Vec<u32>,
    batch_edges: usize,
    stats: Arc<IoStats>,
    pipelined: bool,
) -> Result<AdjacencyStream> {
    stream_partition_weighted(
        edges_path, None, start_edge, first_vertex, degrees, batch_edges, stats, pipelined, None,
        None,
    )
}

/// Default depth of the pipelined Sio → Worker batch channel when no
/// `queue_cap` override is given.
pub const DEFAULT_SIO_QUEUE_CAP: usize = 2;

/// [`stream_partition`] with an optional parallel per-edge weight file, an
/// optional [`BatchPool`] the consumer returns finished batches to, and an
/// optional override for the pipelined channel's depth (`queue_cap`; results
/// are bit-identical for any depth ≥ 1 — it is pure scheduling).
#[allow(clippy::too_many_arguments)]
pub fn stream_partition_weighted(
    edges_path: &Path,
    weights_path: Option<&Path>,
    start_edge: u64,
    first_vertex: VertexId,
    degrees: Vec<u32>,
    batch_edges: usize,
    stats: Arc<IoStats>,
    pipelined: bool,
    pool: Option<Arc<BatchPool>>,
    queue_cap: Option<usize>,
) -> Result<AdjacencyStream> {
    let inner = InlineStream::open(
        edges_path,
        weights_path,
        start_edge,
        first_vertex,
        degrees,
        batch_edges,
        stats,
        pool,
    )?;
    if pipelined {
        let (tx, rx) = bounded::<Result<AdjBatch>>(queue_cap.unwrap_or(DEFAULT_SIO_QUEUE_CAP).max(1));
        let handle = std::thread::Builder::new()
            .name("graphz-sio".into())
            .spawn(move || {
                let mut inner = inner;
                while let Some(batch) = inner.next_batch().transpose() {
                    let stop = batch.is_err();
                    if tx.send(batch).is_err() || stop {
                        break; // worker hung up or the stream failed
                    }
                }
            })
            .map_err(std::io::Error::other)?;
        Ok(AdjacencyStream::Piped { rx, handle: Some(handle) })
    } else {
        Ok(AdjacencyStream::Inline(inner))
    }
}

/// Iterator over a partition's [`AdjBatch`]es (inline or pipelined).
pub enum AdjacencyStream {
    Inline(InlineStream),
    Piped { rx: Receiver<Result<AdjBatch>>, handle: Option<std::thread::JoinHandle<()>> },
}

impl Iterator for AdjacencyStream {
    type Item = Result<AdjBatch>;

    fn next(&mut self) -> Option<Result<AdjBatch>> {
        match self {
            AdjacencyStream::Inline(s) => s.next_batch().transpose(),
            AdjacencyStream::Piped { rx, handle } => match rx.recv() {
                Ok(item) => Some(item),
                Err(_) => {
                    if let Some(h) = handle.take() {
                        let _ = h.join();
                    }
                    None
                }
            },
        }
    }
}

impl Drop for AdjacencyStream {
    fn drop(&mut self) {
        if let AdjacencyStream::Piped { rx, handle } = self {
            // Unblock the producer if the consumer bailed early, then join.
            while rx.try_recv().is_ok() {}
            drop(std::mem::replace(rx, bounded(0).1));
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The single-threaded Sio + Dispatcher.
pub struct InlineStream {
    file: TrackedFile,
    weights_file: Option<TrackedFile>,
    degrees: Vec<u32>,
    next_index: usize,
    next_vertex: VertexId,
    batch_edges: usize,
    /// Recycled output batches; a private pool when the caller has none.
    pool: Arc<BatchPool>,
    /// Persistent raw-block read buffer (Sio reads into it, the Dispatcher
    /// decodes out of it — one allocation for the stream's lifetime).
    read_buf: Vec<u8>,
}

impl InlineStream {
    #[allow(clippy::too_many_arguments)]
    fn open(
        edges_path: &Path,
        weights_path: Option<&Path>,
        start_edge: u64,
        first_vertex: VertexId,
        degrees: Vec<u32>,
        batch_edges: usize,
        stats: Arc<IoStats>,
        pool: Option<Arc<BatchPool>>,
    ) -> Result<Self> {
        assert!(batch_edges > 0);
        let mut file =
            TrackedFile::open(edges_path, Arc::clone(&stats)).ctx("open", edges_path)?;
        file.seek(SeekFrom::Start(start_edge * 4))?;
        let weights_file = match weights_path {
            Some(p) => {
                let mut f = TrackedFile::open(p, stats).ctx("open", p)?;
                f.seek(SeekFrom::Start(start_edge * 4))?;
                Some(f)
            }
            None => None,
        };
        Ok(InlineStream {
            file,
            weights_file,
            degrees,
            next_index: 0,
            next_vertex: first_vertex,
            batch_edges,
            pool: pool.unwrap_or_else(|| BatchPool::new(4)),
            read_buf: Vec::new(),
        })
    }

    fn next_batch(&mut self) -> Result<Option<AdjBatch>> {
        if self.next_index >= self.degrees.len() {
            return Ok(None);
        }
        // Dispatcher: pick a vertex range whose edges fill one block. A
        // vertex's adjacency never splits across batches, so a single hub
        // vertex may exceed the target size.
        let first_vertex = self.next_vertex;
        let start = self.next_index;
        let mut edge_count = 0usize;
        while self.next_index < self.degrees.len() {
            let d = self.degrees[self.next_index] as usize;
            if edge_count > 0 && edge_count + d > self.batch_edges {
                break;
            }
            edge_count += d;
            self.next_index += 1;
            self.next_vertex += 1;
            if edge_count >= self.batch_edges {
                break;
            }
        }
        let mut batch = self.pool.take();
        batch.first_vertex = first_vertex;
        batch.degrees.clear();
        batch.degrees.extend_from_slice(&self.degrees[start..self.next_index]);
        // Sio: one sequential read for the whole block, into the persistent
        // buffer; the Dispatcher decodes into the recycled batch vectors.
        self.read_buf.resize(edge_count * 4, 0);
        self.file.read_exact(&mut self.read_buf).map_err(|e| {
            GraphError::Corrupt(format!("adjacency file ended early at vertex {first_vertex}: {e}"))
        })?;
        graphz_types::codec::decode_into(&self.read_buf, &mut batch.edges);
        match &mut self.weights_file {
            Some(wf) => {
                wf.read_exact(&mut self.read_buf).map_err(|e| {
                    GraphError::Corrupt(format!(
                        "weight file ended early at vertex {first_vertex}: {e}"
                    ))
                })?;
                graphz_types::codec::decode_into(&self.read_buf, &mut batch.weights);
            }
            None => batch.weights.clear(),
        }
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::record::write_records;
    use graphz_io::ScratchDir;

    /// Adjacency file for vertices with degrees [2, 0, 3, 1]:
    /// edges are 10,11 | | 20,21,22 | 30.
    fn setup() -> (ScratchDir, Arc<IoStats>) {
        let dir = ScratchDir::new("sio").unwrap();
        let stats = IoStats::new();
        let edges: Vec<u32> = vec![10, 11, 20, 21, 22, 30];
        write_records(&dir.file("edges.bin"), Arc::clone(&stats), &edges).unwrap();
        (dir, stats)
    }

    fn collect(stream: AdjacencyStream) -> Vec<(VertexId, Vec<VertexId>)> {
        let mut out = Vec::new();
        for batch in stream {
            let batch = batch.unwrap();
            for (v, adj) in batch.vertices() {
                out.push((v, adj.to_vec()));
            }
        }
        out
    }

    #[test]
    fn inline_stream_parses_adjacency() {
        let (dir, stats) = setup();
        let s = stream_partition(
            &dir.file("edges.bin"),
            0,
            100,
            vec![2, 0, 3, 1],
            1000,
            stats,
            false,
        )
        .unwrap();
        assert_eq!(
            collect(s),
            vec![
                (100, vec![10, 11]),
                (101, vec![]),
                (102, vec![20, 21, 22]),
                (103, vec![30]),
            ]
        );
    }

    #[test]
    fn pipelined_stream_matches_inline() {
        let (dir, stats) = setup();
        let inline = stream_partition(
            &dir.file("edges.bin"), 0, 0, vec![2, 0, 3, 1], 2, Arc::clone(&stats), false,
        )
        .unwrap();
        let piped = stream_partition(
            &dir.file("edges.bin"), 0, 0, vec![2, 0, 3, 1], 2, stats, true,
        )
        .unwrap();
        assert_eq!(collect(inline), collect(piped));
    }

    #[test]
    fn tiny_batch_size_never_splits_a_vertex() {
        let (dir, stats) = setup();
        let s = stream_partition(
            &dir.file("edges.bin"), 0, 0, vec![2, 0, 3, 1], 1, stats, false,
        )
        .unwrap();
        let mut n_batches = 0;
        for batch in s {
            let batch = batch.unwrap();
            let total: usize = batch.degrees.iter().map(|&d| d as usize).sum();
            assert_eq!(batch.edges.len(), total);
            n_batches += 1;
        }
        // Degrees [2,0,3,1] with batch_edges=1: [2] is its own batch, [0,3]
        // groups the empty vertex with the next, [1] finishes.
        assert_eq!(n_batches, 3);
    }

    #[test]
    fn offset_streaming_skips_earlier_partitions() {
        let (dir, stats) = setup();
        // Second "partition": vertices 2..4 whose edges start at record 2.
        let s = stream_partition(
            &dir.file("edges.bin"), 2, 2, vec![3, 1], 1000, stats, false,
        )
        .unwrap();
        assert_eq!(collect(s), vec![(2, vec![20, 21, 22]), (3, vec![30])]);
    }

    #[test]
    fn truncated_file_reports_corruption() {
        let dir = ScratchDir::new("sio-trunc").unwrap();
        let stats = IoStats::new();
        write_records(&dir.file("edges.bin"), Arc::clone(&stats), &[1u32, 2]).unwrap();
        // Claims degree 5 but only 2 edges exist.
        let s = stream_partition(&dir.file("edges.bin"), 0, 0, vec![5], 10, stats, false).unwrap();
        let results: Vec<_> = s.collect();
        assert!(matches!(results[0], Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn zero_vertices_is_empty_stream() {
        let (dir, stats) = setup();
        let s = stream_partition(&dir.file("edges.bin"), 0, 0, vec![], 10, stats, false).unwrap();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn recycled_batches_match_fresh_allocations() {
        let (dir, stats) = setup();
        let pool = BatchPool::new(4);
        // Prime the pool with a dirty batch; the stream must clear it.
        pool.put(AdjBatch {
            first_vertex: 999,
            degrees: vec![7, 7],
            edges: vec![1, 2, 3],
            weights: vec![0.5],
        });
        let recycled = stream_partition_weighted(
            &dir.file("edges.bin"),
            None,
            0,
            100,
            vec![2, 0, 3, 1],
            2,
            Arc::clone(&stats),
            false,
            Some(Arc::clone(&pool)),
            None,
        )
        .unwrap();
        let mut seen = Vec::new();
        for batch in recycled {
            let batch = batch.unwrap();
            for (v, adj) in batch.vertices() {
                seen.push((v, adj.to_vec()));
            }
            assert!(batch.weights.is_empty(), "unweighted stream must clear stale weights");
            pool.put(batch); // round-trip through the pool mid-stream
        }
        assert_eq!(
            seen,
            vec![
                (100, vec![10, 11]),
                (101, vec![]),
                (102, vec![20, 21, 22]),
                (103, vec![30]),
            ]
        );
    }

    #[test]
    fn pool_take_never_blocks_and_put_drops_on_full() {
        let pool = BatchPool::new(1);
        assert_eq!(pool.take(), AdjBatch::default()); // empty pool: fresh batch
        pool.put(AdjBatch::default());
        pool.put(AdjBatch::default()); // full: silently dropped
        let _ = pool.take();
        assert_eq!(pool.take(), AdjBatch::default());
    }

    #[test]
    fn early_drop_of_pipelined_stream_joins_producer() {
        let (dir, stats) = setup();
        let mut s = stream_partition(
            &dir.file("edges.bin"), 0, 0, vec![2, 0, 3, 1], 1, stats, true,
        )
        .unwrap();
        let _first = s.next().unwrap().unwrap();
        drop(s); // must not hang or leak the producer thread
    }
}
