//! The expressiveness construction of paper §IV-E (Algorithms 5 & 6):
//! any GraphChi program can be converted into a GraphZ program.
//!
//! GraphChi programs communicate by *writing edge values* that the
//! destination later reads as in-edges. The construction emulates that with
//! dynamic messages: a message carries `(neighbor, edge_value)` — the paper's
//! `Edge` struct — and `apply_message` simply appends it to the destination's
//! in-edge list (`vertex.edges.append(msg.edge)`). No commutativity or
//! associativity is required of the fold, which is the point: GraphZ's
//! message model is at least as expressive as GraphChi's edge model.
//!
//! One Rust-specific adaptation: GraphZ vertex data must be fixed-size to be
//! spillable, so the emulated in-edge list is bounded by the const parameter
//! `N` (the maximum in-degree the program will observe). This preserves the
//! construction's semantics for any graph that respects the bound and keeps
//! the demonstration honest about its storage cost — which is exactly the
//! paper's criticism of static edge data: you pay for it whether you need it
//! or not.

use graphz_types::{FixedCodec, VertexId};

use crate::program::{UpdateContext, VertexProgram};

/// A GraphChi-style program: compute a new vertex value from the in-edge
/// values, then (optionally) write one value onto every out-edge.
pub trait GraphChiStyleProgram: Send + Sync + 'static {
    type VertexValue: FixedCodec + Default + Copy + PartialEq;
    type EdgeData: FixedCodec + Default + Copy;

    /// One GraphChi `update()`: `in_edges` is `(source, edge value)` for each
    /// in-edge written since this vertex last ran. Returns the new vertex
    /// value and, if `Some`, the value to write on every out-edge.
    fn update(
        &self,
        vid: VertexId,
        value: Self::VertexValue,
        in_edges: &[(VertexId, Self::EdgeData)],
        out_degree: u32,
        iteration: u32,
    ) -> (Self::VertexValue, Option<Self::EdgeData>);
}

/// Paper Alg. 5's `VertexDataType`: the real vertex value plus the emulated
/// in-edge list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompatVertex<V, E: Copy, const N: usize> {
    pub value: V,
    len: u32,
    edges: [(u32, E); N],
}

impl<V: Default, E: Copy + Default, const N: usize> Default for CompatVertex<V, E, N> {
    fn default() -> Self {
        CompatVertex { value: V::default(), len: 0, edges: [(0, E::default()); N] }
    }
}

impl<V, E: Copy, const N: usize> CompatVertex<V, E, N> {
    pub fn in_edges(&self) -> &[(u32, E)] {
        &self.edges[..self.len as usize]
    }

    fn push(&mut self, src: u32, data: E) {
        assert!(
            (self.len as usize) < N,
            "CompatVertex in-edge capacity {N} exceeded; raise N for this graph"
        );
        self.edges[self.len as usize] = (src, data);
        self.len += 1;
    }

    fn clear(&mut self) {
        self.len = 0;
    }
}

impl<V, E, const N: usize> FixedCodec for CompatVertex<V, E, N>
where
    V: FixedCodec + Copy,
    E: FixedCodec + Copy,
{
    const SIZE: usize = V::SIZE + 4 + N * (4 + E::SIZE);

    fn write_to(&self, buf: &mut [u8]) {
        self.value.write_to(buf);
        let mut at = V::SIZE;
        buf[at..at + 4].copy_from_slice(&self.len.to_le_bytes());
        at += 4;
        for (src, data) in &self.edges {
            buf[at..at + 4].copy_from_slice(&src.to_le_bytes());
            at += 4;
            data.write_to(&mut buf[at..]);
            at += E::SIZE;
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let value = V::read_from(buf);
        let mut at = V::SIZE;
        let len = graphz_types::codec::read_u32_le(&buf[at..]);
        at += 4;
        let edges = std::array::from_fn(|_| {
            let src = graphz_types::codec::read_u32_le(&buf[at..]);
            at += 4;
            let data = E::read_from(&buf[at..]);
            at += E::SIZE;
            (src, data)
        });
        CompatVertex { value, len, edges }
    }
}

/// Paper Alg. 6: the adapter that runs a [`GraphChiStyleProgram`] on the
/// GraphZ engine.
pub struct GraphChiAdapter<G, const N: usize> {
    inner: G,
}

impl<G, const N: usize> GraphChiAdapter<G, N> {
    pub fn new(inner: G) -> Self {
        GraphChiAdapter { inner }
    }
}

impl<G: GraphChiStyleProgram, const N: usize> VertexProgram for GraphChiAdapter<G, N> {
    type VertexData = CompatVertex<G::VertexValue, G::EdgeData, N>;
    // `MessageDataType { Edge edge }` — the edge the source would have
    // written in GraphChi.
    type Message = (u32, G::EdgeData);

    fn update(
        &self,
        vid: VertexId,
        data: &mut Self::VertexData,
        ctx: &mut UpdateContext<'_, Self::Message>,
    ) {
        let (new_value, out) =
            self.inner.update(vid, data.value, data.in_edges(), ctx.out_degree(), ctx.iteration());
        if new_value != data.value {
            ctx.mark_changed();
        }
        data.value = new_value;
        // The in-edges have been consumed, exactly like GraphChi clearing
        // its per-interval in-edge window.
        data.clear();
        if let Some(edge_val) = out {
            for &n in ctx.neighbors() {
                ctx.send(n, (vid, edge_val));
            }
        }
    }

    fn apply_message(&self, _vid: VertexId, data: &mut Self::VertexData, msg: &Self::Message) {
        // `vertex.edges.append(msg.edge)` — no computation, preserving
        // GraphChi's semantics verbatim.
        data.push(msg.0, msg.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::store::DosStore;
    use graphz_io::IoStats;
    use graphz_storage::{DosConverter, EdgeListFile};
    use graphz_types::{Edge, MemoryBudget};
    use std::sync::Arc;

    #[test]
    fn compat_vertex_codec_roundtrip() {
        let mut v =
            CompatVertex::<f32, f32, 4> { value: 2.5, ..CompatVertex::default() };
        v.push(7, 0.5);
        v.push(9, 1.5);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), <CompatVertex<f32, f32, 4>>::SIZE);
        let back = <CompatVertex<f32, f32, 4>>::read_from(&bytes);
        assert_eq!(back.value, 2.5);
        assert_eq!(back.in_edges(), &[(7, 0.5), (9, 1.5)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_overflow_is_loud() {
        let mut v: CompatVertex<u32, u32, 2> = CompatVertex::default();
        v.push(0, 0);
        v.push(1, 1);
        v.push(2, 2);
    }

    /// GraphChi-style PageRank, written against the edge model: read vote
    /// contributions off in-edges, write `rank / out_degree` on out-edges.
    struct ChiPageRank;

    impl GraphChiStyleProgram for ChiPageRank {
        type VertexValue = f32;
        type EdgeData = f32;

        fn update(
            &self,
            _vid: VertexId,
            _value: f32,
            in_edges: &[(VertexId, f32)],
            out_degree: u32,
            iteration: u32,
        ) -> (f32, Option<f32>) {
            let rank = if iteration == 0 {
                1.0
            } else {
                0.15 + 0.85 * in_edges.iter().map(|(_, w)| *w).sum::<f32>()
            };
            let out = if out_degree > 0 { Some(rank / out_degree as f32) } else { None };
            (rank, out)
        }
    }

    #[test]
    fn graphchi_emulation_computes_pagerank() {
        // 0 -> 1 -> 2 -> 0 triangle plus 0 -> 2 chord.
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0), Edge::new(0, 2)];
        let dir = graphz_io::ScratchDir::new("compat").unwrap();
        let stats = IoStats::new();
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), Arc::clone(&stats))
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        let mut engine = Engine::new(
            Box::new(DosStore::new(dos)),
            GraphChiAdapter::<ChiPageRank, 4>::new(ChiPageRank),
            EngineConfig::new(MemoryBudget::from_mib(1)),
            stats,
        )
        .unwrap();
        engine.run(30).unwrap();
        let values = engine.values_by_original_id().unwrap();
        let ranks: Vec<f32> = values.iter().map(|v| v.value).collect();

        // Reference fixed point of r = 0.15 + 0.85 * (in-contributions):
        //   r0 = 0.15 + 0.85 * r2        (2 has out-degree 1)
        //   r1 = 0.15 + 0.85 * r0 / 2
        //   r2 = 0.15 + 0.85 * (r0 / 2 + r1)
        // Solve by iteration for the expected values.
        let (mut r0, mut r1, mut r2) = (1.0f32, 1.0, 1.0);
        for _ in 0..60 {
            let n0 = 0.15 + 0.85 * r2;
            let n1 = 0.15 + 0.85 * r0 / 2.0;
            let n2 = 0.15 + 0.85 * (r0 / 2.0 + r1);
            (r0, r1, r2) = (n0, n1, n2);
        }
        assert!((ranks[0] - r0).abs() < 1e-2, "{} vs {r0}", ranks[0]);
        assert!((ranks[1] - r1).abs() < 1e-2, "{} vs {r1}", ranks[1]);
        assert!((ranks[2] - r2).abs() < 1e-2, "{} vs {r2}", ranks[2]);
    }
}
