//! The GraphZ programming model (paper §IV).
//!
//! Users supply a `VertexDataType`, a `MessageDataType`, an `update()`
//! function and an `apply_message()` function (paper Algorithms 1–2). The
//! runtime iterates vertices in storage order calling `update()`, and runs
//! `apply_message()` on each message — immediately when the destination is
//! memory-resident, or when its partition next loads otherwise.

use graphz_types::{FixedCodec, VertexId};

/// A vertex-centric GraphZ program.
///
/// # Ordering guarantee (paper §IV-C)
///
/// Within every iteration the runtime calls `update()` in ascending storage
/// id, and all messages emitted while updating vertex `v` are applied before
/// any vertex `w > v` in the same partition is updated. Given the same graph
/// and program, every execution performs the identical sequence of
/// operations regardless of thread count.
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex resident state. Spilled to disk between partition loads,
    /// hence the [`FixedCodec`] bound.
    type VertexData: FixedCodec + Default;
    /// Message payload.
    type Message: FixedCodec;

    /// Initial state for vertex `vid` (storage id) with out-degree `degree`.
    fn init(&self, _vid: VertexId, _degree: u32) -> Self::VertexData {
        Self::VertexData::default()
    }

    /// Per-iteration vertex update: read/adjust the vertex value, then
    /// optionally send messages to out-neighbors via [`UpdateContext::send`].
    fn update(&self, vid: VertexId, data: &mut Self::VertexData, ctx: &mut UpdateContext<'_, Self::Message>);

    /// Fold one message into the destination's state. This is the
    /// computation a *dynamic message* carries; it is usually a small
    /// commutative/associative fold (`min`, `+`, append — paper Alg. 2) but
    /// does not have to be.
    fn apply_message(&self, vid: VertexId, data: &mut Self::VertexData, msg: &Self::Message);
}

/// Everything an `update()` call may observe and do.
pub struct UpdateContext<'a, M> {
    pub(crate) iteration: u32,
    pub(crate) num_vertices: u64,
    pub(crate) neighbors: &'a [VertexId],
    pub(crate) weights: &'a [f32],
    pub(crate) outbox: &'a mut Vec<(VertexId, M)>,
    pub(crate) changed: bool,
}

impl<'a, M> UpdateContext<'a, M> {
    /// Current iteration (0-based).
    #[inline]
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Total vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Out-neighbors of the vertex being updated (storage ids).
    #[inline]
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.neighbors
    }

    /// Out-degree of the vertex being updated.
    #[inline]
    pub fn out_degree(&self) -> u32 {
        self.neighbors.len() as u32
    }

    /// Whether per-edge weights accompany this vertex's neighbor list
    /// (always false for a vertex with no out-edges — there is nothing to
    /// weight).
    #[inline]
    pub fn has_weights(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Per-edge weights parallel to [`neighbors`](Self::neighbors); empty
    /// for unweighted graphs.
    #[inline]
    pub fn neighbor_weights(&self) -> &'a [f32] {
        self.weights
    }

    /// Send `msg` to `dst`. The runtime intercepts it (paper Alg. 7): if
    /// `dst` is in the active partition and dynamic messages are enabled it
    /// is applied as soon as this `update()` returns; otherwise the
    /// MsgManager buffers it for `dst`'s partition.
    #[inline]
    pub fn send(&mut self, dst: VertexId, msg: M) {
        debug_assert!((dst as u64) < self.num_vertices, "message to out-of-range vertex {dst}");
        self.outbox.push((dst, msg));
    }

    /// Declare that this vertex's observable state changed this iteration.
    /// The engine converges (stops early) after an iteration in which no
    /// vertex declared a change.
    #[inline]
    pub fn mark_changed(&mut self) {
        self.changed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors_and_outbox() {
        let neighbors = [3u32, 5, 9];
        let mut outbox: Vec<(VertexId, f32)> = Vec::new();
        let weights = [1.5f32, 2.0, 2.5];
        let mut ctx = UpdateContext {
            iteration: 2,
            num_vertices: 10,
            neighbors: &neighbors,
            weights: &weights,
            outbox: &mut outbox,
            changed: false,
        };
        assert!(ctx.has_weights());
        assert_eq!(ctx.neighbor_weights(), &[1.5, 2.0, 2.5]);
        assert_eq!(ctx.iteration(), 2);
        assert_eq!(ctx.num_vertices(), 10);
        assert_eq!(ctx.out_degree(), 3);
        assert_eq!(ctx.neighbors(), &[3, 5, 9]);
        ctx.send(3, 1.5);
        ctx.send(5, 2.5);
        ctx.mark_changed();
        assert!(ctx.changed);
        assert_eq!(outbox, vec![(3, 1.5), (5, 2.5)]);
    }
}
