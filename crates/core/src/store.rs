//! Graph stores: where the engine gets its adjacency data and vertex index.
//!
//! [`DosStore`] is the paper's design — the per-unique-degree index always
//! fits in memory. [`DenseStore`] is the Fig. 7 "w/o DOS" ablation: the
//! original vertex order with a conventional dense (CSR) index that is kept
//! in memory only if it fits the budgeted index share, and otherwise is
//! re-read from disk for every partition — the extra IO the paper's §III-A
//! attributes to index-larger-than-memory operation.

use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::Arc;

use graphz_io::{IoStats, TrackedFile};
use graphz_storage::{CsrFiles, DosGraph};
use graphz_types::{GraphError, IoCtx, MemoryBudget, Result, VertexId};

/// Source of adjacency data and vertex-index lookups for the engine.
pub trait GraphStore: Send + Sync {
    fn num_vertices(&self) -> u64;
    fn num_edges(&self) -> u64;
    /// File of `u32` destination ids grouped by source in storage order.
    fn edges_path(&self) -> PathBuf;
    /// Optional file of per-edge `f32` weights parallel to the edge file.
    fn weights_path(&self) -> Option<PathBuf> {
        None
    }
    /// Bytes of vertex index this store must consult (Table XI).
    fn index_bytes(&self) -> u64;
    /// Whether the index is resident (DOS always; dense only if it fits).
    fn index_resident(&self) -> bool;

    /// Degrees of storage ids `a..b` and the edge-record offset of `a`.
    /// Charged IO if the index is not resident.
    fn partition_index(&self, a: VertexId, b: VertexId, stats: &Arc<IoStats>)
        -> Result<(u64, Vec<u32>)>;

    /// Translate an original id to this store's storage id.
    fn to_storage_id(&self, original: VertexId, stats: &Arc<IoStats>) -> Result<VertexId>;

    /// The original id of every storage id (index = storage id).
    fn original_ids(&self, stats: &Arc<IoStats>) -> Result<Vec<VertexId>>;
}

/// Degree-ordered storage (the GraphZ configuration).
pub struct DosStore {
    graph: DosGraph,
}

impl DosStore {
    pub fn new(graph: DosGraph) -> Self {
        DosStore { graph }
    }

    pub fn graph(&self) -> &DosGraph {
        &self.graph
    }
}

impl GraphStore for DosStore {
    fn num_vertices(&self) -> u64 {
        self.graph.meta().num_vertices
    }

    fn num_edges(&self) -> u64 {
        self.graph.meta().num_edges
    }

    fn edges_path(&self) -> PathBuf {
        self.graph.edges_path()
    }

    fn weights_path(&self) -> Option<PathBuf> {
        self.graph.weights_path()
    }

    fn index_bytes(&self) -> u64 {
        self.graph.index().index_bytes()
    }

    fn index_resident(&self) -> bool {
        true
    }

    fn partition_index(
        &self,
        a: VertexId,
        b: VertexId,
        _stats: &Arc<IoStats>,
    ) -> Result<(u64, Vec<u32>)> {
        let idx = self.graph.index();
        let start = if a == b { 0 } else { idx.offset_of(a)? };
        let degrees = (a..b).map(|v| idx.degree_of(v)).collect();
        Ok((start, degrees))
    }

    fn to_storage_id(&self, original: VertexId, stats: &Arc<IoStats>) -> Result<VertexId> {
        if original as u64 >= self.num_vertices() {
            return Err(GraphError::NotFound(format!("vertex {original} out of range")));
        }
        let old2new = self.graph.old2new_path();
        let mut f = TrackedFile::open(&old2new, Arc::clone(stats)).ctx("open", &old2new)?;
        f.seek(SeekFrom::Start(original as u64 * 4))?;
        let mut buf = [0u8; 4];
        f.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn original_ids(&self, stats: &Arc<IoStats>) -> Result<Vec<VertexId>> {
        self.graph.load_new2old(Arc::clone(stats))
    }
}

/// Conventional dense-indexed storage over the original vertex order
/// (the "GraphZ w/o DOS" ablation).
pub struct DenseStore {
    csr: CsrFiles,
    /// Offsets array when it fits the budgeted index share.
    resident_offsets: Option<Vec<u64>>,
}

impl DenseStore {
    /// Fraction of the budget a dense index may occupy before it is forced
    /// out-of-core. Mirrors the paper's framing that the index competes with
    /// vertex data for memory.
    pub const INDEX_BUDGET_FRACTION: f64 = 0.25;

    pub fn new(csr: CsrFiles, budget: MemoryBudget, stats: Arc<IoStats>) -> Result<Self> {
        let index_bytes = csr.index_bytes();
        let allowance = (budget.bytes() as f64 * Self::INDEX_BUDGET_FRACTION) as u64;
        let resident_offsets = if index_bytes <= allowance {
            Some(
                graphz_io::record::read_records::<u64>(&csr.offsets_path(), stats)?,
            )
        } else {
            None
        };
        Ok(DenseStore { csr, resident_offsets })
    }

    pub fn csr(&self) -> &CsrFiles {
        &self.csr
    }
}

impl GraphStore for DenseStore {
    fn num_vertices(&self) -> u64 {
        self.csr.meta().num_vertices
    }

    fn num_edges(&self) -> u64 {
        self.csr.meta().num_edges
    }

    fn edges_path(&self) -> PathBuf {
        self.csr.edges_path()
    }

    fn index_bytes(&self) -> u64 {
        self.csr.index_bytes()
    }

    fn index_resident(&self) -> bool {
        self.resident_offsets.is_some()
    }

    fn partition_index(
        &self,
        a: VertexId,
        b: VertexId,
        stats: &Arc<IoStats>,
    ) -> Result<(u64, Vec<u32>)> {
        if a == b {
            return Ok((0, Vec::new()));
        }
        let offsets: Vec<u64> = match &self.resident_offsets {
            Some(all) => all[a as usize..=b as usize].to_vec(),
            None => {
                // Index larger than memory: one extra disk access per
                // partition to fetch the offset slice (paper §III-A: "an
                // index larger than memory requires two disk accesses per
                // vertex access").
                let offsets = self.csr.offsets_path();
                let mut f =
                    TrackedFile::open(&offsets, Arc::clone(stats)).ctx("open", &offsets)?;
                f.seek(SeekFrom::Start(a as u64 * 8))?;
                let n = (b - a + 1) as usize;
                let mut buf = vec![0u8; n * 8];
                f.read_exact(&mut buf)?;
                graphz_types::codec::decode_slice(&buf)
            }
        };
        let start = offsets[0];
        let degrees = offsets.windows(2).map(|w| (w[1] - w[0]) as u32).collect();
        Ok((start, degrees))
    }

    fn to_storage_id(&self, original: VertexId, _stats: &Arc<IoStats>) -> Result<VertexId> {
        if original as u64 >= self.num_vertices() {
            return Err(GraphError::NotFound(format!("vertex {original} out of range")));
        }
        Ok(original)
    }

    fn original_ids(&self, _stats: &Arc<IoStats>) -> Result<Vec<VertexId>> {
        Ok((0..self.num_vertices() as VertexId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;
    use graphz_storage::{DosConverter, EdgeListFile};
    use graphz_types::Edge;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    fn sample() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(1, 0),
            Edge::new(2, 0),
            Edge::new(2, 3),
        ]
    }

    fn make_stores(dir: &ScratchDir, budget: MemoryBudget) -> (DosStore, DenseStore) {
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), sample()).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), stats())
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        let csr =
            CsrFiles::convert(&el, &dir.path().join("csr"), stats(), MemoryBudget::from_kib(64))
                .unwrap();
        (DosStore::new(dos), DenseStore::new(csr, budget, stats()).unwrap())
    }

    #[test]
    fn dos_store_partition_index_matches_index() {
        let dir = ScratchDir::new("store-dos").unwrap();
        let (dos, _) = make_stores(&dir, MemoryBudget::from_mib(1));
        let (start, degrees) = dos.partition_index(0, 4, &stats()).unwrap();
        assert_eq!(start, 0);
        // Degree order: old 0 (deg 3), old 2 (deg 2), old 1 (deg 1), zeros.
        assert_eq!(degrees, vec![3, 2, 1, 0]);
        let (start2, degrees2) = dos.partition_index(1, 3, &stats()).unwrap();
        assert_eq!(start2, 3);
        assert_eq!(degrees2, vec![2, 1]);
        assert!(dos.index_resident());
    }

    #[test]
    fn dos_store_id_translation_roundtrip() {
        let dir = ScratchDir::new("store-ids").unwrap();
        let (dos, _) = make_stores(&dir, MemoryBudget::from_mib(1));
        let originals = dos.original_ids(&stats()).unwrap();
        for (storage, &orig) in originals.iter().enumerate() {
            assert_eq!(dos.to_storage_id(orig, &stats()).unwrap() as usize, storage);
        }
        assert!(dos.to_storage_id(100, &stats()).is_err());
    }

    #[test]
    fn dense_store_resident_when_budget_allows() {
        let dir = ScratchDir::new("store-dense").unwrap();
        let (_, dense) = make_stores(&dir, MemoryBudget::from_mib(1));
        assert!(dense.index_resident());
        let (start, degrees) = dense.partition_index(0, 4, &stats()).unwrap();
        assert_eq!(start, 0);
        assert_eq!(degrees, vec![3, 1, 2, 0]); // original order
        assert_eq!(dense.to_storage_id(2, &stats()).unwrap(), 2);
        assert_eq!(dense.original_ids(&stats()).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dense_store_spills_index_when_too_big() {
        let dir = ScratchDir::new("store-dense-ooc").unwrap();
        // Budget of 64 bytes: index (5 * 8 = 40 bytes) > 25% share (16).
        let (_, dense) = make_stores(&dir, MemoryBudget(64));
        assert!(!dense.index_resident());
        let s = stats();
        let before = s.snapshot();
        let (start, degrees) = dense.partition_index(1, 3, &s).unwrap();
        assert_eq!(start, 3);
        assert_eq!(degrees, vec![1, 2]);
        let delta = s.snapshot() - before;
        assert!(delta.read_ops >= 1, "out-of-core index must hit disk");
    }

    #[test]
    fn empty_partition_index() {
        let dir = ScratchDir::new("store-empty").unwrap();
        let (dos, dense) = make_stores(&dir, MemoryBudget::from_mib(1));
        assert_eq!(dos.partition_index(2, 2, &stats()).unwrap().1.len(), 0);
        assert_eq!(dense.partition_index(2, 2, &stats()).unwrap().1.len(), 0);
    }
}
