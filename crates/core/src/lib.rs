//! The GraphZ out-of-core graph engine (paper §IV–§V).
//!
//! GraphZ keeps the vertex-centric programming model of systems like
//! GraphChi but adds two innovations:
//!
//! 1. **Degree-ordered storage** (implemented in `graphz-storage::dos`) —
//!    the whole vertex index fits in memory, and high-degree vertices
//!    cluster in the first partitions so most message traffic is
//!    partition-local.
//! 2. **Ordered dynamic messages** — a message carries computation: the
//!    user-supplied [`VertexProgram::apply_message`] runs as soon as the
//!    destination vertex is memory-resident, so no intermediate message
//!    state survives longer than it must, and execution is deterministic
//!    ("sequential-equivalent", §IV-C).
//!
//! The runtime mirrors the paper's four components (§V, Fig. 4):
//!
//! * **Sio** streams raw edge blocks off disk ([`sio`]),
//! * the **Dispatcher** parses them into per-vertex adjacency lists
//!   (also [`sio`]; the two stages share the pipeline thread),
//! * the **Worker** applies `update()` in ascending vertex order and
//!   intercepts outgoing messages ([`worker`], driven by [`engine`]); with
//!   `pipeline_threads > 1` the partition is sharded across a persistent
//!   worker pool under a deterministic schedule,
//! * the **MsgManager** buffers cross-partition messages and replays them in
//!   order when the destination partition loads ([`msgmanager`]).
//!
//! A [`prefetch`] stage double-buffers partition loads so the Worker never
//! waits on the vertex file.

#![forbid(unsafe_code)]

pub mod engine;
pub mod generations;
pub mod graphchi_compat;
#[cfg(feature = "model")]
pub mod model_hooks;
pub mod msgmanager;
pub mod prefetch;
pub mod program;
pub mod sio;
pub mod store;
pub mod worker;

pub use engine::{Engine, EngineConfig, RunSummary, StageTimes};
pub use generations::{
    generation_path, list_generations, load_manifest, parse_generation_name, Generation,
    GenerationManifest,
};
pub use program::{UpdateContext, VertexProgram};
pub use store::{DenseStore, DosStore, GraphStore};
