//! The MsgManager (paper §V-C): per-partition message buffers with ordered
//! disk spill.
//!
//! While a partition is being updated, messages destined for non-resident
//! vertices are appended to the destination partition's buffer. Buffers live
//! in memory up to a budgeted cap and spill to append-only files beyond it.
//! When a partition loads, its spilled messages are replayed first (they are
//! older), then the in-memory tail — preserving exactly the global send
//! order, which is what makes dynamic messages *ordered*.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use crossbeam::channel::{bounded, Sender};
use graphz_io::{IoStats, RecordReader, RecordWriter, TrackedFile};
use graphz_types::{FixedCodec, GraphError, Result, VertexId};

/// A message in flight: destination storage id plus payload.
type Envelope<M> = (VertexId, M);

/// Counters the engine folds into its run summary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MsgCounters {
    /// Messages enqueued for a non-resident partition.
    pub buffered: u64,
    /// Messages that overflowed memory and were written to spill files.
    pub spilled: u64,
    /// Messages replayed into a loading partition.
    pub replayed: u64,
}

/// One pre-encoded batch of envelopes bound for a partition's spill file.
struct SpillJob {
    partition: u32,
    bytes: Vec<u8>,
}

/// Shared completion/error state between the manager and its writer thread.
#[derive(Default)]
struct WriterState {
    completed: Mutex<(u64, Option<String>)>,
    quiescent: Condvar,
}

/// The paper's dedicated MsgManager thread (§V, Fig. 4): spill batches are
/// handed over a bounded queue and written in the background so the Worker
/// never blocks on message IO. FIFO handoff preserves the exact on-disk
/// order of the synchronous path.
struct BackgroundWriter {
    tx: Option<Sender<SpillJob>>,
    handle: Option<std::thread::JoinHandle<()>>,
    state: Arc<WriterState>,
    submitted: u64,
}

impl BackgroundWriter {
    fn spawn(dir: PathBuf, stats: Arc<IoStats>) -> Result<Self> {
        let (tx, rx) = bounded::<SpillJob>(4);
        let state = Arc::new(WriterState::default());
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("graphz-msgmanager".into())
            .spawn(move || {
                for job in rx {
                    let result = (|| -> Result<()> {
                        let path = dir.join(format!("msgs-{:05}.bin", job.partition));
                        let mut f = TrackedFile::append(&path, Arc::clone(&stats))?;
                        f.write_all(&job.bytes)?;
                        Ok(())
                    })();
                    let mut done = thread_state.completed.lock().unwrap();
                    done.0 += 1;
                    if let Err(e) = result {
                        done.1.get_or_insert_with(|| e.to_string());
                    }
                    thread_state.quiescent.notify_all();
                }
            })
            .map_err(std::io::Error::other)?;
        Ok(BackgroundWriter { tx: Some(tx), handle: Some(handle), state, submitted: 0 })
    }

    fn submit(&mut self, job: SpillJob) -> Result<()> {
        self.submitted += 1;
        self.tx
            .as_ref()
            .expect("writer channel open")
            .send(job)
            .map_err(|_| GraphError::Io(std::io::Error::other("spill writer thread died")))?;
        Ok(())
    }

    /// Block until every submitted batch is on disk; surface any write error.
    fn wait_quiescent(&self) -> Result<()> {
        let mut done = self.state.completed.lock().unwrap();
        while done.0 < self.submitted && done.1.is_none() {
            done = self.state.quiescent.wait(done).unwrap();
        }
        if let Some(e) = &done.1 {
            return Err(GraphError::Io(std::io::Error::other(format!(
                "background spill failed: {e}"
            ))));
        }
        Ok(())
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; the thread drains and exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

pub struct MsgManager<M: FixedCodec> {
    dir: PathBuf,
    stats: Arc<IoStats>,
    /// In-memory tail per partition.
    buffers: Vec<Vec<Envelope<M>>>,
    /// Whether the partition's spill file currently holds messages.
    has_spill: Vec<bool>,
    /// Total in-memory messages across all partitions.
    resident: usize,
    /// Cap on `resident` before everything spills.
    cap: usize,
    counters: MsgCounters,
    /// When present, spills go through the dedicated writer thread.
    writer: Option<BackgroundWriter>,
}

impl<M: FixedCodec> MsgManager<M> {
    /// `cap_bytes` bounds the total in-memory message bytes (the budget share
    /// the engine grants the MsgManager).
    pub fn new(dir: PathBuf, partitions: u32, cap_bytes: u64, stats: Arc<IoStats>) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let env_size = 4 + M::SIZE;
        let cap = ((cap_bytes as usize) / env_size).max(1);
        Ok(MsgManager {
            dir,
            stats,
            buffers: (0..partitions).map(|_| Vec::new()).collect(),
            has_spill: vec![false; partitions as usize],
            resident: 0,
            cap,
            counters: MsgCounters::default(),
            writer: None,
        })
    }

    /// Spill through a dedicated background thread (the paper's MsgManager
    /// thread pool) instead of synchronously on the caller. On-disk contents
    /// are identical; only who does the writing changes.
    pub fn with_background_writer(mut self) -> Result<Self> {
        self.writer = Some(BackgroundWriter::spawn(self.dir.clone(), Arc::clone(&self.stats))?);
        Ok(self)
    }

    fn spill_path(&self, partition: u32) -> PathBuf {
        self.dir.join(format!("msgs-{partition:05}.bin"))
    }

    /// Queue `msg` for `dst`, owned by `partition`.
    pub fn enqueue(&mut self, partition: u32, dst: VertexId, msg: M) -> Result<()> {
        self.buffers[partition as usize].push((dst, msg));
        self.resident += 1;
        self.counters.buffered += 1;
        if self.resident > self.cap {
            self.spill_all()?;
        }
        Ok(())
    }

    /// Write every in-memory buffer to its partition's spill file, in order
    /// (directly, or via the background writer when configured).
    fn spill_all(&mut self) -> Result<()> {
        let env_size = 4 + M::SIZE;
        for p in 0..self.buffers.len() {
            if self.buffers[p].is_empty() {
                continue;
            }
            if let Some(writer) = &mut self.writer {
                // Encode on this thread, write on the MsgManager thread.
                let mut bytes = vec![0u8; self.buffers[p].len() * env_size];
                for (i, env) in self.buffers[p].drain(..).enumerate() {
                    env.write_to(&mut bytes[i * env_size..]);
                    self.counters.spilled += 1;
                }
                writer.submit(SpillJob { partition: p as u32, bytes })?;
            } else {
                let file =
                    TrackedFile::append(&self.spill_path(p as u32), Arc::clone(&self.stats))?;
                let mut w =
                    RecordWriter::<Envelope<M>>::from_writer(std::io::BufWriter::new(file));
                for env in self.buffers[p].drain(..) {
                    w.push(&env)?;
                    self.counters.spilled += 1;
                }
                w.finish()?;
            }
            self.has_spill[p] = true;
        }
        self.resident = 0;
        Ok(())
    }

    /// Replay and clear everything queued for `partition`, calling `apply`
    /// in exact send order (spill file first — it holds the older messages —
    /// then the in-memory tail).
    pub fn drain<F>(&mut self, partition: u32, mut apply: F) -> Result<u64>
    where
        F: FnMut(VertexId, M),
    {
        let p = partition as usize;
        // The spill file must be complete before it is replayed.
        if let Some(writer) = &self.writer {
            writer.wait_quiescent()?;
        }
        let mut replayed = 0u64;
        if self.has_spill[p] {
            let path = self.spill_path(partition);
            for env in RecordReader::<Envelope<M>>::open(&path, Arc::clone(&self.stats))? {
                let (dst, msg) = env?;
                apply(dst, msg);
                replayed += 1;
            }
            std::fs::remove_file(&path)?;
            self.has_spill[p] = false;
        }
        let tail = std::mem::take(&mut self.buffers[p]);
        self.resident -= tail.len();
        for (dst, msg) in tail {
            apply(dst, msg);
            replayed += 1;
        }
        self.counters.replayed += replayed;
        Ok(replayed)
    }

    /// Total messages currently queued (memory + disk).
    pub fn pending(&self) -> u64 {
        self.counters.buffered - self.counters.replayed
    }

    pub fn counters(&self) -> MsgCounters {
        self.counters
    }

    /// Directory holding the spill files.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Force every in-memory buffer to its spill file (checkpointing:
    /// afterwards the directory contents are the complete message state).
    pub fn flush(&mut self) -> Result<()> {
        self.spill_all()?;
        if let Some(writer) = &self.writer {
            writer.wait_quiescent()?;
        }
        Ok(())
    }

    /// Rebuild in-memory bookkeeping after the spill directory was restored
    /// from a checkpoint: spill flags come from file existence, counters
    /// from the checkpoint metadata.
    pub fn restore(&mut self, counters: MsgCounters) {
        for p in 0..self.buffers.len() {
            self.buffers[p].clear();
            self.has_spill[p] = self.spill_path(p as u32).exists();
        }
        self.resident = 0;
        self.counters = counters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    fn manager(cap_bytes: u64) -> (ScratchDir, MsgManager<u32>) {
        let dir = ScratchDir::new("msgmgr").unwrap();
        let m = MsgManager::new(dir.path().join("msgs"), 4, cap_bytes, IoStats::new()).unwrap();
        (dir, m)
    }

    #[test]
    fn messages_replay_in_send_order() {
        let (_dir, mut m) = manager(1 << 20);
        for i in 0..10u32 {
            m.enqueue(1, i, i * 100).unwrap();
        }
        let mut seen = Vec::new();
        m.drain(1, |dst, msg| seen.push((dst, msg))).unwrap();
        assert_eq!(seen, (0..10u32).map(|i| (i, i * 100)).collect::<Vec<_>>());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn spill_preserves_order_across_boundary() {
        // Cap of 3 envelopes forces repeated spills.
        let (_dir, mut m) = manager((4 + 4) * 3);
        for i in 0..20u32 {
            m.enqueue(2, i, i).unwrap();
        }
        assert!(m.counters().spilled > 0, "cap should have forced spills");
        let mut seen = Vec::new();
        m.drain(2, |dst, _| seen.push(dst)).unwrap();
        assert_eq!(seen, (0..20u32).collect::<Vec<_>>());
    }

    #[test]
    fn partitions_are_isolated() {
        let (_dir, mut m) = manager(16);
        m.enqueue(0, 1, 10).unwrap();
        m.enqueue(3, 2, 20).unwrap();
        m.enqueue(0, 3, 30).unwrap();
        let mut p0 = Vec::new();
        m.drain(0, |dst, msg| p0.push((dst, msg))).unwrap();
        assert_eq!(p0, vec![(1, 10), (3, 30)]);
        assert_eq!(m.pending(), 1);
        let mut p3 = Vec::new();
        m.drain(3, |dst, msg| p3.push((dst, msg))).unwrap();
        assert_eq!(p3, vec![(2, 20)]);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn drain_is_idempotent_when_empty() {
        let (_dir, mut m) = manager(1024);
        let n = m.drain(0, |_, _: u32| {}).unwrap();
        assert_eq!(n, 0);
        assert_eq!(m.counters(), MsgCounters::default());
    }

    #[test]
    fn background_writer_produces_identical_files() {
        let send = |m: &mut MsgManager<u32>| {
            for i in 0..500u32 {
                m.enqueue(i % 3, i, i.wrapping_mul(31)).unwrap();
            }
            m.flush().unwrap();
        };
        let dir_a = ScratchDir::new("msg-sync").unwrap();
        let mut sync_m: MsgManager<u32> =
            MsgManager::new(dir_a.path().join("m"), 3, 64, IoStats::new()).unwrap();
        send(&mut sync_m);
        let dir_b = ScratchDir::new("msg-bg").unwrap();
        let mut bg_m: MsgManager<u32> =
            MsgManager::new(dir_b.path().join("m"), 3, 64, IoStats::new())
                .unwrap()
                .with_background_writer()
                .unwrap();
        send(&mut bg_m);
        for p in 0..3 {
            let name = format!("msgs-{p:05}.bin");
            let a = std::fs::read(dir_a.path().join("m").join(&name)).unwrap();
            let b = std::fs::read(dir_b.path().join("m").join(&name)).unwrap();
            assert_eq!(a, b, "partition {p} spill files must be byte-identical");
        }
        // And both drain to the same ordered stream.
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for p in 0..3u32 {
            sync_m.drain(p, |d, v| seen_a.push((d, v))).unwrap();
            bg_m.drain(p, |d, v| seen_b.push((d, v))).unwrap();
        }
        assert_eq!(seen_a, seen_b);
    }

    #[test]
    fn background_writer_drop_is_clean() {
        // Dropping mid-flight must join the thread without hanging.
        let dir = ScratchDir::new("msg-bg-drop").unwrap();
        let mut m: MsgManager<u64> =
            MsgManager::new(dir.path().join("m"), 2, 32, IoStats::new())
                .unwrap()
                .with_background_writer()
                .unwrap();
        for i in 0..1000u32 {
            m.enqueue(i % 2, i, i as u64).unwrap();
        }
        drop(m);
    }

    #[test]
    fn interleaved_enqueue_drain_cycles() {
        let (_dir, mut m) = manager(40); // tiny: spills constantly
        m.enqueue(0, 1, 100).unwrap();
        m.drain(0, |_, _| {}).unwrap();
        m.enqueue(0, 2, 200).unwrap();
        m.enqueue(0, 3, 300).unwrap();
        let mut seen = Vec::new();
        m.drain(0, |dst, _| seen.push(dst)).unwrap();
        assert_eq!(seen, vec![2, 3]);
        assert_eq!(m.pending(), 0);
        assert_eq!(m.counters().buffered, 3);
        assert_eq!(m.counters().replayed, 3);
    }
}
