//! The MsgManager (paper §V-C): per-partition message buffers with ordered
//! disk spill.
//!
//! While a partition is being updated, messages destined for non-resident
//! vertices are appended to the destination partition's buffer. Buffers live
//! in memory up to a budgeted cap and spill to append-only files beyond it.
//! When a partition loads, its spilled messages are replayed first (they are
//! older), then the in-memory tail — preserving exactly the global send
//! order, which is what makes dynamic messages *ordered*.
//!
//! Spill storage is a sequence of *segments* per partition
//! (`msgs-{p:05}-{seg:05}.bin`, oldest first). Segments exist so the
//! partition prefetcher can [`claim`](MsgManager::claim) the current spill
//! run — sealing it against further appends and reading it concurrently —
//! while the engine keeps spilling new messages into a fresh segment. A
//! claim never removes anything: if the prefetch is discarded, a normal
//! [`drain`](MsgManager::drain) still replays every segment, so crashes and
//! checkpoints taken between claim and consume lose no messages.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use crossbeam::channel::{bounded, Sender};
use graphz_io::{IoStats, RecordReader, RecordWriter, TrackedFile};
use graphz_types::{FixedCodec, GraphError, IoCtx, Result, VertexId};

/// A message in flight: destination storage id plus payload.
type Envelope<M> = (VertexId, M);

/// Counters the engine folds into its run summary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MsgCounters {
    /// Messages enqueued for a non-resident partition.
    pub buffered: u64,
    /// Messages that overflowed memory and were written to spill files.
    pub spilled: u64,
    /// Messages replayed into a loading partition.
    pub replayed: u64,
}

/// A snapshot of the sealed spill segments for one partition, handed to the
/// prefetcher. The segments stay registered in the manager (and on disk)
/// until [`MsgManager::consume_claimed`] — discarding a claim is always safe.
#[derive(Debug, Clone)]
pub struct ClaimedSegments {
    pub partition: u32,
    /// Paths of the sealed segment files, oldest first.
    pub paths: Vec<PathBuf>,
    /// How many segment entries (a prefix of the partition's list) this
    /// claim covers.
    count: usize,
}

impl ClaimedSegments {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One pre-encoded batch of envelopes bound for a spill segment file.
struct SpillJob {
    path: PathBuf,
    bytes: Vec<u8>,
}

/// Shared completion/error state between the manager and its writer thread.
#[derive(Default)]
struct WriterState {
    completed: Mutex<(u64, Option<String>)>,
    quiescent: Condvar,
}

/// The paper's dedicated MsgManager thread (§V, Fig. 4): spill batches are
/// handed over a bounded queue and written in the background so the Worker
/// never blocks on message IO. FIFO handoff preserves the exact on-disk
/// order of the synchronous path.
struct BackgroundWriter {
    tx: Option<Sender<SpillJob>>,
    handle: Option<std::thread::JoinHandle<()>>,
    state: Arc<WriterState>,
    submitted: u64,
}

/// Default depth of the Worker → MsgManager spill queue when no `queue_cap`
/// override is set.
pub const DEFAULT_SPILL_QUEUE_CAP: usize = 4;

impl BackgroundWriter {
    fn spawn(stats: Arc<IoStats>, queue_cap: Option<usize>) -> Result<Self> {
        let (tx, rx) = bounded::<SpillJob>(queue_cap.unwrap_or(DEFAULT_SPILL_QUEUE_CAP).max(1));
        let state = Arc::new(WriterState::default());
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("graphz-msgmanager".into())
            .spawn(move || {
                for job in rx {
                    let result = (|| -> Result<()> {
                        let mut f = TrackedFile::append(&job.path, Arc::clone(&stats))
                            .ctx("append", &job.path)?;
                        f.write_all(&job.bytes)?;
                        Ok(())
                    })();
                    // Poison-tolerant: a panicked peer must not cascade into
                    // a panic here; the completion counter stays correct.
                    let mut done = thread_state
                        .completed
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    done.0 += 1;
                    if let Err(e) = result {
                        done.1.get_or_insert_with(|| e.to_string());
                    }
                    thread_state.quiescent.notify_all();
                }
            })
            .map_err(std::io::Error::other)?;
        Ok(BackgroundWriter { tx: Some(tx), handle: Some(handle), state, submitted: 0 })
    }

    fn submit(&mut self, job: SpillJob) -> Result<()> {
        self.submitted += 1;
        self.tx
            .as_ref()
            .ok_or_else(|| GraphError::Io(std::io::Error::other("spill writer shut down")))?
            .send(job)
            .map_err(|_| GraphError::Io(std::io::Error::other("spill writer thread died")))?;
        Ok(())
    }

    /// Block until every submitted batch is on disk; surface any write error.
    fn wait_quiescent(&self) -> Result<()> {
        let mut done =
            self.state.completed.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        while done.0 < self.submitted && done.1.is_none() {
            done = self
                .state
                .quiescent
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if let Some(e) = &done.1 {
            return Err(GraphError::Io(std::io::Error::other(format!(
                "background spill failed: {e}"
            ))));
        }
        Ok(())
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; the thread drains and exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

pub struct MsgManager<M: FixedCodec> {
    dir: PathBuf,
    stats: Arc<IoStats>,
    /// In-memory tail per partition.
    buffers: Vec<Vec<Envelope<M>>>,
    /// Spill segment ids per partition, oldest first. The last entry may be
    /// open for appends (see `open_seg`); all earlier ones are sealed.
    segments: Vec<Vec<u32>>,
    /// The segment currently accepting appends, per partition.
    open_seg: Vec<Option<u32>>,
    /// Next segment id to allocate, per partition (monotonic, so the
    /// zero-padded filename sort order equals creation order).
    next_seg: Vec<u32>,
    /// Total in-memory messages across all partitions.
    resident: usize,
    /// Cap on `resident` before everything spills.
    cap: usize,
    counters: MsgCounters,
    /// When present, spills go through the dedicated writer thread.
    writer: Option<BackgroundWriter>,
}

impl<M: FixedCodec> MsgManager<M> {
    /// `cap_bytes` bounds the total in-memory message bytes (the budget share
    /// the engine grants the MsgManager).
    pub fn new(dir: PathBuf, partitions: u32, cap_bytes: u64, stats: Arc<IoStats>) -> Result<Self> {
        std::fs::create_dir_all(&dir).ctx("create-dir", &dir)?;
        let env_size = 4 + M::SIZE;
        let cap = ((cap_bytes as usize) / env_size).max(1);
        Ok(MsgManager {
            dir,
            stats,
            buffers: (0..partitions).map(|_| Vec::new()).collect(),
            segments: vec![Vec::new(); partitions as usize],
            open_seg: vec![None; partitions as usize],
            next_seg: vec![0; partitions as usize],
            resident: 0,
            cap,
            counters: MsgCounters::default(),
            writer: None,
        })
    }

    /// Spill through a dedicated background thread (the paper's MsgManager
    /// thread pool) instead of synchronously on the caller. On-disk contents
    /// are identical; only who does the writing changes. `queue_cap`
    /// overrides the spill queue depth (`None` keeps
    /// [`DEFAULT_SPILL_QUEUE_CAP`]).
    pub fn with_background_writer(mut self, queue_cap: Option<usize>) -> Result<Self> {
        self.writer = Some(BackgroundWriter::spawn(Arc::clone(&self.stats), queue_cap)?);
        Ok(self)
    }

    fn seg_path(&self, partition: u32, seg: u32) -> PathBuf {
        self.dir.join(format!("msgs-{partition:05}-{seg:05}.bin"))
    }

    /// The segment currently open for appends, allocating one if needed.
    fn open_segment(&mut self, partition: u32) -> u32 {
        let p = partition as usize;
        match self.open_seg[p] {
            Some(s) => s,
            None => {
                let s = self.next_seg[p];
                self.next_seg[p] += 1;
                self.open_seg[p] = Some(s);
                self.segments[p].push(s);
                s
            }
        }
    }

    /// Queue `msg` for `dst`, owned by `partition`.
    pub fn enqueue(&mut self, partition: u32, dst: VertexId, msg: M) -> Result<()> {
        self.buffers[partition as usize].push((dst, msg));
        self.resident += 1;
        self.counters.buffered += 1;
        if self.resident > self.cap {
            self.spill_all()?;
        }
        Ok(())
    }

    /// Queue a whole batch of messages for `partition` in one hop: the
    /// buffer grows once and the spill check runs once, instead of once per
    /// message. `msgs` must already be in send order; the resulting buffer
    /// contents — and therefore the spill files and replay order — are
    /// byte-identical to enqueueing each message individually.
    pub fn enqueue_bulk(&mut self, partition: u32, mut msgs: Vec<(VertexId, M)>) -> Result<()> {
        let n = msgs.len();
        if n == 0 {
            return Ok(());
        }
        let buf = &mut self.buffers[partition as usize];
        if buf.is_empty() {
            *buf = msgs; // adopt the sender's allocation outright
        } else {
            // audit:allow(dropped-result) — Vec::append returns ()
            buf.append(&mut msgs);
        }
        self.resident += n;
        self.counters.buffered += n as u64;
        if self.resident > self.cap {
            self.spill_all()?;
        }
        Ok(())
    }

    /// Write every in-memory buffer to its partition's open spill segment, in
    /// order (directly, or via the background writer when configured).
    fn spill_all(&mut self) -> Result<()> {
        let env_size = 4 + M::SIZE;
        for p in 0..self.buffers.len() {
            if self.buffers[p].is_empty() {
                continue;
            }
            let seg = self.open_segment(p as u32);
            let path = self.seg_path(p as u32, seg);
            if let Some(writer) = &mut self.writer {
                // Encode on this thread, write on the MsgManager thread.
                let mut bytes = vec![0u8; self.buffers[p].len() * env_size];
                for (i, env) in self.buffers[p].drain(..).enumerate() {
                    env.write_to(&mut bytes[i * env_size..]);
                    self.counters.spilled += 1;
                }
                writer.submit(SpillJob { path, bytes })?;
            } else {
                let file =
                    TrackedFile::append(&path, Arc::clone(&self.stats)).ctx("append", &path)?;
                let mut w =
                    RecordWriter::<Envelope<M>>::from_writer(std::io::BufWriter::new(file));
                for env in self.buffers[p].drain(..) {
                    w.push(&env)?;
                    self.counters.spilled += 1;
                }
                w.finish()?;
            }
        }
        self.resident = 0;
        Ok(())
    }

    /// Seal `partition`'s spill run and return a snapshot of it for the
    /// prefetcher. After this call no more bytes are ever appended to the
    /// returned files (new spills open a fresh segment), so another thread
    /// may read them concurrently. The segments remain registered and on
    /// disk: dropping the claim without [`consume_claimed`] loses nothing —
    /// a later [`drain`] replays them as usual.
    ///
    /// [`consume_claimed`]: MsgManager::consume_claimed
    /// [`drain`]: MsgManager::drain
    pub fn claim(&mut self, partition: u32) -> Result<ClaimedSegments> {
        // Sealed files must be complete before another thread reads them.
        if let Some(writer) = &self.writer {
            writer.wait_quiescent()?;
        }
        let p = partition as usize;
        self.open_seg[p] = None;
        let paths =
            self.segments[p].iter().map(|&s| self.seg_path(partition, s)).collect::<Vec<_>>();
        Ok(ClaimedSegments { partition, count: paths.len(), paths })
    }

    /// Retire a claim whose messages were applied by the caller: removes the
    /// claimed segment prefix, deletes the files, and accounts `replayed`
    /// messages. Only call after actually applying the prefetched messages.
    pub fn consume_claimed(&mut self, claim: &ClaimedSegments, replayed: u64) -> Result<()> {
        let p = claim.partition as usize;
        debug_assert!(
            claim.count <= self.segments[p].len(),
            "claim outlived a drain of partition {}",
            claim.partition
        );
        let retired: Vec<u32> = self.segments[p].drain(..claim.count).collect();
        for seg in retired {
            let path = self.seg_path(claim.partition, seg);
            std::fs::remove_file(&path).ctx("remove", &path)?;
        }
        self.counters.replayed += replayed;
        Ok(())
    }

    /// Replay and clear everything queued for `partition`, calling `apply`
    /// in exact send order (spill segments first, oldest first — they hold
    /// the older messages — then the in-memory tail).
    pub fn drain<F>(&mut self, partition: u32, mut apply: F) -> Result<u64>
    where
        F: FnMut(VertexId, M),
    {
        let p = partition as usize;
        // The spill files must be complete before they are replayed.
        if let Some(writer) = &self.writer {
            writer.wait_quiescent()?;
        }
        let mut replayed = 0u64;
        for seg in std::mem::take(&mut self.segments[p]) {
            let path = self.seg_path(partition, seg);
            for env in RecordReader::<Envelope<M>>::open(&path, Arc::clone(&self.stats))? {
                let (dst, msg) = env?;
                apply(dst, msg);
                replayed += 1;
            }
            std::fs::remove_file(&path).ctx("remove", &path)?;
        }
        self.open_seg[p] = None;
        let tail = std::mem::take(&mut self.buffers[p]);
        self.resident -= tail.len();
        for (dst, msg) in tail {
            apply(dst, msg);
            replayed += 1;
        }
        self.counters.replayed += replayed;
        Ok(replayed)
    }

    /// Total messages currently queued (memory + disk).
    pub fn pending(&self) -> u64 {
        self.counters.buffered - self.counters.replayed
    }

    pub fn counters(&self) -> MsgCounters {
        self.counters
    }

    /// Directory holding the spill files.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Force every in-memory buffer to its spill segment (checkpointing:
    /// afterwards the directory contents are the complete message state).
    pub fn flush(&mut self) -> Result<()> {
        self.spill_all()?;
        if let Some(writer) = &self.writer {
            writer.wait_quiescent()?;
        }
        Ok(())
    }

    /// Rebuild in-memory bookkeeping after the spill directory was restored
    /// from a checkpoint: segment lists come from a directory scan (the
    /// zero-padded names sort in creation order), counters from the
    /// checkpoint metadata.
    pub fn restore(&mut self, counters: MsgCounters) {
        for p in 0..self.buffers.len() {
            self.buffers[p].clear();
            self.segments[p].clear();
            self.open_seg[p] = None;
            self.next_seg[p] = 0;
        }
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        for name in names {
            let Some(rest) = name.strip_prefix("msgs-").and_then(|r| r.strip_suffix(".bin"))
            else {
                continue;
            };
            let Some((p_str, s_str)) = rest.split_once('-') else { continue };
            let (Ok(p), Ok(s)) = (p_str.parse::<u32>(), s_str.parse::<u32>()) else { continue };
            if (p as usize) < self.segments.len() {
                self.segments[p as usize].push(s);
                self.next_seg[p as usize] = self.next_seg[p as usize].max(s + 1);
            }
        }
        self.resident = 0;
        self.counters = counters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    fn manager(cap_bytes: u64) -> (ScratchDir, MsgManager<u32>) {
        let dir = ScratchDir::new("msgmgr").unwrap();
        let m = MsgManager::new(dir.path().join("msgs"), 4, cap_bytes, IoStats::new()).unwrap();
        (dir, m)
    }

    #[test]
    fn messages_replay_in_send_order() {
        let (_dir, mut m) = manager(1 << 20);
        for i in 0..10u32 {
            m.enqueue(1, i, i * 100).unwrap();
        }
        let mut seen = Vec::new();
        m.drain(1, |dst, msg| seen.push((dst, msg))).unwrap();
        assert_eq!(seen, (0..10u32).map(|i| (i, i * 100)).collect::<Vec<_>>());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn spill_preserves_order_across_boundary() {
        // Cap of 3 envelopes forces repeated spills.
        let (_dir, mut m) = manager((4 + 4) * 3);
        for i in 0..20u32 {
            m.enqueue(2, i, i).unwrap();
        }
        assert!(m.counters().spilled > 0, "cap should have forced spills");
        let mut seen = Vec::new();
        m.drain(2, |dst, _| seen.push(dst)).unwrap();
        assert_eq!(seen, (0..20u32).collect::<Vec<_>>());
    }

    #[test]
    fn partitions_are_isolated() {
        let (_dir, mut m) = manager(16);
        m.enqueue(0, 1, 10).unwrap();
        m.enqueue(3, 2, 20).unwrap();
        m.enqueue(0, 3, 30).unwrap();
        let mut p0 = Vec::new();
        m.drain(0, |dst, msg| p0.push((dst, msg))).unwrap();
        assert_eq!(p0, vec![(1, 10), (3, 30)]);
        assert_eq!(m.pending(), 1);
        let mut p3 = Vec::new();
        m.drain(3, |dst, msg| p3.push((dst, msg))).unwrap();
        assert_eq!(p3, vec![(2, 20)]);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn drain_is_idempotent_when_empty() {
        let (_dir, mut m) = manager(1024);
        let n = m.drain(0, |_, _: u32| {}).unwrap();
        assert_eq!(n, 0);
        assert_eq!(m.counters(), MsgCounters::default());
    }

    #[test]
    fn background_writer_produces_identical_files() {
        let send = |m: &mut MsgManager<u32>| {
            for i in 0..500u32 {
                m.enqueue(i % 3, i, i.wrapping_mul(31)).unwrap();
            }
            m.flush().unwrap();
        };
        let dir_a = ScratchDir::new("msg-sync").unwrap();
        let mut sync_m: MsgManager<u32> =
            MsgManager::new(dir_a.path().join("m"), 3, 64, IoStats::new()).unwrap();
        send(&mut sync_m);
        let dir_b = ScratchDir::new("msg-bg").unwrap();
        let mut bg_m: MsgManager<u32> =
            MsgManager::new(dir_b.path().join("m"), 3, 64, IoStats::new())
                .unwrap()
                .with_background_writer(None)
                .unwrap();
        send(&mut bg_m);
        for p in 0..3 {
            // No claims happened, so each partition has exactly segment 0.
            let name = format!("msgs-{p:05}-00000.bin");
            let a = std::fs::read(dir_a.path().join("m").join(&name)).unwrap();
            let b = std::fs::read(dir_b.path().join("m").join(&name)).unwrap();
            assert_eq!(a, b, "partition {p} spill files must be byte-identical");
        }
        // And both drain to the same ordered stream.
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        for p in 0..3u32 {
            sync_m.drain(p, |d, v| seen_a.push((d, v))).unwrap();
            bg_m.drain(p, |d, v| seen_b.push((d, v))).unwrap();
        }
        assert_eq!(seen_a, seen_b);
    }

    #[test]
    fn background_writer_drop_is_clean() {
        // Dropping mid-flight must join the thread without hanging.
        let dir = ScratchDir::new("msg-bg-drop").unwrap();
        let mut m: MsgManager<u64> =
            MsgManager::new(dir.path().join("m"), 2, 32, IoStats::new())
                .unwrap()
                .with_background_writer(None)
                .unwrap();
        for i in 0..1000u32 {
            m.enqueue(i % 2, i, i as u64).unwrap();
        }
        drop(m);
    }

    #[test]
    fn interleaved_enqueue_drain_cycles() {
        let (_dir, mut m) = manager(40); // tiny: spills constantly
        m.enqueue(0, 1, 100).unwrap();
        m.drain(0, |_, _| {}).unwrap();
        m.enqueue(0, 2, 200).unwrap();
        m.enqueue(0, 3, 300).unwrap();
        let mut seen = Vec::new();
        m.drain(0, |dst, _| seen.push(dst)).unwrap();
        assert_eq!(seen, vec![2, 3]);
        assert_eq!(m.pending(), 0);
        assert_eq!(m.counters().buffered, 3);
        assert_eq!(m.counters().replayed, 3);
    }

    /// Read every envelope out of a claimed run, the way the prefetcher does.
    fn read_claim(claim: &ClaimedSegments, stats: Arc<IoStats>) -> Vec<(VertexId, u32)> {
        let mut out = Vec::new();
        for path in &claim.paths {
            for env in RecordReader::<Envelope<u32>>::open(path, Arc::clone(&stats)).unwrap() {
                out.push(env.unwrap());
            }
        }
        out
    }

    #[test]
    fn claim_seals_run_and_consume_retires_it() {
        let (_dir, mut m) = manager((4 + 4) * 2); // spills every 3rd message
        for i in 0..9u32 {
            m.enqueue(0, i, i).unwrap();
        }
        m.flush().unwrap();
        let claim = m.claim(0).unwrap();
        assert!(!claim.is_empty());
        // Spills after the claim must not land in the sealed segment.
        for i in 9..15u32 {
            m.enqueue(0, i, i).unwrap();
        }
        m.flush().unwrap();
        let pre = read_claim(&claim, IoStats::new());
        assert_eq!(pre.iter().map(|e| e.0).collect::<Vec<_>>(), (0..9).collect::<Vec<_>>());
        m.consume_claimed(&claim, pre.len() as u64).unwrap();
        // The remainder (post-claim segment + tail) drains in order.
        let mut rest = Vec::new();
        m.drain(0, |d, _| rest.push(d)).unwrap();
        assert_eq!(rest, (9..15).collect::<Vec<_>>());
        assert_eq!(m.pending(), 0);
        assert_eq!(m.counters().replayed, 15);
    }

    #[test]
    fn discarded_claim_loses_nothing() {
        let (_dir, mut m) = manager((4 + 4) * 2);
        for i in 0..9u32 {
            m.enqueue(0, i, i).unwrap();
        }
        m.flush().unwrap();
        let claim = m.claim(0).unwrap();
        drop(claim); // prefetch discarded — e.g. run converged or checkpoint restored
        for i in 9..12u32 {
            m.enqueue(0, i, i).unwrap();
        }
        let mut seen = Vec::new();
        m.drain(0, |d, _| seen.push(d)).unwrap();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn restore_rebuilds_segments_from_directory() {
        let dir = ScratchDir::new("msg-restore").unwrap();
        let path = dir.path().join("m");
        let mut m: MsgManager<u32> =
            MsgManager::new(path.clone(), 2, (4 + 4) * 2, IoStats::new()).unwrap();
        for i in 0..9u32 {
            m.enqueue(0, i, i).unwrap();
        }
        m.flush().unwrap();
        // Seal + spill again so partition 0 has two segments on disk.
        let _ = m.claim(0).unwrap();
        for i in 9..12u32 {
            m.enqueue(0, i, i).unwrap();
        }
        m.flush().unwrap();
        let counters = m.counters();
        drop(m);
        // Fresh manager over the same directory, as after checkpoint restore.
        let mut m2: MsgManager<u32> =
            MsgManager::new(path, 2, 1 << 20, IoStats::new()).unwrap();
        m2.restore(counters);
        let mut seen = Vec::new();
        m2.drain(0, |d, _| seen.push(d)).unwrap();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        // New spills must not collide with the replayed segment ids.
        for i in 0..5u32 {
            m2.enqueue(0, i, i).unwrap();
        }
        m2.flush().unwrap();
        let mut again = Vec::new();
        m2.drain(0, |d, _| again.push(d)).unwrap();
        assert_eq!(again, (0..5).collect::<Vec<_>>());
    }
}
