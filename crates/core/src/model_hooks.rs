//! Hooks for the `graphz-check` model checker (feature `model` only).
//!
//! The model checker rebuilds the Sio → Dispatcher → Worker → MsgManager →
//! Prefetcher pipeline as virtual [`crossbeam::model`] nodes. For its
//! verdicts to say anything about the real engine, the model must make the
//! *same scheduling decisions* the engine makes — so this module re-exports
//! the exact functions and constants the engine uses, instead of letting
//! the model duplicate them:
//!
//! * the deterministic shard plan ([`plan_shards`], [`shard_of`],
//!   [`split_batch`]) — the heart of the bit-identical guarantee;
//! * every pipeline queue's default capacity, collected by [`queue_caps`]
//!   from the same constants the engine's constructors read.
//!
//! Nothing here exists in a normal build; the feature is additive.

pub use crate::sio::DEFAULT_SIO_QUEUE_CAP;
pub use crate::worker::{plan_shards, shard_of, split_batch, DEFAULT_JOB_QUEUE_CAP, MIN_SHARD_VERTICES};
pub use crate::msgmanager::DEFAULT_SPILL_QUEUE_CAP;

use graphz_types::EngineOptions;

/// The capacity of every bounded queue in the engine pipeline, as the
/// engine would size them for `options`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineQueueCaps {
    /// Sio thread → Worker batch channel.
    pub sio: usize,
    /// Engine → each pooled worker's job queue.
    pub worker_jobs: usize,
    /// Pooled workers → engine results queue (one partition's worth of
    /// shard results by default).
    pub worker_results: usize,
    /// Worker → background MsgManager spill queue.
    pub spill: usize,
    /// Engine ↔ prefetcher request/response queues (always 1: double
    /// buffering means exactly one load in flight).
    pub prefetch: usize,
}

/// Mirror of how `Engine::run`, `WorkerPool::spawn`,
/// `stream_partition_weighted`, and `BackgroundWriter::spawn` size their
/// queues for `options` (`queue_cap` overrides everything except the
/// structurally capacity-1 prefetch pair).
pub fn queue_caps(options: &EngineOptions) -> PipelineQueueCaps {
    let cap = options.queue_cap;
    PipelineQueueCaps {
        sio: cap.unwrap_or(DEFAULT_SIO_QUEUE_CAP).max(1),
        worker_jobs: cap.unwrap_or(DEFAULT_JOB_QUEUE_CAP).max(1),
        worker_results: cap.unwrap_or(options.worker_shards.max(1)).max(1),
        spill: cap.unwrap_or(DEFAULT_SPILL_QUEUE_CAP).max(1),
        prefetch: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_caps_follow_override() {
        let d = queue_caps(&EngineOptions::default());
        assert_eq!(d.sio, DEFAULT_SIO_QUEUE_CAP);
        assert_eq!(d.worker_jobs, DEFAULT_JOB_QUEUE_CAP);
        assert_eq!(d.spill, DEFAULT_SPILL_QUEUE_CAP);
        assert_eq!(d.prefetch, 1);
        let one = queue_caps(&EngineOptions::default().with_queue_cap(1));
        assert_eq!(
            one,
            PipelineQueueCaps { sio: 1, worker_jobs: 1, worker_results: 1, spill: 1, prefetch: 1 }
        );
    }
}
