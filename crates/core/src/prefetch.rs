//! Partition prefetcher: GridGraph-style double buffering for the engine's
//! partition loop.
//!
//! While partition *p* computes, a background thread loads partition
//! *p + 1*: its partition index, its vertex slab (read through a separate
//! file handle — the regions are disjoint from whatever the engine is
//! writing), and its *claimed* spilled-message run (see
//! [`MsgManager::claim`]). At most one request is in flight, so exactly two
//! partition buffers ever exist: the one computing and the one loading.
//!
//! Prefetching is pure scheduling. The claim protocol guarantees no message
//! is ever lost if a prefetch is discarded, and the engine applies
//! prefetched state through the same code path as a synchronous load, so
//! results are bit-identical with the prefetcher on or off.
//!
//! [`MsgManager::claim`]: crate::msgmanager::MsgManager::claim

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use graphz_io::{IoStats, RecordReader, TrackedFile};
use graphz_types::{FixedCodec, IoCtx, Result, VertexId};

use crate::msgmanager::ClaimedSegments;
use crate::program::VertexProgram;
use crate::store::GraphStore;

struct Request {
    partition: u32,
    a: VertexId,
    b: VertexId,
    claim: ClaimedSegments,
}

/// A fully loaded partition, ready for the Worker.
pub struct Prefetched<P: VertexProgram> {
    pub partition: u32,
    pub start_edge: u64,
    pub degrees: Vec<u32>,
    pub slab: Vec<P::VertexData>,
    /// Decoded messages of the claimed spill run, in send order.
    pub msgs: Vec<(VertexId, P::Message)>,
    /// The claim to retire via [`MsgManager::consume_claimed`] after `msgs`
    /// has been applied.
    ///
    /// [`MsgManager::consume_claimed`]: crate::msgmanager::MsgManager::consume_claimed
    pub claim: ClaimedSegments,
}

enum Response<P: VertexProgram> {
    Ready(Box<Prefetched<P>>),
    /// The load failed; the engine falls back to a synchronous load, which
    /// will surface the underlying error through the normal path.
    Failed,
}

/// Handle to the background loading thread. One outstanding request at a
/// time (double buffering).
pub struct Prefetcher<P: VertexProgram> {
    tx: Option<Sender<Request>>,
    rx: Receiver<Response<P>>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: Arc<IoStats>,
    outstanding: Option<u32>,
}

impl<P: VertexProgram> Prefetcher<P> {
    pub fn spawn(
        store: Arc<dyn GraphStore>,
        vertices_path: &Path,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        let (tx, req_rx) = bounded::<Request>(1);
        let (resp_tx, rx) = bounded::<Response<P>>(1);
        // A dedicated read handle: the engine's write handle and this one
        // only ever touch disjoint partition regions.
        let mut vfile =
            TrackedFile::open(vertices_path, Arc::clone(&stats)).ctx("open", vertices_path)?;
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("graphz-prefetch".into())
            .spawn(move || {
                for req in req_rx {
                    let response = match load::<P>(&store, &mut vfile, &thread_stats, req) {
                        Ok(p) => Response::Ready(Box::new(p)),
                        Err(_) => Response::Failed,
                    };
                    if resp_tx.send(response).is_err() {
                        return; // engine hung up
                    }
                }
            })
            .map_err(std::io::Error::other)?;
        Ok(Prefetcher { tx: Some(tx), rx, handle: Some(handle), stats, outstanding: None })
    }

    /// Ask for partition `[a, b)` to be loaded in the background. Callers
    /// must `take` or `discard` the previous request first.
    pub fn request(&mut self, partition: u32, a: VertexId, b: VertexId, claim: ClaimedSegments) {
        assert!(self.outstanding.is_none(), "one prefetch request at a time");
        let req = Request { partition, a, b, claim };
        // A shut-down prefetcher quietly declines: the engine then loads the
        // partition synchronously, same as a failed prefetch.
        let Some(tx) = self.tx.as_ref() else { return };
        if tx.send(req).is_ok() {
            self.outstanding = Some(partition);
        }
    }

    /// Collect the prefetched buffer for `partition`, if that is what is in
    /// flight. Counts a hit when the buffer was already waiting, a stall
    /// when the engine had to wait for it (or the load failed — the caller
    /// then loads synchronously).
    pub fn take(&mut self, partition: u32) -> Option<Prefetched<P>> {
        if self.outstanding != Some(partition) {
            return None;
        }
        let response = match self.rx.try_recv() {
            Ok(r) => {
                self.stats.record_prefetch_hit();
                r
            }
            Err(_) => {
                self.stats.record_prefetch_stall();
                self.rx.recv().ok()?
            }
        };
        self.outstanding = None;
        match response {
            Response::Ready(p) => Some(*p),
            Response::Failed => None,
        }
    }

    /// Drop whatever is in flight (end of run, or a restore invalidated the
    /// buffers). The unconsumed claim loses nothing — the segments are
    /// still registered with the MsgManager.
    pub fn discard(&mut self) {
        if self.outstanding.take().is_some() {
            let _ = self.rx.recv();
            self.stats.record_prefetch_wasted();
        }
    }
}

impl<P: VertexProgram> Drop for Prefetcher<P> {
    fn drop(&mut self) {
        self.discard();
        drop(self.tx.take()); // close the queue; the thread exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn load<P: VertexProgram>(
    store: &Arc<dyn GraphStore>,
    vfile: &mut TrackedFile,
    stats: &Arc<IoStats>,
    req: Request,
) -> Result<Prefetched<P>> {
    let (start_edge, degrees) = store.partition_index(req.a, req.b, stats)?;
    let count = (req.b - req.a) as usize;
    let mut bytes = vec![0u8; count * P::VertexData::SIZE];
    vfile.seek(SeekFrom::Start(req.a as u64 * P::VertexData::SIZE as u64))?;
    vfile.read_exact(&mut bytes)?;
    let slab = graphz_types::codec::decode_slice(&bytes);
    let mut msgs: Vec<(VertexId, P::Message)> = Vec::new();
    for path in &req.claim.paths {
        for env in RecordReader::<(VertexId, P::Message)>::open(path, Arc::clone(stats))? {
            msgs.push(env?);
        }
    }
    Ok(Prefetched { partition: req.partition, start_edge, degrees, slab, msgs, claim: req.claim })
}
