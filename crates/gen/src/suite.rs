//! The scaled evaluation suite (DESIGN.md §6, standing in for paper
//! Table X) and the Table VIII SNAP-graph analogues.
//!
//! Graph files are generated once into a cache directory and reused across
//! benchmark binaries, mirroring how the paper converts each input graph
//! once and amortizes it over many computations.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_io::IoStats;
use graphz_storage::EdgeListFile;
use graphz_types::Result;

use crate::rmat::{rmat_edges, RmatParams};

/// The paper's four evaluation sizes (Table X).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphSize {
    /// Fits in the memory budget (LiveJournal analogue).
    Small,
    /// ~1.6x the budget (Friendster analogue).
    Medium,
    /// ~4x the budget (YahooWeb analogue).
    Large,
    /// ~12x the budget; its CSR vertex index alone exceeds the budget, which
    /// is what makes GraphChi fail in Fig. 5 (Sim analogue).
    XLarge,
}

impl GraphSize {
    pub fn all() -> [GraphSize; 4] {
        [GraphSize::Small, GraphSize::Medium, GraphSize::Large, GraphSize::XLarge]
    }

    pub fn name(self) -> &'static str {
        match self {
            GraphSize::Small => "small",
            GraphSize::Medium => "medium",
            GraphSize::Large => "large",
            GraphSize::XLarge => "xlarge",
        }
    }

    /// The paper graph each size stands in for.
    pub fn analogue(self) -> &'static str {
        match self {
            GraphSize::Small => "LiveJournal",
            GraphSize::Medium => "Friendster",
            GraphSize::Large => "YahooWeb",
            GraphSize::XLarge => "Sim",
        }
    }

    pub fn spec(self) -> GraphSpec {
        match self {
            GraphSize::Small => GraphSpec::new("small", 16, 750_000, 1001),
            GraphSize::Medium => GraphSpec::new("medium", 17, 1_600_000, 1002),
            GraphSize::Large => GraphSpec::new("large", 19, 4_000_000, 1003),
            GraphSize::XLarge => GraphSpec::new("xlarge", 21, 12_000_000, 1004),
        }
    }
}

impl std::fmt::Display for GraphSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, fully deterministic R-MAT graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    pub name: &'static str,
    pub scale: u32,
    pub num_edges: u64,
    pub seed: u64,
    pub params: RmatParams,
}

impl GraphSpec {
    pub const fn new(name: &'static str, scale: u32, num_edges: u64, seed: u64) -> Self {
        GraphSpec {
            name,
            scale,
            num_edges,
            seed,
            params: RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: 0.1 },
        }
    }

    /// Scaled-down analogues of the five SNAP graphs in Table VIII, keeping
    /// each graph's edges-per-vertex density so the unique-degree counts are
    /// comparable in spirit.
    pub fn snap_analogues() -> Vec<GraphSpec> {
        vec![
            // as-skitter: 1.7M v, 11M e (density ~6.5)
            GraphSpec::new("as-skitter", 15, 210_000, 2001),
            // cit-patents: 3.8M v, 16.5M e (density ~4.4)
            GraphSpec::new("cit-patents", 16, 290_000, 2002),
            // com-orkut: 3.1M v, 117M e (density ~38)
            GraphSpec::new("com-orkut", 14, 620_000, 2003),
            // higgs-twitter: 457K v, 15M e (density ~33)
            GraphSpec::new("higgs-twitter", 13, 270_000, 2004),
            // wiki-talk: 2.4M v, 5M e (density ~2.1)
            GraphSpec::new("wiki-talk", 16, 140_000, 2005),
        ]
    }

    /// Generate (or reuse) the binary edge list under `cache_dir`.
    pub fn ensure(&self, cache_dir: &Path, stats: Arc<IoStats>) -> Result<EdgeListFile> {
        ensure_generated(self, cache_dir, stats)
    }

    fn file_name(&self) -> String {
        format!("{}-s{}-e{}-r{}.bin", self.name, self.scale, self.num_edges, self.seed)
    }
}

/// Generate `spec` into `cache_dir` unless an up-to-date copy already exists.
pub fn ensure_generated(
    spec: &GraphSpec,
    cache_dir: &Path,
    stats: Arc<IoStats>,
) -> Result<EdgeListFile> {
    std::fs::create_dir_all(cache_dir)?;
    let path: PathBuf = cache_dir.join(spec.file_name());
    if path.exists() {
        if let Ok(f) = EdgeListFile::open(&path) {
            return Ok(f);
        }
        // Stale or corrupt cache entry: regenerate.
    }
    let edges = rmat_edges(spec.scale, spec.num_edges, spec.params, spec.seed);
    EdgeListFile::create(&path, stats, edges)
}

/// Default on-disk cache used by benches and examples:
/// `$GRAPHZ_CACHE` or `<temp>/graphz-graph-cache`.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("GRAPHZ_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("graphz-graph-cache"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    #[test]
    fn sizes_have_increasing_footprints() {
        let specs: Vec<_> = GraphSize::all().iter().map(|s| s.spec()).collect();
        for w in specs.windows(2) {
            assert!(w[0].num_edges < w[1].num_edges);
            assert!(w[0].scale <= w[1].scale);
        }
        assert_eq!(GraphSize::Small.name(), "small");
        assert_eq!(GraphSize::Large.analogue(), "YahooWeb");
        assert_eq!(GraphSize::Medium.to_string(), "medium");
    }

    #[test]
    fn ensure_generates_then_reuses() {
        let dir = ScratchDir::new("suite").unwrap();
        let stats = IoStats::new();
        let spec = GraphSpec::new("tiny", 8, 500, 1);
        let f1 = spec.ensure(dir.path(), Arc::clone(&stats)).unwrap();
        assert_eq!(f1.meta().num_edges, 500);
        let mtime = std::fs::metadata(f1.path()).unwrap().modified().unwrap();
        let f2 = spec.ensure(dir.path(), Arc::clone(&stats)).unwrap();
        assert_eq!(std::fs::metadata(f2.path()).unwrap().modified().unwrap(), mtime);
        assert_eq!(f1.meta(), f2.meta());
    }

    #[test]
    fn corrupt_cache_regenerates() {
        let dir = ScratchDir::new("suite-bad").unwrap();
        let stats = IoStats::new();
        let spec = GraphSpec::new("tiny2", 8, 100, 2);
        let f1 = spec.ensure(dir.path(), Arc::clone(&stats)).unwrap();
        // Clobber the sidecar so open() fails.
        let mut meta_path = f1.path().as_os_str().to_owned();
        meta_path.push(".meta.txt");
        std::fs::write(&meta_path, "garbage").unwrap();
        let f2 = spec.ensure(dir.path(), stats).unwrap();
        assert_eq!(f2.meta().num_edges, 100);
    }

    #[test]
    fn snap_analogues_are_distinct() {
        let specs = GraphSpec::snap_analogues();
        assert_eq!(specs.len(), 5);
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 5);
    }
}
