//! R-MAT (recursive matrix) and Erdős–Rényi edge generators.

use graphz_types::{Edge, VertexId};
use rand::prelude::*;

/// R-MAT quadrant probabilities. The defaults are the Graph500 parameters
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`, which produce the power-law
/// degree distributions natural graphs exhibit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
    /// Per-level probability perturbation; keeps the recursion from
    /// producing an unnaturally smooth distribution.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: 0.1 }
    }
}

impl RmatParams {
    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "R-MAT probabilities must sum to 1, got {sum}");
        assert!(self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && self.d > 0.0);
        assert!((0.0..1.0).contains(&self.noise));
    }
}

/// Generate `num_edges` R-MAT edges over a `2^scale` vertex space.
///
/// Deterministic for a given `(scale, num_edges, params, seed)` — every
/// engine and every bench run sees byte-identical graphs.
pub fn rmat_edges(
    scale: u32,
    num_edges: u64,
    params: RmatParams,
    seed: u64,
) -> impl Iterator<Item = Edge> {
    params.validate();
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges).map(move |_| {
        let mut src: VertexId = 0;
        let mut dst: VertexId = 0;
        for _ in 0..scale {
            // Perturb the quadrant probabilities a little at each level.
            let jitter = |p: f64, r: &mut StdRng| {
                p * (1.0 - params.noise + 2.0 * params.noise * r.random::<f64>())
            };
            let a = jitter(params.a, &mut rng);
            let b = jitter(params.b, &mut rng);
            let c = jitter(params.c, &mut rng);
            let d = jitter(params.d, &mut rng);
            let total = a + b + c + d;
            let roll = rng.random::<f64>() * total;
            src <<= 1;
            dst <<= 1;
            if roll < a {
                // top-left: no bits set
            } else if roll < a + b {
                dst |= 1;
            } else if roll < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        Edge::new(src, dst)
    })
}

/// Generate `num_edges` uniform random edges over `num_vertices` vertices.
///
/// The near-uniform degree distribution is the *worst case* for
/// degree-ordered storage (many vertices share few distinct degrees but
/// there is no heavy head to pack into the first partition) — used by tests
/// and the locality ablation.
pub fn erdos_renyi(
    num_vertices: u64,
    num_edges: u64,
    seed: u64,
) -> impl Iterator<Item = Edge> {
    assert!(num_vertices > 0 && num_vertices <= u32::MAX as u64 + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_edges).map(move |_| {
        Edge::new(
            rng.random_range(0..num_vertices) as VertexId,
            rng.random_range(0..num_vertices) as VertexId,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rmat_is_deterministic() {
        let a: Vec<Edge> = rmat_edges(10, 1000, RmatParams::default(), 7).collect();
        let b: Vec<Edge> = rmat_edges(10, 1000, RmatParams::default(), 7).collect();
        assert_eq!(a, b);
        let c: Vec<Edge> = rmat_edges(10, 1000, RmatParams::default(), 8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_ids_within_scale() {
        for e in rmat_edges(8, 5000, RmatParams::default(), 1) {
            assert!(e.src < 256 && e.dst < 256);
        }
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let mut deg: HashMap<VertexId, u64> = HashMap::new();
        for e in rmat_edges(12, 40_000, RmatParams::default(), 3) {
            *deg.entry(e.src).or_default() += 1;
        }
        let max = *deg.values().max().unwrap();
        let mean = 40_000.0 / deg.len() as f64;
        // Power-law head: the hub should dwarf the mean degree.
        assert!(
            max as f64 > mean * 10.0,
            "expected a heavy head, max {max} vs mean {mean:.1}"
        );
        // And the number of unique degrees must be small vs vertices
        // (the property Table VIII documents).
        let unique: std::collections::HashSet<u64> = deg.values().copied().collect();
        assert!(unique.len() * 10 < deg.len(), "{} unique / {} vertices", unique.len(), deg.len());
    }

    #[test]
    fn erdos_renyi_covers_range() {
        let edges: Vec<Edge> = erdos_renyi(100, 10_000, 9).collect();
        assert_eq!(edges.len(), 10_000);
        assert!(edges.iter().all(|e| e.src < 100 && e.dst < 100));
        let distinct_srcs: std::collections::HashSet<u32> =
            edges.iter().map(|e| e.src).collect();
        assert!(distinct_srcs.len() > 90, "uniform sampling should hit most vertices");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_validates_probabilities() {
        let bad = RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5, noise: 0.1 };
        let _ = rmat_edges(4, 1, bad, 0).count();
    }
}
