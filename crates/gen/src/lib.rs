//! Deterministic graph generators and the paper's scaled evaluation suite.
//!
//! The paper evaluates on LiveJournal, Friendster, YahooWeb, and a synthetic
//! "Sim" graph "generated according to [R-MAT]". We cannot redistribute the
//! SNAP/Yahoo datasets, so the whole suite is synthetic: R-MAT power-law
//! graphs whose *size relative to the memory budget* matches the paper's
//! graphs relative to its machine's RAM (DESIGN.md §3 and §6). R-MAT
//! reproduces the property DOS exploits — a heavy-tailed degree distribution
//! with few unique degrees — and, like real crawls, leaves many ids in the
//! vertex space unused (paper §III-B: max id well above the vertex count).

#![forbid(unsafe_code)]

pub mod rmat;
pub mod suite;

pub use rmat::{erdos_renyi, rmat_edges, RmatParams};
pub use suite::{ensure_generated, GraphSize, GraphSpec};
