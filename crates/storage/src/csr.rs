//! Compressed sparse rows — the conventional format DOS is measured against.
//!
//! CSR stores one offset per vertex, so the index is `8 * (V + 1)` bytes.
//! The paper's point (§III-A, Table XI) is that for billion-vertex graphs
//! this index itself outgrows memory, forcing two disk accesses per vertex
//! lookup; DOS replaces it with a per-unique-degree table. We implement both
//! so the comparison is reproducible: [`CsrGraph`] for in-memory analytics
//! (the "plain C" reference rows of Tables I/II) and [`CsrFiles`] for the
//! on-disk layout the GraphChi-class baseline indexes with.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_extsort::ExternalSorter;
use graphz_io::{IoStats, RecordReader, RecordWriter, ScratchDir};
use graphz_types::prelude::*;

use crate::edgelist::EdgeListFile;
use crate::meta::MetaFile;

/// In-memory CSR graph: `offsets[v]..offsets[v+1]` indexes `dsts`.
///
/// Offsets are held as `usize` — they index the in-memory `dsts` vector, so
/// anything that fits the vector fits the type; the one `u64 → usize`
/// narrowing happens fallibly at the disk boundary in [`CsrFiles::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    dsts: Vec<VertexId>,
}

impl CsrGraph {
    /// Build from an unordered edge slice. `num_vertices` must exceed every
    /// id that appears.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut offsets = vec![0usize; num_vertices + 1];
        for e in edges {
            assert!(
                cast::vertex_index(e.src) < num_vertices
                    && cast::vertex_index(e.dst) < num_vertices
            );
            offsets[cast::vertex_index(e.src) + 1] += 1;
        }
        for i in 0..num_vertices {
            // Prefix sum of per-vertex degree counts. Re-verified (PR 8):
            // the running total is monotone and ends at exactly
            // edges.len(), which a `&[Edge]` bounds to isize::MAX, so the
            // `+=` cannot wrap; `i + 1 <= num_vertices` indexes a vec of
            // len num_vertices + 1. The rule flags the RHS read adjacent
            // to `+=` and cannot see either bound.
            // audit:allow(unchecked-offset-arith)
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut dsts: Vec<VertexId> = vec![0; edges.len()];
        for e in edges {
            let at = cursor[cast::vertex_index(e.src)];
            dsts[at] = e.dst;
            cursor[cast::vertex_index(e.src)] += 1;
        }
        // Sort each adjacency list so iteration order is deterministic and
        // independent of input edge order.
        let mut g = CsrGraph { offsets, dsts };
        for v in 0..num_vertices {
            let (a, b) = (g.offsets[v], g.offsets[v + 1]);
            g.dsts[a..b].sort_unstable();
        }
        g
    }

    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    #[inline]
    fn range(&self, v: VertexId) -> (usize, usize) {
        (self.offsets[cast::vertex_index(v)], self.offsets[cast::vertex_index(v) + 1])
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        let (a, b) = self.range(v);
        // Out-degrees are bounded by the u32 id space (VertexId = u32), so
        // a list longer than u32::MAX means the graph itself is malformed.
        cast::usize_to_u32(b - a, "csr out-degree").expect("out-degree bounded by id space")
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = self.range(v);
        &self.dsts[a..b]
    }

    /// Iterate `(src, dst)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            let src = cast::usize_to_u32(v, "csr vertex id").expect("vertex ids fit u32");
            self.neighbors(src).iter().map(move |&d| Edge::new(src, d))
        })
    }

    /// Bytes the CSR vertex index (the offsets array) occupies on disk
    /// (8 bytes per entry).
    pub fn index_bytes(&self) -> u64 {
        cast::len_u64(self.offsets.len()).saturating_mul(8)
    }
}

/// On-disk CSR layout: `offsets.bin` (u64 per vertex + 1) and `edges.bin`
/// (u32 destination per edge, grouped by source).
#[derive(Debug, Clone)]
pub struct CsrFiles {
    dir: PathBuf,
    meta: GraphMeta,
}

impl CsrFiles {
    pub fn offsets_path(&self) -> PathBuf {
        self.dir.join("offsets.bin")
    }

    pub fn edges_path(&self) -> PathBuf {
        self.dir.join("edges.bin")
    }

    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Size of the on-disk vertex index in bytes: `8 * (V + 1)`.
    ///
    /// This is the "GraphChi" row of Table XI.
    pub fn index_bytes(&self) -> u64 {
        (self.meta.num_vertices + 1) * 8
    }

    /// Convert an edge list into on-disk CSR under `dir`.
    ///
    /// Uses an external sort by `(src, dst)` followed by a single sequential
    /// pass, so conversion runs within `budget` regardless of graph size.
    pub fn convert(
        input: &EdgeListFile,
        dir: &Path,
        stats: Arc<IoStats>,
        budget: MemoryBudget,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir).ctx("create-dir", dir)?;
        let scratch = ScratchDir::new("csr-convert")?;
        let sorted = scratch.file("by-src.bin");
        ExternalSorter::new(|e: &Edge| (e.src, e.dst), budget, Arc::clone(&stats)).sort_file(
            input.path(),
            &sorted,
            &scratch,
        )?;

        let meta = input.meta();
        // Baseline CSR converter (GraphChi-style reference rows): it has no
        // FaultSurface in its API and sits outside the ingest fault
        // boundary, so its writers are deliberately raw (DESIGN.md §6j).
        let offsets_path = dir.join("offsets.bin");
        let mut offsets =
            // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
            RecordWriter::<u64>::create(&offsets_path, Arc::clone(&stats)).ctx("create", &offsets_path)?;
        let edges_path = dir.join("edges.bin");
        // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
        let mut edges = RecordWriter::<VertexId>::create(&edges_path, Arc::clone(&stats))
            .ctx("create", &edges_path)?;
        let mut next_vertex: u64 = 0;
        let mut written_edges: u64 = 0;
        for e in RecordReader::<Edge>::open(&sorted, Arc::clone(&stats))? {
            let e = e?;
            while next_vertex <= cast::widen_u32(e.src) {
                offsets.push(&written_edges)?;
                next_vertex += 1;
            }
            edges.push(&e.dst)?;
            written_edges += 1;
        }
        while next_vertex <= meta.num_vertices {
            offsets.push(&written_edges)?;
            next_vertex += 1;
        }
        offsets.finish()?;
        edges.finish()?;

        let mut mf = MetaFile::new();
        mf.set("format", "csr").set_graph_meta(&meta);
        mf.save(&dir.join("meta.txt"))?;
        Ok(CsrFiles { dir: dir.to_path_buf(), meta })
    }

    pub fn open(dir: &Path) -> Result<Self> {
        let mf = MetaFile::load(&dir.join("meta.txt"))?;
        if mf.get("format") != Some("csr") {
            return Err(GraphError::Corrupt(format!(
                "{} is not a CSR directory (format={:?})",
                dir.display(),
                mf.get("format")
            )));
        }
        Ok(CsrFiles { dir: dir.to_path_buf(), meta: mf.graph_meta()? })
    }

    /// Load the whole graph into memory (reference implementations, tests).
    pub fn load(&self, stats: Arc<IoStats>) -> Result<CsrGraph> {
        let raw_offsets: Vec<u64> =
            RecordReader::<u64>::open(&self.offsets_path(), Arc::clone(&stats))?.read_all()?;
        let dsts: Vec<VertexId> =
            RecordReader::<VertexId>::open(&self.edges_path(), stats)?.read_all()?;
        if cast::len_u64(raw_offsets.len()) != self.meta.num_vertices + 1 {
            return Err(GraphError::Corrupt(format!(
                "offsets.bin has {} entries, expected {}",
                raw_offsets.len(),
                self.meta.num_vertices + 1
            )));
        }
        if *raw_offsets.last().unwrap_or(&0) != cast::len_u64(dsts.len()) {
            return Err(GraphError::Corrupt(
                "offsets.bin last entry disagrees with edges.bin length".into(),
            ));
        }
        // The one narrowing point: stored u64 offsets index the in-memory
        // dsts vector, so each must fit this platform's usize.
        let mut offsets = Vec::with_capacity(raw_offsets.len());
        for o in raw_offsets {
            offsets.push(cast::to_usize(o, "csr offset")?);
        }
        Ok(CsrGraph { offsets, dsts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    fn sample_edges() -> Vec<Edge> {
        vec![
            Edge::new(2, 0),
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(0, 3),
        ]
    }

    #[test]
    fn in_memory_csr_basics() {
        let g = CsrGraph::from_edges(4, &sample_edges());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.index_bytes(), 40);
    }

    #[test]
    fn csr_neighbors_sorted_regardless_of_input_order() {
        let mut edges = sample_edges();
        edges.reverse();
        let g1 = CsrGraph::from_edges(4, &sample_edges());
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g1, g2);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = CsrGraph::from_edges(4, &sample_edges());
        let all: Vec<Edge> = g.edges().collect();
        assert_eq!(all.len(), 5);
        let mut expected = sample_edges();
        expected.sort();
        let mut got = all;
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn on_disk_conversion_matches_in_memory() {
        let dir = ScratchDir::new("csr").unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), sample_edges()).unwrap();
        let csr = CsrFiles::convert(&el, &dir.path().join("csr"), stats(), MemoryBudget::from_kib(64))
            .unwrap();
        assert_eq!(csr.index_bytes(), 40);
        let loaded = csr.load(stats()).unwrap();
        assert_eq!(loaded, CsrGraph::from_edges(4, &sample_edges()));
        // Reopen from disk.
        let reopened = CsrFiles::open(csr.dir()).unwrap();
        assert_eq!(reopened.meta(), csr.meta());
    }

    #[test]
    fn conversion_handles_trailing_isolated_vertices() {
        let dir = ScratchDir::new("csr-iso").unwrap();
        // Vertex 9 exists only as a destination.
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), vec![Edge::new(0, 9)]).unwrap();
        let csr = CsrFiles::convert(&el, &dir.path().join("csr"), stats(), MemoryBudget::from_kib(4))
            .unwrap();
        let g = csr.load(stats()).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
        assert_eq!(g.neighbors(0), &[9]);
    }

    #[test]
    fn load_detects_truncated_offsets() {
        let dir = ScratchDir::new("csr-trunc").unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), sample_edges()).unwrap();
        let csr = CsrFiles::convert(&el, &dir.path().join("csr"), stats(), MemoryBudget::from_kib(4))
            .unwrap();
        // Corrupt: drop the last 8 bytes of offsets.bin.
        let p = csr.offsets_path();
        let len = std::fs::metadata(&p).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 8).unwrap();
        assert!(matches!(csr.load(stats()), Err(GraphError::Corrupt(_))));
    }
}
