//! Tiny `key=value` sidecar files.
//!
//! Every on-disk graph directory carries a `meta.txt` recording vertex/edge
//! counts and format parameters. The format is deliberately plain text (one
//! `key=value` per line, `#` comments) so no serialization crate is needed
//! and files stay inspectable with `cat`.

use std::collections::BTreeMap;
use std::path::Path;

use graphz_types::prelude::*;

/// Ordered key → value map persisted as `key=value` lines.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetaFile {
    entries: BTreeMap<String, String>,
}

impl MetaFile {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, key: &str, value: impl ToString) -> &mut Self {
        assert!(
            !key.contains('=') && !key.contains('\n'),
            "meta keys must not contain '=' or newlines"
        );
        self.entries.insert(key.to_string(), value.to_string());
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// All `(key, value)` pairs in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn get_u64(&self, key: &str) -> Result<u64> {
        let raw = self
            .get(key)
            .ok_or_else(|| GraphError::Corrupt(format!("meta key `{key}` missing")))?;
        raw.parse()
            .map_err(|_| GraphError::Corrupt(format!("meta key `{key}` is not a u64: `{raw}`")))
    }

    fn render(&self) -> String {
        let mut out = String::from("# GraphZ metadata\n");
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    /// Write atomically (tmp + fsync + rename): a crash mid-save leaves the
    /// previous metadata, never a half-written file.
    pub fn save(&self, path: &Path) -> Result<()> {
        // For callers with no surface in reach (baseline converters, CSR,
        // engine run manifests), all outside the ingest fault boundary; the
        // DOS pipeline saves its sidecars through `save_with` instead.
        // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
        graphz_io::atomic::write_atomic(path, self.render().as_bytes()).ctx("write", path)?;
        Ok(())
    }

    /// [`save`](Self::save) routed through a [`FaultSurface`]: the write is
    /// gated as `save-meta:<file>` and streamed through the surface, so the
    /// chaos sweeps can kill exactly this sidecar write (mirroring
    /// `StageManifest::commit`). An inert surface degrades to `save`.
    pub fn save_with(&self, path: &Path, surface: &graphz_io::FaultSurface) -> Result<()> {
        use std::io::Write;
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        surface.op(&format!("save-meta:{name}")).ctx("gate", path)?;
        let mut file = graphz_io::atomic::AtomicFile::create(path).ctx("stage", path)?;
        {
            let mut w = surface.wrap(&mut file);
            w.write_all(self.render().as_bytes()).ctx("write", path)?;
        }
        file.commit().ctx("commit", path)?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).ctx("read", path)?;
        let mut entries = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| {
                GraphError::Corrupt(format!(
                    "{}:{}: expected key=value, got `{line}`",
                    path.display(),
                    lineno + 1
                ))
            })?;
            entries.insert(k.to_string(), v.to_string());
        }
        Ok(MetaFile { entries })
    }

    /// Store the standard [`GraphMeta`] block.
    pub fn set_graph_meta(&mut self, m: &GraphMeta) -> &mut Self {
        self.set("num_vertices", m.num_vertices)
            .set("num_edges", m.num_edges)
            .set("unique_degrees", m.unique_degrees)
            .set("max_degree", m.max_degree)
    }

    /// Read back the standard [`GraphMeta`] block.
    pub fn graph_meta(&self) -> Result<GraphMeta> {
        Ok(GraphMeta {
            num_vertices: self.get_u64("num_vertices")?,
            num_edges: self.get_u64("num_edges")?,
            unique_degrees: self.get_u64("unique_degrees")?,
            max_degree: self.get_u64("max_degree")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    #[test]
    fn roundtrip() {
        let dir = ScratchDir::new("meta").unwrap();
        let path = dir.file("meta.txt");
        let mut m = MetaFile::new();
        m.set("format", "dos").set("num_edges", 42u64);
        m.save(&path).unwrap();
        let back = MetaFile::load(&path).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("format"), Some("dos"));
        assert_eq!(back.get_u64("num_edges").unwrap(), 42);
    }

    #[test]
    fn graph_meta_roundtrip() {
        let dir = ScratchDir::new("meta-gm").unwrap();
        let path = dir.file("meta.txt");
        let gm = GraphMeta { num_vertices: 7, num_edges: 11, unique_degrees: 4, max_degree: 3 };
        let mut m = MetaFile::new();
        m.set_graph_meta(&gm);
        m.save(&path).unwrap();
        assert_eq!(MetaFile::load(&path).unwrap().graph_meta().unwrap(), gm);
    }

    #[test]
    fn missing_key_is_corrupt() {
        let m = MetaFile::new();
        assert!(matches!(m.get_u64("nope"), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn malformed_line_is_corrupt() {
        let dir = ScratchDir::new("meta-bad").unwrap();
        let path = dir.file("meta.txt");
        std::fs::write(&path, "valid=1\nbogus line\n").unwrap();
        assert!(matches!(MetaFile::load(&path), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let dir = ScratchDir::new("meta-com").unwrap();
        let path = dir.file("meta.txt");
        std::fs::write(&path, "# header\n\na=1\n  # indented comment\nb=two\n").unwrap();
        let m = MetaFile::load(&path).unwrap();
        assert_eq!(m.get("a"), Some("1"));
        assert_eq!(m.get("b"), Some("two"));
    }

    #[test]
    #[should_panic(expected = "meta keys")]
    fn keys_with_equals_rejected() {
        MetaFile::new().set("a=b", 1);
    }
}
