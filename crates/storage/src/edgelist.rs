//! Binary edge-list files and SNAP-style text import/export.
//!
//! The edge list is the interchange format every converter starts from: a
//! flat file of 8-byte `(src, dst)` records with a `meta.txt` sidecar, plus
//! loaders for the whitespace-separated text format used by the SNAP
//! repository graphs the paper evaluates (LiveJournal, as-skitter, ...).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_io::{IoStats, RecordReader, RecordWriter, ScratchDir};
use graphz_types::prelude::*;

use crate::meta::MetaFile;

/// A binary edge-list file (`edges.bin`) with its metadata sidecar
/// (`<stem>.meta.txt`).
#[derive(Debug, Clone)]
pub struct EdgeListFile {
    path: PathBuf,
    meta: GraphMeta,
}

impl EdgeListFile {
    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    fn meta_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_owned();
        os.push(".meta.txt");
        PathBuf::from(os)
    }

    /// Write `edges` to `path` and compute metadata.
    ///
    /// `num_vertices` is `max id + 1` (the id space may be sparse — paper
    /// §III-B notes real graphs routinely have a max ID far above the vertex
    /// count; id `u` exists even if it has no edges below `num_vertices`).
    pub fn create<I>(path: &Path, stats: Arc<IoStats>, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = Edge>,
    {
        // Input-fixture constructor (tests/benches/baselines build edge
        // lists with it); the ingest fault boundary starts at import.
        // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
        let mut w = RecordWriter::<Edge>::create(path, Arc::clone(&stats)).ctx("create", path)?;
        let mut max_id: Option<VertexId> = None;
        let mut degrees: HashMap<VertexId, u64> = HashMap::new();
        for e in edges {
            w.push(&e)?;
            max_id = Some(max_id.map_or(e.src.max(e.dst), |m| m.max(e.src).max(e.dst)));
            *degrees.entry(e.src).or_default() += 1;
        }
        let num_edges = w.finish()?;
        let num_vertices = max_id.map_or(0, |m| cast::widen_u32(m) + 1);
        let zero_degree = num_vertices - cast::len_u64(degrees.len());
        let mut unique: std::collections::HashSet<u64> = degrees.values().copied().collect();
        if zero_degree > 0 {
            unique.insert(0);
        }
        let meta = GraphMeta {
            num_vertices,
            num_edges,
            unique_degrees: cast::len_u64(unique.len()),
            max_degree: degrees.values().copied().max().unwrap_or(0),
        };
        let mut mf = MetaFile::new();
        mf.set("format", "edgelist").set_graph_meta(&meta);
        mf.save(&Self::meta_path(path))?;
        Ok(EdgeListFile { path: path.to_path_buf(), meta })
    }

    /// Open an existing edge-list file.
    pub fn open(path: &Path) -> Result<Self> {
        let mf = MetaFile::load(&Self::meta_path(path))?;
        if mf.get("format") != Some("edgelist") {
            return Err(GraphError::Corrupt(format!(
                "{} is not an edge list (format={:?})",
                path.display(),
                mf.get("format")
            )));
        }
        Ok(EdgeListFile { path: path.to_path_buf(), meta: mf.graph_meta()? })
    }

    /// Stream the edges.
    pub fn reader(&self, stats: Arc<IoStats>) -> Result<RecordReader<Edge>> {
        RecordReader::open(&self.path, stats)
    }

    /// Read every edge into memory (tests and small graphs only).
    pub fn read_all(&self, stats: Arc<IoStats>) -> Result<Vec<Edge>> {
        self.reader(stats)?.read_all()
    }

    /// Import a SNAP-style text file: whitespace-separated `src dst` pairs,
    /// `#`-prefixed comment lines ignored.
    pub fn import_text(text_path: &Path, bin_path: &Path, stats: Arc<IoStats>) -> Result<Self> {
        let file = std::fs::File::open(text_path).ctx("open", text_path)?;
        let reader = BufReader::new(file);
        let mut edges = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<VertexId> {
                tok.ok_or_else(|| {
                    GraphError::Corrupt(format!(
                        "{}:{}: expected `src dst`",
                        text_path.display(),
                        lineno + 1
                    ))
                })?
                .parse()
                .map_err(|_| {
                    GraphError::Corrupt(format!(
                        "{}:{}: vertex id is not a u32",
                        text_path.display(),
                        lineno + 1
                    ))
                })
            };
            let src = parse(it.next())?;
            let dst = parse(it.next())?;
            edges.push(Edge::new(src, dst));
        }
        Self::create(bin_path, stats, edges)
    }

    /// Import a Matrix Market coordinate file (`%%MatrixMarket matrix
    /// coordinate ...`): 1-based `row col [value]` entries become 0-based
    /// directed edges; a `symmetric` header adds the mirrored edge.
    pub fn import_matrix_market(
        mm_path: &Path,
        bin_path: &Path,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        let file = std::fs::File::open(mm_path).ctx("open", mm_path)?;
        let reader = BufReader::new(file);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .transpose()?
            .ok_or_else(|| GraphError::Corrupt(format!("{}: empty file", mm_path.display())))?;
        if !header.starts_with("%%MatrixMarket") {
            return Err(GraphError::Corrupt(format!(
                "{}: missing %%MatrixMarket header",
                mm_path.display()
            )));
        }
        let symmetric = header.to_lowercase().contains("symmetric");
        let mut edges = Vec::new();
        let mut saw_dims = false;
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            if !saw_dims {
                saw_dims = true; // "rows cols nnz" — counts recomputed below
                continue;
            }
            let mut it = line.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<u64> {
                tok.ok_or_else(|| {
                    GraphError::Corrupt(format!(
                        "{}:{}: expected `row col [value]`",
                        mm_path.display(),
                        lineno + 2
                    ))
                })?
                .parse()
                .map_err(|_| {
                    GraphError::Corrupt(format!(
                        "{}:{}: index is not an integer",
                        mm_path.display(),
                        lineno + 2
                    ))
                })
            };
            let row = parse(it.next())?;
            let col = parse(it.next())?;
            if row == 0 || col == 0 {
                return Err(GraphError::Corrupt(format!(
                    "{}:{}: Matrix Market indices are 1-based",
                    mm_path.display(),
                    lineno + 2
                )));
            }
            // Fallible narrowing: a 1-based index above 2^32 must be a
            // parse error, not a silently wrapped vertex id.
            let to_id = |n: u64| {
                cast::to_u32(n - 1, "matrix market index").map_err(|_| {
                    GraphError::Corrupt(format!(
                        "{}:{}: index {n} exceeds the u32 id space",
                        mm_path.display(),
                        lineno + 2
                    ))
                })
            };
            let (src, dst) = (to_id(row)?, to_id(col)?);
            edges.push(Edge::new(src, dst));
            if symmetric && src != dst {
                edges.push(Edge::new(dst, src));
            }
        }
        Self::create(bin_path, stats, edges)
    }

    /// Export to SNAP-style text.
    pub fn export_text(&self, text_path: &Path, stats: Arc<IoStats>) -> Result<()> {
        // Debug/interchange export, not an ingest artifact — no surface in
        // reach and nothing downstream verifies it, so a raw create is fine.
        // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
        let mut out = std::io::BufWriter::new(std::fs::File::create(text_path).ctx("create", text_path)?);
        writeln!(out, "# GraphZ edge list: {} vertices, {} edges", self.meta.num_vertices, self.meta.num_edges)?;
        for e in self.reader(stats)? {
            let e = e?;
            writeln!(out, "{}\t{}", e.src, e.dst)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Produce a symmetrized copy: for every edge `(u, v)` the output has
    /// both `(u, v)` and `(v, u)`, deduplicated, self-loops removed.
    ///
    /// BFS/CC/SSSP treat graphs as undirected (as the paper's benchmark
    /// suites do); the out-of-core dedup uses an external sort so the
    /// operation scales past memory.
    pub fn symmetrize(&self, out_path: &Path, stats: Arc<IoStats>, budget: MemoryBudget) -> Result<Self> {
        let scratch = ScratchDir::new("symmetrize")?;
        let doubled = scratch.file("doubled.bin");
        {
            // Scratch intermediate of an input-preparation utility, outside
            // the ingest fault boundary (see `create` above).
            let mut w =
                // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
                RecordWriter::<Edge>::create(&doubled, Arc::clone(&stats)).ctx("create", &doubled)?;
            for e in self.reader(Arc::clone(&stats))? {
                let e = e?;
                if e.src == e.dst {
                    continue;
                }
                w.push(&e)?;
                w.push(&Edge::new(e.dst, e.src))?;
            }
            w.finish()?;
        }
        let sorted = scratch.file("sorted.bin");
        graphz_extsort::ExternalSorter::new(
            |e: &Edge| (e.src, e.dst),
            budget,
            Arc::clone(&stats),
        )
        .sort_file(&doubled, &sorted, &scratch)?;

        let mut prev: Option<Edge> = None;
        let deduped = RecordReader::<Edge>::open(&sorted, Arc::clone(&stats))?
            .map(|e| e.expect("sorted run must be readable"))
            .filter(move |e| {
                let keep = prev != Some(*e);
                prev = Some(*e);
                keep
            });
        Self::create(out_path, stats, deduped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    #[test]
    fn create_and_open_roundtrip() {
        let dir = ScratchDir::new("el").unwrap();
        let path = dir.file("g.bin");
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(5, 0)];
        let f = EdgeListFile::create(&path, stats(), edges.clone()).unwrap();
        assert_eq!(f.meta().num_vertices, 6);
        assert_eq!(f.meta().num_edges, 3);
        assert_eq!(f.meta().max_degree, 1);
        let f2 = EdgeListFile::open(&path).unwrap();
        assert_eq!(f2.meta(), f.meta());
        assert_eq!(f2.read_all(stats()).unwrap(), edges);
    }

    #[test]
    fn meta_counts_unique_degrees_including_zero() {
        let dir = ScratchDir::new("el-ud").unwrap();
        let path = dir.file("g.bin");
        // Vertex 0 has degree 2, vertex 1 degree 1, vertices 2 and 3 degree 0.
        let edges = vec![Edge::new(0, 2), Edge::new(0, 3), Edge::new(1, 2)];
        let f = EdgeListFile::create(&path, stats(), edges).unwrap();
        assert_eq!(f.meta().unique_degrees, 3); // {2, 1, 0}
    }

    #[test]
    fn empty_graph() {
        let dir = ScratchDir::new("el-empty").unwrap();
        let path = dir.file("g.bin");
        let f = EdgeListFile::create(&path, stats(), vec![]).unwrap();
        assert_eq!(f.meta().num_vertices, 0);
        assert_eq!(f.meta().num_edges, 0);
        assert_eq!(f.meta().unique_degrees, 0);
    }

    #[test]
    fn text_import_export() {
        let dir = ScratchDir::new("el-text").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "# comment\n0 1\n1\t2\n\n2 0\n").unwrap();
        let f = EdgeListFile::import_text(&txt, &dir.file("g.bin"), stats()).unwrap();
        assert_eq!(f.meta().num_edges, 3);
        let out_txt = dir.file("out.txt");
        f.export_text(&out_txt, stats()).unwrap();
        let f2 =
            EdgeListFile::import_text(&out_txt, &dir.file("g2.bin"), stats()).unwrap();
        assert_eq!(f2.read_all(stats()).unwrap(), f.read_all(stats()).unwrap());
    }

    #[test]
    fn matrix_market_import_general_and_symmetric() {
        let dir = ScratchDir::new("el-mm").unwrap();
        let mm = dir.file("g.mtx");
        std::fs::write(
            &mm,
            "%%MatrixMarket matrix coordinate real general
             % a comment
             3 3 3
             1 2 0.5
             2 3 1.5
             3 1 2.5
",
        )
        .unwrap();
        let f = EdgeListFile::import_matrix_market(&mm, &dir.file("g.bin"), stats()).unwrap();
        assert_eq!(
            f.read_all(stats()).unwrap(),
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
        );

        let mm_sym = dir.file("s.mtx");
        std::fs::write(
            &mm_sym,
            "%%MatrixMarket matrix coordinate pattern symmetric
2 2 2
1 2
2 2
",
        )
        .unwrap();
        let f = EdgeListFile::import_matrix_market(&mm_sym, &dir.file("s.bin"), stats()).unwrap();
        // Off-diagonal entries mirror; the self-loop does not duplicate.
        assert_eq!(
            f.read_all(stats()).unwrap(),
            vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 1)]
        );
    }

    #[test]
    fn matrix_market_rejects_bad_headers_and_indices() {
        let dir = ScratchDir::new("el-mm-bad").unwrap();
        let no_header = dir.file("nh.mtx");
        std::fs::write(&no_header, "1 1 1
1 1
").unwrap();
        assert!(matches!(
            EdgeListFile::import_matrix_market(&no_header, &dir.file("nh.bin"), stats()),
            Err(GraphError::Corrupt(_))
        ));
        let zero_based = dir.file("zb.mtx");
        std::fs::write(&zero_based, "%%MatrixMarket matrix coordinate
2 2 1
0 1
").unwrap();
        assert!(matches!(
            EdgeListFile::import_matrix_market(&zero_based, &dir.file("zb.bin"), stats()),
            Err(GraphError::Corrupt(_))
        ));
        // A 1-based index beyond the u32 id space must fail loudly instead of
        // wrapping: 4294967298 - 1 would truncate to vertex 1.
        let huge = dir.file("huge.mtx");
        std::fs::write(&huge, "%%MatrixMarket matrix coordinate
5000000000 5000000000 1
4294967298 1
").unwrap();
        let err = EdgeListFile::import_matrix_market(&huge, &dir.file("huge.bin"), stats())
            .unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }

    #[test]
    fn text_import_rejects_garbage() {
        let dir = ScratchDir::new("el-bad").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 notanumber\n").unwrap();
        let err = EdgeListFile::import_text(&txt, &dir.file("g.bin"), stats()).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn open_rejects_wrong_format() {
        let dir = ScratchDir::new("el-fmt").unwrap();
        let path = dir.file("g.bin");
        std::fs::write(&path, []).unwrap();
        let mut mf = MetaFile::new();
        mf.set("format", "dos");
        mf.save(&EdgeListFile::meta_path(&path)).unwrap();
        assert!(matches!(EdgeListFile::open(&path), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn symmetrize_adds_reverse_edges_and_dedups() {
        let dir = ScratchDir::new("el-sym").unwrap();
        let f = EdgeListFile::create(
            &dir.file("g.bin"),
            stats(),
            vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(2, 2), Edge::new(1, 2)],
        )
        .unwrap();
        let s = f.symmetrize(&dir.file("s.bin"), stats(), MemoryBudget::from_kib(64)).unwrap();
        let edges = s.read_all(stats()).unwrap();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 2), Edge::new(2, 1)]
        );
    }
}
