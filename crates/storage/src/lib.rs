//! On-disk graph storage formats.
//!
//! Three formats live here:
//!
//! * [`edgelist`] — the raw interchange format: a flat file of `(src, dst)`
//!   records, plus SNAP-style text import/export.
//! * [`csr`] — compressed sparse rows, the *conventional* out-of-core index
//!   format whose per-vertex index the paper's degree-ordered storage
//!   replaces (paper §III-A).
//! * [`dos`] — **degree-ordered storage**, the paper's first contribution
//!   (§III): vertices relabeled by descending out-degree so the vertex index
//!   needs one entry per *unique degree* instead of per vertex, and the
//!   adjacency offset of any vertex is computed by Eq. 1.
//!
//! [`partition`] computes memory-budget-driven partition boundaries over
//! either ordering, and [`meta`] is the tiny `key=value` sidecar format all
//! directory layouts use.
//!
//! The input side is unified behind [`ingest::IngestPipeline`]: one builder
//! that detects the source format, parses text in parallel byte chunks
//! ([`chunked`]), and runs the pipelined DOS conversion — byte-identical
//! output for every thread count (DESIGN.md §6g).

#![forbid(unsafe_code)]

pub mod chunked;
pub mod csr;
pub mod dos;
pub mod edgelist;
pub mod ingest;
pub mod meta;
pub mod partition;
pub mod verify;

pub use chunked::{import_text_chunked, import_text_quarantined, BadRecord};
pub use csr::{CsrFiles, CsrGraph};
pub use dos::{scratch_root_for, AdjCursor, DosConverter, DosConverterBuilder, DosGraph, DosIndex};
pub use edgelist::EdgeListFile;
pub use ingest::{IngestPipeline, IngestPipelineBuilder, IngestTimings};
pub use partition::{PartitionSet, Partitioner};
pub use verify::{verify_dos, VerifyReport, Violation};
