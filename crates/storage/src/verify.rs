//! Integrity checking for on-disk graph directories (`fsck` for DOS).
//!
//! The paper advocates DOS "becoming a standard for distributing graphs"
//! (§III-C); a distribution format needs a verifier. [`verify_dos`] checks
//! every invariant of a DOS directory and reports all violations rather
//! than stopping at the first.

use std::path::Path;
use std::sync::Arc;

use graphz_io::{IoStats, RecordReader};
use graphz_types::prelude::*;

use crate::dos::DosGraph;
use crate::meta::MetaFile;

/// One integrity violation found by [`verify_dos`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `meta.txt` missing or malformed.
    BadMeta(String),
    /// `index.tbl` inconsistent with itself or the metadata.
    BadIndex(String),
    /// `edges.bin` length disagrees with the index.
    BadEdges(String),
    /// The adjacency slab (`edges.bin`) is *shorter* than the index
    /// requires — the signature of a torn or interrupted write, reported
    /// distinctly from a generic length mismatch so operators know resume
    /// (not fsck) is the fix.
    TruncatedSlab { expected_bytes: u64, actual_bytes: u64 },
    /// An edge points outside the vertex space.
    DanglingEdge { vertex: VertexId, target: VertexId },
    /// The id maps are not mutually inverse bijections.
    BadIdMap(String),
    /// A data file's content does not match the `checksums.txt` sidecar —
    /// silent bitrot that passes every structural check.
    BadChecksum(String),
    /// A data file is present but `checksums.txt` has no entry for it, so
    /// its content could rot undetected.
    MissingChecksum { file: String },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BadMeta(m) => write!(f, "meta: {m}"),
            Violation::BadIndex(m) => write!(f, "index: {m}"),
            Violation::BadEdges(m) => write!(f, "edges: {m}"),
            Violation::TruncatedSlab { expected_bytes, actual_bytes } => write!(
                f,
                "edges: adjacency slab truncated to {actual_bytes} of {expected_bytes} bytes"
            ),
            Violation::DanglingEdge { vertex, target } => {
                write!(f, "edges: vertex {vertex} has out-neighbor {target} outside the graph")
            }
            Violation::BadIdMap(m) => write!(f, "id map: {m}"),
            Violation::BadChecksum(m) => write!(f, "checksum: {m}"),
            Violation::MissingChecksum { file } => {
                write!(f, "checksum: {file} has no checksums.txt entry")
            }
        }
    }
}

/// A full integrity report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    pub violations: Vec<Violation>,
    /// Data files checked against the `checksums.txt` sidecar (0 when the
    /// directory predates the sidecar and has none).
    pub files_checksummed: u32,
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check every invariant of a DOS directory:
///
/// 1. metadata parses and matches the index (vertex/edge/unique-degree
///    counts, max degree);
/// 2. index groups are strictly ordered, start at id 0 / offset 0, and their
///    cumulative degrees equal the edge count;
/// 3. `edges.bin` holds exactly `num_edges` records and every destination id
///    is in range;
/// 4. `old2new.bin` / `new2old.bin` are mutually inverse bijections over the
///    full id space.
pub fn verify_dos(dir: &Path, stats: Arc<IoStats>) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();

    // 1. Metadata + index open (DosGraph::open already validates ordering).
    let graph = match DosGraph::open(dir, Arc::clone(&stats)) {
        Ok(g) => g,
        Err(e) => {
            // Distinguish "meta broken" from "index broken" for the report.
            let detail = e.to_string();
            let kind = if MetaFile::load(&dir.join("meta.txt"))
                .and_then(|m| m.graph_meta())
                .is_err()
            {
                Violation::BadMeta(detail)
            } else {
                Violation::BadIndex(detail)
            };
            report.violations.push(kind);
            return Ok(report);
        }
    };
    let meta = graph.meta();
    let index = graph.index();

    // 2. Index internal consistency.
    if index.unique_degrees() != meta.unique_degrees {
        report.violations.push(Violation::BadIndex(format!(
            "index has {} groups, meta claims {}",
            index.unique_degrees(),
            meta.unique_degrees
        )));
    }
    if let Some(first) = index.groups().first() {
        if cast::widen_u32(first.degree) != meta.max_degree {
            report.violations.push(Violation::BadIndex(format!(
                "first group degree {} != meta max degree {}",
                first.degree, meta.max_degree
            )));
        }
    }
    let mut cumulative: u64 = 0;
    let groups = index.groups();
    for (i, g) in groups.iter().enumerate() {
        if g.offset != cumulative {
            report.violations.push(Violation::BadIndex(format!(
                "group {i} (degree {}) starts at offset {}, expected {cumulative}",
                g.degree, g.offset
            )));
        }
        let group_end = if i + 1 < groups.len() {
            cast::widen_u32(groups[i + 1].first_id)
        } else {
            meta.num_vertices
        };
        if group_end < cast::widen_u32(g.first_id) {
            report.violations.push(Violation::BadIndex(format!(
                "group {i} first id {} beyond the vertex space",
                g.first_id
            )));
            break;
        }
        // Checked Eq. 1-style accumulation: an index corrupt enough to
        // overflow `group_width * degree` is a violation, not a crash.
        let next = cast::sub_u64(group_end, cast::widen_u32(g.first_id), "verify group width")
            .and_then(|w| cast::mul_u64(w, cast::widen_u32(g.degree), "verify group edges"))
            .and_then(|n| cast::add_u64(cumulative, n, "verify cumulative degree"));
        match next {
            Ok(c) => cumulative = c,
            Err(e) => {
                report.violations.push(Violation::BadIndex(format!(
                    "group {i} (degree {}) overflows the cumulative edge count: {e}",
                    g.degree
                )));
                break;
            }
        }
    }
    if cumulative != meta.num_edges {
        report.violations.push(Violation::BadIndex(format!(
            "index degrees sum to {cumulative} edges, meta claims {}",
            meta.num_edges
        )));
    }

    // 3. Edge file: exact length, all targets in range.
    match std::fs::metadata(graph.edges_path()) {
        Ok(md) => {
            // Saturating: a meta file claiming ~u64::MAX edges should report
            // a length mismatch, not crash the verifier.
            let expected = meta.num_edges.saturating_mul(4);
            if md.len() < expected {
                report.violations.push(Violation::TruncatedSlab {
                    expected_bytes: expected,
                    actual_bytes: md.len(),
                });
            } else if md.len() > expected {
                report.violations.push(Violation::BadEdges(format!(
                    "edges.bin is {} bytes, expected {expected}",
                    md.len()
                )));
            }
        }
        Err(e) => report.violations.push(Violation::BadEdges(format!("cannot stat: {e}"))),
    }
    if report.is_clean() {
        let mut v: VertexId = 0;
        let mut remaining = if meta.num_vertices > 0 { index.degree_of(0) } else { 0 };
        let reader = RecordReader::<u32>::open(&graph.edges_path(), Arc::clone(&stats))?;
        for dst in reader {
            let dst = dst?;
            while remaining == 0 {
                v += 1;
                remaining = index.degree_of(v);
            }
            remaining -= 1;
            if cast::widen_u32(dst) >= meta.num_vertices {
                report.violations.push(Violation::DanglingEdge { vertex: v, target: dst });
                if report.violations.len() > 16 {
                    break; // enough evidence
                }
            }
        }
    }

    // 4. Id maps: sizes and mutual inversion.
    let old2new = graph.load_old2new(Arc::clone(&stats))?;
    let new2old = graph.load_new2old(Arc::clone(&stats))?;
    if cast::len_u64(old2new.len()) != meta.num_vertices
        || cast::len_u64(new2old.len()) != meta.num_vertices
    {
        report.violations.push(Violation::BadIdMap(format!(
            "map sizes {} / {} != {} vertices",
            old2new.len(),
            new2old.len(),
            meta.num_vertices
        )));
    } else {
        for (old, &new) in old2new.iter().enumerate() {
            if cast::vertex_index(new) >= new2old.len()
                || cast::vertex_index(new2old[cast::vertex_index(new)]) != old
            {
                report.violations.push(Violation::BadIdMap(format!(
                    "old {old} -> new {new} does not invert"
                )));
                if report.violations.len() > 16 {
                    break;
                }
            }
        }
    }

    // 5. Optional `checksums.txt` sidecar (written by DosConverter).
    // Directories converted before the sidecar existed are still valid —
    // absence is tolerated; presence means every listed file must match.
    verify_checksums(dir, &mut report, &stats);

    Ok(report)
}

fn verify_checksums(dir: &Path, report: &mut VerifyReport, stats: &Arc<IoStats>) {
    let sums_path = dir.join("checksums.txt");
    if !sums_path.is_file() {
        return;
    }
    let sums = match MetaFile::load(&sums_path) {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(Violation::BadChecksum(format!("checksums.txt: {e}")));
            return;
        }
    };
    for (key, value) in sums.entries() {
        let Some(name) = key.strip_prefix("file:") else { continue };
        let Some((want_len, want_crc)) = value
            .split_once(',')
            .and_then(|(l, c)| Some((l.parse::<u64>().ok()?, u32::from_str_radix(c, 16).ok()?)))
        else {
            report
                .violations
                .push(Violation::BadChecksum(format!("{name}: malformed entry `{value}`")));
            continue;
        };
        let checked = graphz_io::tracked::reader(&dir.join(name), Arc::clone(stats))
            .and_then(graphz_io::crc32_stream);
        match checked {
            Err(e) => report.violations.push(Violation::BadChecksum(format!("{name}: {e}"))),
            Ok((len, crc)) => {
                report.files_checksummed += 1;
                if len != want_len || crc != want_crc {
                    report.violations.push(Violation::BadChecksum(format!(
                        "{name}: length {len} vs recorded {want_len}, \
                         crc {crc:08x} vs recorded {want_crc:08x}"
                    )));
                }
            }
        }
    }

    // The sidecar, when present, must cover every data file that actually
    // exists — a file without an entry can rot undetected.
    for name in ["edges.bin", "index.tbl", "old2new.bin", "new2old.bin", "weights.bin"] {
        if dir.join(name).is_file() && sums.get(&format!("file:{name}")).is_none() {
            report.violations.push(Violation::MissingChecksum { file: name.to_string() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::DosConverter;
    use crate::edgelist::EdgeListFile;
    use graphz_io::ScratchDir;
    use graphz_types::{Edge, FixedCodec, MemoryBudget};

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    fn build() -> (ScratchDir, std::path::PathBuf) {
        let dir = ScratchDir::new("verify").unwrap();
        let edges: Vec<Edge> =
            (0..40u32).flat_map(|i| (0..(i % 5)).map(move |j| Edge::new(i, j))).collect();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), edges).unwrap();
        let dos_dir = dir.path().join("dos");
        DosConverter::new(MemoryBudget::from_kib(64), stats()).convert(&el, &dos_dir).unwrap();
        (dir, dos_dir)
    }

    #[test]
    fn fresh_conversion_is_clean() {
        let (_dir, dos_dir) = build();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn truncated_edges_are_detected() {
        let (_dir, dos_dir) = build();
        let edges = dos_dir.join("edges.bin");
        let len = std::fs::metadata(&edges).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&edges).unwrap().set_len(len - 4).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        let slab = report
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::TruncatedSlab { expected_bytes, actual_bytes } => {
                    Some((*expected_bytes, *actual_bytes))
                }
                _ => None,
            })
            .expect("truncation must report a TruncatedSlab violation");
        assert_eq!(slab, (len, len - 4));
        assert!(report.violations[0].to_string().contains("truncated"));
    }

    #[test]
    fn oversized_edges_are_still_a_generic_mismatch() {
        let (_dir, dos_dir) = build();
        let edges = dos_dir.join("edges.bin");
        let len = std::fs::metadata(&edges).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&edges).unwrap().set_len(len + 4).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.violations.iter().any(|v| matches!(v, Violation::BadEdges(_))));
        assert!(
            !report.violations.iter().any(|v| matches!(v, Violation::TruncatedSlab { .. })),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn missing_checksum_entry_is_detected() {
        let (_dir, dos_dir) = build();
        // Drop the edges.bin entry from the sidecar; the file itself is fine.
        let sums_path = dos_dir.join("checksums.txt");
        let text = std::fs::read_to_string(&sums_path).unwrap();
        let filtered: String = text
            .lines()
            .filter(|l| !l.starts_with("file:edges.bin"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&sums_path, filtered).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert_eq!(
            report.violations,
            vec![Violation::MissingChecksum { file: "edges.bin".into() }]
        );
        assert!(report.violations[0].to_string().contains("edges.bin"));
    }

    #[test]
    fn out_of_range_destination_is_detected() {
        let (_dir, dos_dir) = build();
        // Overwrite the first destination with a bogus id.
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(dos_dir.join("edges.bin")).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DanglingEdge { .. })), "{:?}", report.violations);
    }

    #[test]
    fn corrupted_id_map_is_detected() {
        let (_dir, dos_dir) = build();
        // Swap two entries of new2old without touching old2new.
        let path = dos_dir.join("new2old.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.swap(0, 4);
        bytes.swap(1, 5);
        bytes.swap(2, 6);
        bytes.swap(3, 7);
        std::fs::write(&path, bytes).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.violations.iter().any(|v| matches!(v, Violation::BadIdMap(_))));
    }

    #[test]
    fn garbage_meta_is_reported_as_meta() {
        let (_dir, dos_dir) = build();
        std::fs::write(dos_dir.join("meta.txt"), "format=dos\nnum_vertices=zork\n").unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], Violation::BadMeta(_)));
    }

    #[test]
    fn silent_bitrot_is_caught_by_checksums() {
        let (_dir, dos_dir) = build();
        // Rewrite the first destination to a *different valid* vertex id:
        // lengths, index sums, and range checks all still pass — only the
        // checksum sidecar notices.
        use std::io::{Read, Seek, SeekFrom, Write};
        let path = dos_dir.join("edges.bin");
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let mut first = [0u8; 4];
        f.read_exact(&mut first).unwrap();
        let dst = u32::from_le_bytes(first);
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&(dst ^ 1).to_le_bytes()).unwrap();
        drop(f);

        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(!report.is_clean(), "bitrot went unnoticed");
        assert!(
            report.violations.iter().all(|v| matches!(v, Violation::BadChecksum(_))),
            "only the checksum should fire: {:?}",
            report.violations
        );
        assert!(report.violations[0].to_string().contains("edges.bin"));
    }

    #[test]
    fn missing_checksum_sidecar_is_tolerated() {
        let (_dir, dos_dir) = build();
        std::fs::remove_file(dos_dir.join("checksums.txt")).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    fn convert_edges(name: &str, edges: Vec<Edge>) -> (ScratchDir, std::path::PathBuf) {
        let dir = ScratchDir::new(name).unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), edges).unwrap();
        let dos_dir = dir.path().join("dos");
        DosConverter::new(MemoryBudget::from_kib(64), stats()).convert(&el, &dos_dir).unwrap();
        (dir, dos_dir)
    }

    #[test]
    fn empty_graph_verifies_clean() {
        let (_dir, dos_dir) = convert_edges("verify-empty", vec![]);
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn single_vertex_graph_verifies_clean() {
        // One vertex, one self-loop: the smallest graph with an edge file.
        let (_dir, dos_dir) = convert_edges("verify-one", vec![Edge::new(0, 0)]);
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        let g = DosGraph::open(&dos_dir, stats()).unwrap();
        assert_eq!(g.meta().num_vertices, 1);
        assert_eq!(g.index().offset_of(0).unwrap(), 0);
    }

    #[test]
    fn all_degree_zero_tail_verifies_clean() {
        // One real edge, then a long run of isolated vertices: the final
        // degree-0 group must cover ids 1..100 with offset == num_edges.
        let (_dir, dos_dir) = convert_edges("verify-zero-tail", vec![Edge::new(0, 99)]);
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        let g = DosGraph::open(&dos_dir, stats()).unwrap();
        assert_eq!(g.meta().num_vertices, 100);
        let last = g.index().groups().last().copied().unwrap();
        assert_eq!(last.degree, 0);
        assert_eq!(last.offset, g.meta().num_edges);
        // Eq. 1 on the zero-degree tail: every offset pins to num_edges.
        assert_eq!(g.index().offset_of(1).unwrap(), 1);
        assert_eq!(g.index().offset_of(99).unwrap(), 1);
        assert_eq!(g.index().edges_in_range(1, 100).unwrap(), 0);
    }

    #[test]
    fn adjacency_block_ending_exactly_at_file_end() {
        // Every vertex has degree >= 1 (a 5-cycle), so the *last* vertex's
        // adjacency block ends exactly at the end of edges.bin — the
        // off-by-one boundary of the Eq. 1 bounds math.
        let edges: Vec<Edge> = (0..5u32).map(|i| Edge::new(i, (i + 1) % 5)).collect();
        let (_dir, dos_dir) = convert_edges("verify-exact-end", edges);
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        let g = DosGraph::open(&dos_dir, stats()).unwrap();
        let n = g.meta().num_vertices;
        let last = u32::try_from(n - 1).unwrap();
        let (deg, offset) = g.index().lookup(last).unwrap();
        // The block [offset, offset + deg) must end exactly at num_edges…
        assert_eq!(offset + u64::from(deg), g.meta().num_edges);
        // …and at the physical end of the file.
        let file_len = std::fs::metadata(g.edges_path()).unwrap().len();
        assert_eq!((offset + u64::from(deg)) * 4, file_len);
        // Reading that final block must succeed and yield `deg` neighbors.
        assert_eq!(g.adjacency(last, stats()).unwrap().len(), deg as usize);
        assert_eq!(g.index().edges_in_range(last, last + 1).unwrap(), u64::from(deg));
    }

    #[test]
    fn tampered_index_is_reported_as_index() {
        let (_dir, dos_dir) = build();
        // Rewrite the index with a wrong offset in the second group.
        let graph = DosGraph::open(&dos_dir, stats()).unwrap();
        let mut groups = graph.index().groups().to_vec();
        assert!(groups.len() >= 2);
        groups[1].offset += 1;
        let bytes: Vec<u8> = groups.iter().flat_map(|g| g.to_bytes()).collect();
        std::fs::write(dos_dir.join("index.tbl"), bytes).unwrap();
        let report = verify_dos(&dos_dir, stats()).unwrap();
        assert!(report.violations.iter().any(|v| matches!(v, Violation::BadIndex(_))));
        // Display formatting sanity.
        let text = report.violations[0].to_string();
        assert!(text.contains("index:") || text.contains("edges:"), "{text}");
    }
}
