//! The unified ingest front door: source file → DOS directory in one call.
//!
//! [`IngestPipeline`] composes the whole input side — text parsing
//! ([`chunked`](crate::chunked) when parallel), binary edge-list handling,
//! and the pipelined DOS conversion ([`DosConverter`]) — behind the
//! workspace builder convention:
//!
//! ```no_run
//! # use std::path::Path;
//! # use graphz_storage::IngestPipeline;
//! # use graphz_types::MemoryBudget;
//! # fn main() -> graphz_types::Result<()> {
//! let stats = graphz_io::IoStats::new();
//! let dos = IngestPipeline::builder()
//!     .budget(MemoryBudget::from_mib(64))
//!     .stats(stats)
//!     .threads(4)
//!     .weights(graphz_types::derive_weight)
//!     .build()?
//!     .run(Path::new("graph.txt"), Path::new("graph.dos"))?;
//! # let _ = dos; Ok(())
//! # }
//! ```
//!
//! The produced directory is byte-identical for every `threads` value and
//! chunk size (DESIGN.md §6g), so callers pick parallelism purely on
//! wall-clock grounds.

use std::path::Path;
use std::sync::Arc;

use graphz_io::{IoStats, ScratchDir};
use graphz_types::prelude::*;

use crate::chunked::{self, DEFAULT_CHUNK_BYTES};
use crate::dos::{DosConverter, DosGraph};
use crate::edgelist::EdgeListFile;

/// How [`IngestPipeline::run`] interprets its source path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceKind {
    /// A binary edge list with its `.meta.txt` sidecar.
    Binary,
    /// A Matrix Market coordinate file (`.mtx`).
    MatrixMarket,
    /// SNAP-style whitespace-separated text (the default).
    Text,
}

fn detect(src: &Path) -> SourceKind {
    if EdgeListFile::open(src).is_ok() {
        return SourceKind::Binary;
    }
    match src.extension().and_then(|e| e.to_str()) {
        Some("mtx") => SourceKind::MatrixMarket,
        _ => SourceKind::Text,
    }
}

/// One-call ingest: source file → DOS directory.
pub struct IngestPipeline {
    budget: MemoryBudget,
    stats: Arc<IoStats>,
    threads: usize,
    chunk_bytes: u64,
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
}

/// Builder for [`IngestPipeline`]: `XBuilder` + chainable setters +
/// fallible `build()`.
pub struct IngestPipelineBuilder {
    budget: Option<MemoryBudget>,
    stats: Option<Arc<IoStats>>,
    threads: usize,
    chunk_bytes: u64,
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
}

impl IngestPipelineBuilder {
    /// Total in-memory bytes the ingest sorts may hold (required).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shared IO statistics sink (required).
    pub fn stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Ingest threads (≥ 1; default 1): parse workers for text sources and
    /// run-formation producers for every sort. Output bytes are identical
    /// for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Byte-span size for chunked text parsing (default
    /// [`DEFAULT_CHUNK_BYTES`]; mostly a test knob).
    pub fn chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Also emit per-edge weights computed by `f(original_src, original_dst)`.
    pub fn weights(mut self, f: fn(VertexId, VertexId) -> f32) -> Self {
        self.weight_fn = Some(f);
        self
    }

    /// Validate the configuration and produce the pipeline.
    pub fn build(self) -> Result<IngestPipeline> {
        let budget = self.budget.ok_or_else(|| {
            GraphError::InvalidConfig("ingest requires a memory budget".into())
        })?;
        let stats = self
            .stats
            .ok_or_else(|| GraphError::InvalidConfig("ingest requires a stats sink".into()))?;
        if self.threads == 0 {
            return Err(GraphError::InvalidConfig("ingest threads must be >= 1".into()));
        }
        if self.chunk_bytes == 0 {
            return Err(GraphError::InvalidConfig("ingest chunk size must be > 0".into()));
        }
        Ok(IngestPipeline {
            budget,
            stats,
            threads: self.threads,
            chunk_bytes: self.chunk_bytes,
            weight_fn: self.weight_fn,
        })
    }
}

impl IngestPipeline {
    /// Start building a pipeline.
    pub fn builder() -> IngestPipelineBuilder {
        IngestPipelineBuilder {
            budget: None,
            stats: None,
            threads: 1,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            weight_fn: None,
        }
    }

    /// Ingest `src` (binary edge list, `.mtx`, or SNAP-style text — detected
    /// automatically) into the DOS directory `dir`.
    pub fn run(&self, src: &Path, dir: &Path) -> Result<DosGraph> {
        // The imported edge list lives in scratch until the conversion has
        // fully consumed it.
        let scratch = ScratchDir::new("ingest")?;
        let edges = match detect(src) {
            SourceKind::Binary => EdgeListFile::open(src)?,
            SourceKind::MatrixMarket => EdgeListFile::import_matrix_market(
                src,
                &scratch.file("imported.bin"),
                Arc::clone(&self.stats),
            )?,
            SourceKind::Text => chunked::import_text_chunked(
                src,
                &scratch.file("imported.bin"),
                Arc::clone(&self.stats),
                self.threads,
                self.chunk_bytes,
            )?,
        };
        let mut converter = DosConverter::builder()
            .budget(self.budget)
            .stats(Arc::clone(&self.stats))
            .threads(self.threads);
        if let Some(f) = self.weight_fn {
            converter = converter.weights(f);
        }
        converter.build()?.convert(&edges, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::DosGraph;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    fn pipeline(threads: usize) -> IngestPipeline {
        IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(IngestPipeline::builder().stats(stats()).build().is_err());
        assert!(IngestPipeline::builder().budget(MemoryBudget::from_kib(1)).build().is_err());
        assert!(IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(1))
            .stats(stats())
            .threads(0)
            .build()
            .is_err());
        assert!(IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(1))
            .stats(stats())
            .chunk_bytes(0)
            .build()
            .is_err());
    }

    #[test]
    fn ingests_text_binary_and_matrix_market() {
        let dir = ScratchDir::new("ingest-kinds").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        let from_text = pipeline(1).run(&txt, &dir.path().join("from-text")).unwrap();
        assert_eq!(from_text.meta().num_edges, 4);

        let bin = dir.file("g.bin");
        EdgeListFile::import_text(&txt, &bin, stats()).unwrap();
        let from_bin = pipeline(1).run(&bin, &dir.path().join("from-bin")).unwrap();
        assert_eq!(from_bin.meta(), from_text.meta());
        assert_eq!(from_bin.index(), from_text.index());

        let mtx = dir.file("g.mtx");
        std::fs::write(&mtx, "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n")
            .unwrap();
        let from_mtx = pipeline(2).run(&mtx, &dir.path().join("from-mtx")).unwrap();
        assert_eq!(from_mtx.meta().num_edges, 2);
    }

    #[test]
    fn parallel_ingest_reopens_and_matches_serial() {
        let dir = ScratchDir::new("ingest-par").unwrap();
        let txt = dir.file("g.txt");
        let mut text = String::new();
        let mut x: u64 = 3;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            text.push_str(&format!("{} {}\n", (x >> 33) % 70, (x >> 15) % 70));
        }
        std::fs::write(&txt, text).unwrap();
        let serial = pipeline(1).run(&txt, &dir.path().join("serial")).unwrap();
        let par = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(4)
            .chunk_bytes(256)
            .build()
            .unwrap()
            .run(&txt, &dir.path().join("par"))
            .unwrap();
        assert_eq!(par.meta(), serial.meta());
        assert_eq!(par.index(), serial.index());
        assert_eq!(
            std::fs::read(par.edges_path()).unwrap(),
            std::fs::read(serial.edges_path()).unwrap()
        );
        // The produced directory reopens cleanly.
        let reopened = DosGraph::open(&dir.path().join("par"), stats()).unwrap();
        assert_eq!(reopened.meta(), serial.meta());
    }

    #[test]
    fn weighted_ingest_passes_weights_through() {
        let dir = ScratchDir::new("ingest-w").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 0\n2 1\n").unwrap();
        let dos = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(2)
            .weights(graphz_types::derive_weight)
            .build()
            .unwrap()
            .run(&txt, &dir.path().join("dos"))
            .unwrap();
        assert!(dos.has_weights());
        assert!(dos.weights_path().unwrap().exists());
    }
}
