//! The unified ingest front door: source file → DOS directory in one call.
//!
//! [`IngestPipeline`] composes the whole input side — text parsing
//! ([`chunked`](crate::chunked) when parallel), binary edge-list handling,
//! and the pipelined DOS conversion ([`DosConverter`]) — behind the
//! workspace builder convention:
//!
//! ```no_run
//! # use std::path::Path;
//! # use graphz_storage::IngestPipeline;
//! # use graphz_types::MemoryBudget;
//! # fn main() -> graphz_types::Result<()> {
//! let stats = graphz_io::IoStats::new();
//! let dos = IngestPipeline::builder()
//!     .budget(MemoryBudget::from_mib(64))
//!     .stats(stats)
//!     .threads(4)
//!     .weights(graphz_types::derive_weight)
//!     .build()?
//!     .run(Path::new("graph.txt"), Path::new("graph.dos"))?;
//! # let _ = dos; Ok(())
//! # }
//! ```
//!
//! The produced directory is byte-identical for every `threads` value and
//! chunk size (DESIGN.md §6g), so callers pick parallelism purely on
//! wall-clock grounds.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphz_extsort::SortTimings;
use graphz_io::{FaultSurface, IoStats, StageManifest};
use graphz_types::prelude::*;

use crate::chunked::{self, BadRecord, DEFAULT_CHUNK_BYTES};
use crate::dos::{scratch_root_for, DosConverter, DosGraph};
use crate::edgelist::EdgeListFile;

/// How [`IngestPipeline::run`] interprets its source path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceKind {
    /// A binary edge list with its `.meta.txt` sidecar.
    Binary,
    /// A Matrix Market coordinate file (`.mtx`).
    MatrixMarket,
    /// SNAP-style whitespace-separated text (the default).
    Text,
}

fn detect(src: &Path) -> SourceKind {
    if EdgeListFile::open(src).is_ok() {
        return SourceKind::Binary;
    }
    match src.extension().and_then(|e| e.to_str()) {
        Some("mtx") => SourceKind::MatrixMarket,
        _ => SourceKind::Text,
    }
}

/// Wall-time attribution for one ingest, filled in by
/// [`IngestPipeline::run`] when attached via
/// [`timings`](IngestPipelineBuilder::timings):
///
/// * `import` — source parsing (text/Matrix Market → binary edge list);
/// * `convert` — the whole DOS conversion (all five stages);
/// * `sort` — the [`SortTimings`] sink shared by every conversion-stage
///   sorter, so `sort.form()` isolates run formation *within* `convert`.
///
/// Benchmarks attribute `convert − sort.form()` to merge + emit work: the
/// conversion's lazy merge drains happen on stage-writer clocks and cannot
/// be separated from emission without per-record timing overhead.
#[derive(Debug, Default)]
pub struct IngestTimings {
    import_ns: AtomicU64,
    convert_ns: AtomicU64,
    sort: Arc<SortTimings>,
}

impl IngestTimings {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn add(counter: &AtomicU64, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        counter.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total wall time spent importing the source into a binary edge list.
    pub fn import(&self) -> Duration {
        Duration::from_nanos(self.import_ns.load(Ordering::Relaxed))
    }

    /// Total wall time of the DOS conversion (includes the sort time).
    pub fn convert(&self) -> Duration {
        Duration::from_nanos(self.convert_ns.load(Ordering::Relaxed))
    }

    /// Per-sort attribution accumulated by the conversion's stage sorters.
    pub fn sort(&self) -> &SortTimings {
        &self.sort
    }

    /// Wall time of the conversion *after* run formation is subtracted —
    /// the merge-and-emit remainder benchmarks report as "merge".
    pub fn merge_and_emit(&self) -> Duration {
        self.convert().saturating_sub(self.sort.form())
    }
}

/// One-call ingest: source file → DOS directory.
pub struct IngestPipeline {
    budget: MemoryBudget,
    stats: Arc<IoStats>,
    threads: usize,
    chunk_bytes: u64,
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
    surface: FaultSurface,
    resume: bool,
    max_bad_records: Option<u64>,
    timings: Option<Arc<IngestTimings>>,
}

/// Builder for [`IngestPipeline`]: `XBuilder` + chainable setters +
/// fallible `build()`.
pub struct IngestPipelineBuilder {
    budget: Option<MemoryBudget>,
    stats: Option<Arc<IoStats>>,
    threads: usize,
    chunk_bytes: u64,
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
    surface: FaultSurface,
    resume: bool,
    max_bad_records: Option<u64>,
    timings: Option<Arc<IngestTimings>>,
}

impl IngestPipelineBuilder {
    /// Total in-memory bytes the ingest sorts may hold (required).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shared IO statistics sink (required).
    pub fn stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Ingest threads (≥ 1; default 1): parse workers for text sources and
    /// run-formation producers for every sort. Output bytes are identical
    /// for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Byte-span size for chunked text parsing (default
    /// [`DEFAULT_CHUNK_BYTES`]; mostly a test knob).
    pub fn chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Also emit per-edge weights computed by `f(original_src, original_dst)`.
    pub fn weights(mut self, f: fn(VertexId, VertexId) -> f32) -> Self {
        self.weight_fn = Some(f);
        self
    }

    /// Fault surface gating every file op of the whole ingest (default:
    /// inert). Chaos tests inject faults here; production callers attach a
    /// retry policy and optionally a scratch disk budget.
    pub fn faults(mut self, surface: FaultSurface) -> Self {
        self.surface = surface;
        self
    }

    /// Resume an interrupted ingest from the stage manifests left in the
    /// stable scratch root `<dir>.scratch` (default: off — a fresh run
    /// clears any leftover scratch first). A resumed run produces a DOS
    /// directory byte-identical to an uninterrupted one (DESIGN.md §6h).
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Quarantine up to `n` malformed text lines into a `quarantine.txt`
    /// sidecar (with 1-based line numbers) instead of aborting on the first
    /// one. Default: strict — any malformed line fails the import.
    pub fn max_bad_records(mut self, n: u64) -> Self {
        self.max_bad_records = Some(n);
        self
    }

    /// Attach a wall-time attribution sink (see [`IngestTimings`]); used by
    /// benchmarks to split the ingest into parse/sort/merge stages.
    pub fn timings(mut self, timings: Arc<IngestTimings>) -> Self {
        self.timings = Some(timings);
        self
    }

    /// Validate the configuration and produce the pipeline.
    pub fn build(self) -> Result<IngestPipeline> {
        let budget = self.budget.ok_or_else(|| {
            GraphError::InvalidConfig("ingest requires a memory budget".into())
        })?;
        let stats = self
            .stats
            .ok_or_else(|| GraphError::InvalidConfig("ingest requires a stats sink".into()))?;
        if self.threads == 0 {
            return Err(GraphError::InvalidConfig("ingest threads must be >= 1".into()));
        }
        if self.chunk_bytes == 0 {
            return Err(GraphError::InvalidConfig("ingest chunk size must be > 0".into()));
        }
        Ok(IngestPipeline {
            budget,
            stats,
            threads: self.threads,
            chunk_bytes: self.chunk_bytes,
            weight_fn: self.weight_fn,
            surface: self.surface,
            resume: self.resume,
            max_bad_records: self.max_bad_records,
            timings: self.timings,
        })
    }
}

impl IngestPipeline {
    /// Start building a pipeline.
    pub fn builder() -> IngestPipelineBuilder {
        IngestPipelineBuilder {
            budget: None,
            stats: None,
            threads: 1,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            weight_fn: None,
            surface: FaultSurface::none(),
            resume: false,
            max_bad_records: None,
            timings: None,
        }
    }

    /// Import a text source, quarantining malformed lines when a budget was
    /// configured. Quarantined lines land in `dir/quarantine.txt` with
    /// their global 1-based line numbers.
    fn import_text(&self, src: &Path, imported: &Path, dir: &Path) -> Result<EdgeListFile> {
        let Some(max_bad) = self.max_bad_records else {
            return chunked::import_text_chunked(
                src,
                imported,
                Arc::clone(&self.stats),
                self.threads,
                self.chunk_bytes,
            );
        };
        let (file, bad) = chunked::import_text_quarantined(
            src,
            imported,
            Arc::clone(&self.stats),
            self.threads,
            self.chunk_bytes,
            max_bad,
        )?;
        if !bad.is_empty() {
            // The quarantine report is part of the pipeline's fault surface:
            // chaos sweeps can fail it like any other staged write.
            self.surface.op("quarantine")?;
            graphz_io::write_atomic(&dir.join("quarantine.txt"), render_quarantine(&bad).as_bytes())?;
        }
        Ok(file)
    }

    /// Ingest `src` (binary edge list, `.mtx`, or SNAP-style text — detected
    /// automatically) into the DOS directory `dir`.
    ///
    /// The whole pipeline is staged and resumable (DESIGN.md §6h): the
    /// import and each conversion stage commit a [`StageManifest`] into the
    /// stable scratch root `<dir>.scratch`, and a pipeline built with
    /// [`resume(true)`](IngestPipelineBuilder::resume) skips verified
    /// stages. On success the scratch root is removed.
    pub fn run(&self, src: &Path, dir: &Path) -> Result<DosGraph> {
        let root = scratch_root_for(dir);
        if !self.resume {
            match std::fs::remove_dir_all(&root) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        std::fs::create_dir_all(&root).ctx("create-dir", &root)?;
        std::fs::create_dir_all(dir).ctx("create-dir", dir)?;

        // Stage `import`: the imported edge list lives in scratch until the
        // conversion has fully consumed it. A binary source needs no import
        // (and no stage): the conversion reads it in place.
        let imported = root.join("imported.bin");
        let manifest = root.join("import.manifest");
        let import_started = std::time::Instant::now();
        let edges = match detect(src) {
            SourceKind::Binary => EdgeListFile::open(src)?,
            kind => {
                let done = if self.resume {
                    match StageManifest::load(&manifest)? {
                        Some(m) if m.stage() == "import" => {
                            let root = root.clone();
                            m.verify_files(|name| root.join(name))?
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if done {
                    EdgeListFile::open(&imported)?
                } else {
                    let file = match kind {
                        SourceKind::MatrixMarket => EdgeListFile::import_matrix_market(
                            src,
                            &imported,
                            Arc::clone(&self.stats),
                        )?,
                        _ => self.import_text(src, &imported, dir)?,
                    };
                    let mut m = StageManifest::new("import");
                    m.set("edges", file.meta().num_edges);
                    m.record_file("imported.bin", &imported).ctx("record", &imported)?;
                    let meta_txt = root.join("imported.bin.meta.txt");
                    m.record_file("imported.bin.meta.txt", &meta_txt).ctx("record", &meta_txt)?;
                    m.commit(&manifest, &self.surface)?;
                    file
                }
            }
        };
        if let Some(t) = &self.timings {
            IngestTimings::add(&t.import_ns, import_started.elapsed());
        }
        let mut converter = DosConverter::builder()
            .budget(self.budget)
            .stats(Arc::clone(&self.stats))
            .threads(self.threads)
            .faults(self.surface.clone())
            .resume(self.resume)
            .scratch_root(&root);
        if let Some(f) = self.weight_fn {
            converter = converter.weights(f);
        }
        if let Some(t) = &self.timings {
            converter = converter.timings(Arc::clone(&t.sort));
        }
        let convert_started = std::time::Instant::now();
        let dos = converter.build()?.convert(&edges, dir)?;
        if let Some(t) = &self.timings {
            IngestTimings::add(&t.convert_ns, convert_started.elapsed());
        }
        let _ = std::fs::remove_dir_all(&root);
        Ok(dos)
    }
}

/// Render quarantined records as the `quarantine.txt` sidecar: one line per
/// bad record — `line <n> (byte <b>): <reason>: <text>`.
fn render_quarantine(bad: &[BadRecord]) -> String {
    let mut out = String::new();
    for b in bad {
        out.push_str(&format!("line {} (byte {}): {}: {}\n", b.line, b.byte, b.reason, b.text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::DosGraph;
    use graphz_io::ScratchDir;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    fn pipeline(threads: usize) -> IngestPipeline {
        IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(IngestPipeline::builder().stats(stats()).build().is_err());
        assert!(IngestPipeline::builder().budget(MemoryBudget::from_kib(1)).build().is_err());
        assert!(IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(1))
            .stats(stats())
            .threads(0)
            .build()
            .is_err());
        assert!(IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(1))
            .stats(stats())
            .chunk_bytes(0)
            .build()
            .is_err());
    }

    #[test]
    fn ingests_text_binary_and_matrix_market() {
        let dir = ScratchDir::new("ingest-kinds").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        let from_text = pipeline(1).run(&txt, &dir.path().join("from-text")).unwrap();
        assert_eq!(from_text.meta().num_edges, 4);

        let bin = dir.file("g.bin");
        EdgeListFile::import_text(&txt, &bin, stats()).unwrap();
        let from_bin = pipeline(1).run(&bin, &dir.path().join("from-bin")).unwrap();
        assert_eq!(from_bin.meta(), from_text.meta());
        assert_eq!(from_bin.index(), from_text.index());

        let mtx = dir.file("g.mtx");
        std::fs::write(&mtx, "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n")
            .unwrap();
        let from_mtx = pipeline(2).run(&mtx, &dir.path().join("from-mtx")).unwrap();
        assert_eq!(from_mtx.meta().num_edges, 2);
    }

    #[test]
    fn parallel_ingest_reopens_and_matches_serial() {
        let dir = ScratchDir::new("ingest-par").unwrap();
        let txt = dir.file("g.txt");
        let mut text = String::new();
        let mut x: u64 = 3;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            text.push_str(&format!("{} {}\n", (x >> 33) % 70, (x >> 15) % 70));
        }
        std::fs::write(&txt, text).unwrap();
        let serial = pipeline(1).run(&txt, &dir.path().join("serial")).unwrap();
        let par = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(4)
            .chunk_bytes(256)
            .build()
            .unwrap()
            .run(&txt, &dir.path().join("par"))
            .unwrap();
        assert_eq!(par.meta(), serial.meta());
        assert_eq!(par.index(), serial.index());
        assert_eq!(
            std::fs::read(par.edges_path()).unwrap(),
            std::fs::read(serial.edges_path()).unwrap()
        );
        // The produced directory reopens cleanly.
        let reopened = DosGraph::open(&dir.path().join("par"), stats()).unwrap();
        assert_eq!(reopened.meta(), serial.meta());
    }

    #[test]
    fn quarantine_writes_sidecar_and_keeps_good_edges() {
        let dir = ScratchDir::new("ingest-quar").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 oops\n1 2\n2 0\n").unwrap();
        let out = dir.path().join("dos");
        // Strict default: the malformed line aborts the ingest.
        let err = pipeline(1).run(&txt, &out).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");
        // With a quarantine budget the good edges import and the sidecar
        // names the bad line.
        let dos = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .max_bad_records(3)
            .build()
            .unwrap()
            .run(&txt, &out)
            .unwrap();
        assert_eq!(dos.meta().num_edges, 3);
        let sidecar = std::fs::read_to_string(out.join("quarantine.txt")).unwrap();
        assert!(sidecar.contains("line 2"), "{sidecar}");
        assert!(sidecar.contains("1 oops"), "{sidecar}");
    }

    #[test]
    fn successful_ingest_removes_the_scratch_root() {
        let dir = ScratchDir::new("ingest-clean").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n").unwrap();
        let out = dir.path().join("dos");
        pipeline(1).run(&txt, &out).unwrap();
        assert!(!scratch_root_for(&out).exists(), "scratch root must be cleaned up");
    }

    #[test]
    fn resume_on_a_clean_slate_matches_a_fresh_run() {
        let dir = ScratchDir::new("ingest-resume-fresh").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        let fresh = pipeline(1).run(&txt, &dir.path().join("fresh")).unwrap();
        let resumed = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .resume(true)
            .build()
            .unwrap()
            .run(&txt, &dir.path().join("resumed"))
            .unwrap();
        assert_eq!(resumed.meta(), fresh.meta());
        assert_eq!(resumed.index(), fresh.index());
        assert_eq!(
            std::fs::read(resumed.edges_path()).unwrap(),
            std::fs::read(fresh.edges_path()).unwrap()
        );
    }

    #[test]
    fn weighted_ingest_passes_weights_through() {
        let dir = ScratchDir::new("ingest-w").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 0\n2 1\n").unwrap();
        let dos = IngestPipeline::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(2)
            .weights(graphz_types::derive_weight)
            .build()
            .unwrap()
            .run(&txt, &dir.path().join("dos"))
            .unwrap();
        assert!(dos.has_weights());
        assert!(dos.weights_path().unwrap().exists());
    }
}
