//! Memory-budget-driven vertex partitioning.
//!
//! Out-of-core engines split the vertex space into contiguous ranges
//! ("partitions") whose per-vertex state fits in memory (paper §III-E:
//! "vertices are divided into partitions — disjoint sets of vertices which
//! can all fit in memory at once"). Partitions are uniform vertex ranges, so
//! the owner of a vertex is one integer division — the operation GraphZ's
//! message interception performs on every send.
//!
//! This module also computes the paper's Fig. 2 statistic: the fraction of
//! edges whose *both* endpoints land in the top-n% of vertices, which is how
//! the paper quantifies DOS's locality benefit (high-degree vertices cluster
//! in the first partition, so their heavy message traffic stays in memory).

use std::sync::Arc;

use graphz_io::{IoStats, RecordReader};
use graphz_types::prelude::*;

use crate::dos::DosGraph;

/// A division of `0..num_vertices` into equal-width contiguous ranges (the
/// last may be short).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSet {
    num_vertices: u64,
    per_partition: u64,
    num_partitions: u32,
}

impl PartitionSet {
    /// Split `num_vertices` into partitions of at most `per_partition`
    /// vertices.
    pub fn with_width(num_vertices: u64, per_partition: u64) -> Self {
        assert!(per_partition > 0, "partition width must be positive");
        let num_partitions = cast::to_u32(num_vertices.div_ceil(per_partition).max(1), "partition count")
            .expect("partition count bounded by the u32 id space");
        PartitionSet { num_vertices, per_partition, num_partitions }
    }

    /// Split into exactly `n` equal partitions.
    pub fn with_count(num_vertices: u64, n: u32) -> Self {
        assert!(n > 0, "partition count must be positive");
        let per = num_vertices.div_ceil(cast::widen_u32(n)).max(1);
        Self::with_width(num_vertices, per)
    }

    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn per_partition(&self) -> u64 {
        self.per_partition
    }

    /// Which partition owns vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> u32 {
        debug_assert!(cast::widen_u32(v) < self.num_vertices);
        // The quotient is <= v, which already fits u32.
        cast::to_u32(cast::widen_u32(v) / self.per_partition, "partition of vertex")
            .expect("quotient bounded by the vertex id")
    }

    /// Vertex range `[start, end)` of partition `p`.
    #[inline]
    pub fn range(&self, p: u32) -> (VertexId, VertexId) {
        debug_assert!(p < self.num_partitions);
        // Saturating keeps the intermediate in-range; the `min` below then
        // clamps to num_vertices, which the constructor proved fits u32.
        let start = cast::widen_u32(p).saturating_mul(self.per_partition);
        let end = start.saturating_add(self.per_partition).min(self.num_vertices);
        (
            cast::to_u32(start.min(self.num_vertices), "partition start")
                .expect("vertex range bounds fit u32"),
            cast::to_u32(end, "partition end").expect("vertex range bounds fit u32"),
        )
    }

    /// Number of vertices in partition `p`.
    pub fn size(&self, p: u32) -> u64 {
        let (a, b) = self.range(p);
        cast::widen_u32(b - a)
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, VertexId, VertexId)> + '_ {
        (0..self.num_partitions).map(move |p| {
            let (a, b) = self.range(p);
            (p, a, b)
        })
    }
}

/// Computes partition layouts from memory budgets.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    budget: MemoryBudget,
    /// Fraction of the budget available for the resident vertex array; the
    /// rest is reserved for message buffers and pipeline blocks.
    vertex_fraction: f64,
}

impl Partitioner {
    pub fn new(budget: MemoryBudget) -> Self {
        Partitioner { budget, vertex_fraction: 0.5 }
    }

    pub fn with_vertex_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        self.vertex_fraction = fraction;
        self
    }

    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Lay out partitions for `num_vertices` vertices of `vertex_bytes`
    /// resident state each.
    pub fn layout(&self, num_vertices: u64, vertex_bytes: usize) -> PartitionSet {
        let resident = cast::fraction_of(self.budget.bytes(), self.vertex_fraction);
        let per = (resident / cast::len_u64(vertex_bytes.max(1))).max(1);
        PartitionSet::with_width(num_vertices, per)
    }
}

/// Fig. 2: for each cutoff `c` (a vertex count), the fraction of edges whose
/// source **and** destination both have new-id `< c`.
///
/// One sequential pass over `edges.bin`; sources are recovered by walking the
/// DOS index's degree runs.
pub fn in_partition_message_cdf(
    dos: &DosGraph,
    cutoffs: &[u64],
    stats: Arc<IoStats>,
) -> Result<Vec<f64>> {
    assert!(cutoffs.windows(2).all(|w| w[0] <= w[1]), "cutoffs must be ascending");
    let index = dos.index();
    let num_edges = dos.meta().num_edges;
    // first_hit[k] = number of edges whose max(src, dst) falls in
    // [cutoffs[k-1], cutoffs[k]); suffix-summed below.
    let mut first_hit = vec![0u64; cutoffs.len() + 1];
    let mut reader = RecordReader::<u32>::open(&dos.edges_path(), stats)?;
    let mut v: VertexId = 0;
    let mut remaining = if dos.meta().num_vertices > 0 { index.degree_of(0) } else { 0 };
    for dst in &mut reader {
        let dst = dst?;
        while remaining == 0 {
            v += 1;
            remaining = index.degree_of(v);
        }
        remaining -= 1;
        let m = cast::widen_u32(v.max(dst));
        let k = cutoffs.partition_point(|&c| c <= m);
        first_hit[k] += 1;
    }
    // counts[k] = edges with max endpoint < cutoffs[k] = prefix sum.
    let mut out = Vec::with_capacity(cutoffs.len());
    let mut acc = 0u64;
    for (k, _) in cutoffs.iter().enumerate() {
        acc += first_hit[k];
        out.push(if num_edges == 0 { 0.0 } else { acc as f64 / num_edges as f64 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::DosConverter;
    use crate::edgelist::EdgeListFile;
    use graphz_io::ScratchDir;
    use graphz_types::Edge;

    #[test]
    fn uniform_partition_math() {
        let p = PartitionSet::with_width(100, 30);
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.range(0), (0, 30));
        assert_eq!(p.range(3), (90, 100));
        assert_eq!(p.size(3), 10);
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(29), 0);
        assert_eq!(p.partition_of(30), 1);
        assert_eq!(p.partition_of(99), 3);
        let ranges: Vec<_> = p.iter().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[1], (1, 30, 60));
    }

    #[test]
    fn with_count_splits_evenly() {
        let p = PartitionSet::with_count(100, 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.per_partition(), 34);
        assert_eq!(p.range(2), (68, 100));
    }

    #[test]
    fn every_vertex_has_exactly_one_partition() {
        let p = PartitionSet::with_width(1000, 77);
        let mut seen = vec![false; 1000];
        for (part, a, b) in p.iter() {
            for v in a..b {
                assert!(!seen[v as usize], "vertex {v} in two partitions");
                seen[v as usize] = true;
                assert_eq!(p.partition_of(v), part);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_graph_gets_one_partition() {
        let p = PartitionSet::with_width(0, 10);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.range(0), (0, 0));
    }

    #[test]
    fn partitioner_respects_budget() {
        // 1 KiB budget, half for vertices, 8-byte vertex state => 64/partition.
        let layout = Partitioner::new(MemoryBudget::from_kib(1)).layout(1000, 8);
        assert_eq!(layout.per_partition(), 64);
        assert_eq!(layout.num_partitions(), 16);
        // Everything fits => single partition.
        let one = Partitioner::new(MemoryBudget::from_mib(1)).layout(1000, 8);
        assert_eq!(one.num_partitions(), 1);
    }

    #[test]
    fn partitioner_fraction() {
        let layout = Partitioner::new(MemoryBudget::from_kib(1))
            .with_vertex_fraction(1.0)
            .layout(1000, 8);
        assert_eq!(layout.per_partition(), 128);
    }

    #[test]
    fn message_cdf_monotone_and_exact_on_star() {
        // Star: vertex 0 points at 1..=9 and they all point back.
        let mut edges: Vec<Edge> = Vec::new();
        for i in 1..10u32 {
            edges.push(Edge::new(0, i));
            edges.push(Edge::new(i, 0));
        }
        let dir = ScratchDir::new("cdf").unwrap();
        let stats = IoStats::new();
        let el = EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), edges).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), Arc::clone(&stats))
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        // New id 0 is the hub (degree 9); spokes have degree 1.
        let cdf =
            in_partition_message_cdf(&dos, &[1, 2, 5, 10], Arc::clone(&stats)).unwrap();
        assert_eq!(cdf.len(), 4);
        // cutoff 1: only vertex {0}: no edge has both endpoints < 1.
        assert_eq!(cdf[0], 0.0);
        // cutoff 2: vertices {0,1}: edges 0<->1 qualify = 2 of 18.
        assert!((cdf[1] - 2.0 / 18.0).abs() < 1e-9);
        // cutoff 10: everything.
        assert_eq!(cdf[3], 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "CDF must be monotone");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn message_cdf_rejects_unsorted_cutoffs() {
        let dir = ScratchDir::new("cdf-bad").unwrap();
        let stats = IoStats::new();
        let el =
            EdgeListFile::create(&dir.file("g.bin"), Arc::clone(&stats), vec![Edge::new(0, 1)])
                .unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), Arc::clone(&stats))
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        let _ = in_partition_message_cdf(&dos, &[5, 1], stats);
    }
}
