//! Chunked parallel import of SNAP-style text edge lists.
//!
//! The chunk plan is a pure function of `(total_bytes, chunk_bytes)` — never
//! of thread count or timing (the workspace's deterministic-schedule rule,
//! DESIGN.md §6d/§6g): the file is cut into fixed-size byte spans, each span
//! owns exactly the lines that *begin* inside it, and chunk `i` is parsed by
//! worker `i % threads`. Reassembling parsed chunks in index order therefore
//! reproduces the serial line order exactly, so the resulting binary edge
//! list is byte-identical to [`EdgeListFile::import_text`] for every thread
//! count and chunk size.
//!
//! A line "begins at" byte `p` when `p == 0` or the previous byte is `\n`.
//! A worker assigned span `[start, end)` seeks to `start - 1` (when
//! `start > 0`) and discards through the first newline — if the previous
//! byte *was* the newline this consumes exactly that byte, so a line
//! beginning exactly at `start` is kept; otherwise the discarded bytes are
//! the tail of a line owned by the previous chunk. It then parses every line
//! beginning before `end`, reading past `end` to finish the final line.

use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;
use std::sync::{mpsc, Arc};

use graphz_io::IoStats;
use graphz_types::prelude::*;

use crate::edgelist::EdgeListFile;

/// Default span size for parallel text parsing (4 MiB — large enough that
/// per-chunk overhead vanishes, small enough that a handful of chunks exist
/// even for modest inputs).
pub const DEFAULT_CHUNK_BYTES: u64 = 4 << 20;

/// One byte span of the chunk plan: the lines beginning in `start..end`
/// belong to this chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    pub start: u64,
    pub end: u64,
}

/// Cut `total_bytes` into fixed-size spans. Pure function of its arguments:
/// the plan (and therefore which lines each chunk owns) is identical for
/// every thread count.
pub fn plan_chunks(total_bytes: u64, chunk_bytes: u64) -> Vec<ChunkSpan> {
    let step = chunk_bytes.max(1);
    let mut spans = Vec::new();
    let mut at = 0u64;
    while at < total_bytes {
        let next = total_bytes.min(at.saturating_add(step));
        spans.push(ChunkSpan { start: at, end: next });
        at = next;
    }
    spans
}

/// Parse one text line: `Ok(None)` for blanks and `#` comments, `Ok(Some)`
/// for a `src dst` pair. `where_` prefixes error messages (the parallel
/// parser reports byte spans instead of the serial path's line numbers).
fn parse_line(line: &str, where_: &dyn Fn() -> String) -> Result<Option<Edge>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let mut field = |name: &str| -> Result<VertexId> {
        it.next()
            .ok_or_else(|| GraphError::Corrupt(format!("{}: expected `src dst`", where_())))?
            .parse()
            .map_err(|_| GraphError::Corrupt(format!("{}: {name} is not a u32", where_())))
    };
    let src = field("src")?;
    let dst = field("dst")?;
    Ok(Some(Edge::new(src, dst)))
}

/// Parse the lines a single span owns (see the module docs for the
/// ownership rule).
fn parse_span(text_path: &Path, span: ChunkSpan) -> Result<Vec<Edge>> {
    let mut file = std::fs::File::open(text_path).ctx("open", text_path)?;
    let mut skew = 0u64; // bytes consumed before the first owned line
    if span.start > 0 {
        file.seek(SeekFrom::Start(span.start - 1))?;
        skew = 1;
    }
    let mut reader = BufReader::new(file);
    let mut raw = Vec::new();
    if span.start > 0 {
        let n = reader.read_until(b'\n', &mut raw)?;
        skew = cast::len_u64(n) - skew;
        raw.clear();
    }
    // `span.start + skew` is where the first owned line begins.
    let mut at = cast::add_u64(span.start, skew, "text chunk position")?;
    let mut edges = Vec::new();
    while at < span.end {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        let line = std::str::from_utf8(&raw).map_err(|_| {
            GraphError::Corrupt(format!(
                "{}: bytes {at}..{}: line is not valid UTF-8",
                text_path.display(),
                at + cast::len_u64(n)
            ))
        })?;
        let here = at;
        if let Some(e) = parse_line(line, &|| {
            format!("{}: byte {here}", text_path.display())
        })? {
            edges.push(e);
        }
        at = cast::add_u64(at, cast::len_u64(n), "text chunk position")?;
    }
    Ok(edges)
}

/// One malformed input line, quarantined instead of aborting the import.
///
/// `line` is the global 1-based line number (chunk-local counts are summed
/// in plan order, so the number is identical for every thread count and
/// chunk size), `byte` the offset where the line begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRecord {
    pub line: u64,
    pub byte: u64,
    pub text: String,
    pub reason: String,
}

/// What one span's lenient parse produced: the good edges, the number of
/// lines the span owns (good or bad, including blanks and comments), and
/// the malformed lines with span-local line indices.
struct LenientSpan {
    edges: Vec<Edge>,
    owned_lines: u64,
    bad: Vec<BadRecord>, // `line` is 0-based *within* the span here
}

/// Lenient variant of [`parse_span`]: malformed lines (bad field counts,
/// non-numeric ids, invalid UTF-8) are collected instead of aborting. IO
/// errors still abort — they say nothing about the input's content.
fn parse_span_lenient(text_path: &Path, span: ChunkSpan) -> Result<LenientSpan> {
    let mut file = std::fs::File::open(text_path).ctx("open", text_path)?;
    let mut skew = 0u64;
    if span.start > 0 {
        file.seek(SeekFrom::Start(span.start - 1))?;
        skew = 1;
    }
    let mut reader = BufReader::new(file);
    let mut raw = Vec::new();
    if span.start > 0 {
        let n = reader.read_until(b'\n', &mut raw)?;
        skew = cast::len_u64(n) - skew;
        raw.clear();
    }
    let mut at = cast::add_u64(span.start, skew, "text chunk position")?;
    let mut out = LenientSpan { edges: Vec::new(), owned_lines: 0, bad: Vec::new() };
    while at < span.end {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        let here = at;
        let local_line = out.owned_lines;
        out.owned_lines += 1;
        match std::str::from_utf8(&raw) {
            Err(_) => out.bad.push(BadRecord {
                line: local_line,
                byte: here,
                text: String::from_utf8_lossy(&raw).trim_end().to_string(),
                reason: "line is not valid UTF-8".into(),
            }),
            Ok(line) => match parse_line(line, &|| format!("byte {here}")) {
                Ok(Some(e)) => out.edges.push(e),
                Ok(None) => {}
                Err(e) => {
                    // The sidecar already prints the byte offset; strip the
                    // error's own location prefix so it is not said twice.
                    let noise = format!("corrupt data: byte {here}: ");
                    let reason = e.to_string();
                    let reason =
                        reason.strip_prefix(&noise).map(str::to_string).unwrap_or(reason);
                    out.bad.push(BadRecord {
                        line: local_line,
                        byte: here,
                        text: line.trim_end().to_string(),
                        reason,
                    });
                }
            },
        }
        at = cast::add_u64(at, cast::len_u64(n), "text chunk position")?;
    }
    Ok(out)
}

/// Import a SNAP-style text file, quarantining up to `max_bad_records`
/// malformed lines instead of aborting on the first one.
///
/// Returns the imported edge list (malformed lines simply dropped from it)
/// plus the quarantined records with **global 1-based line numbers** —
/// chunk-local counts are summed in plan order, so numbering, edges, and
/// output bytes are identical for every `threads` and `chunk_bytes`.
/// Exceeding `max_bad_records` is a typed [`GraphError::Corrupt`] naming
/// the first offending line.
pub fn import_text_quarantined(
    text_path: &Path,
    bin_path: &Path,
    stats: Arc<IoStats>,
    threads: usize,
    chunk_bytes: u64,
    max_bad_records: u64,
) -> Result<(EdgeListFile, Vec<BadRecord>)> {
    let total_bytes = std::fs::metadata(text_path).ctx("stat", text_path)?.len();
    let plan = plan_chunks(total_bytes, chunk_bytes);

    let spans: Vec<LenientSpan> = if threads <= 1 || plan.len() <= 1 {
        let mut out = Vec::with_capacity(plan.len());
        for span in &plan {
            out.push(parse_span_lenient(text_path, *span)?);
        }
        out
    } else {
        std::thread::scope(|scope| -> Result<Vec<LenientSpan>> {
            let (done_tx, done_rx) = mpsc::channel::<(usize, Result<LenientSpan>)>();
            for worker in 0..threads.min(plan.len()) {
                let done_tx = done_tx.clone();
                let plan = &plan;
                std::thread::Builder::new()
                    .name(format!("graphz-parse-{worker}"))
                    .spawn_scoped(scope, move || {
                        for (idx, span) in plan.iter().enumerate() {
                            if idx % threads != worker {
                                continue;
                            }
                            let parsed = parse_span_lenient(text_path, *span);
                            if done_tx.send((idx, parsed)).is_err() {
                                return;
                            }
                        }
                    })?;
            }
            drop(done_tx);

            let mut slots: Vec<Option<LenientSpan>> = (0..plan.len()).map(|_| None).collect();
            let mut first_err: Option<(usize, GraphError)> = None;
            for (idx, outcome) in done_rx.iter() {
                match outcome {
                    Ok(parsed) => {
                        if let Some(slot) = slots.get_mut(idx) {
                            *slot = Some(parsed);
                        }
                    }
                    Err(e) => {
                        if first_err.as_ref().is_none_or(|(at, _)| idx < *at) {
                            first_err = Some((idx, e));
                        }
                    }
                }
            }
            if let Some((_, e)) = first_err {
                return Err(e);
            }
            let mut ordered = Vec::with_capacity(slots.len());
            for (idx, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(parsed) => ordered.push(parsed),
                    None => {
                        return Err(GraphError::Corrupt(format!(
                            "parse worker lost chunk {idx}"
                        )))
                    }
                }
            }
            Ok(ordered)
        })?
    };

    // Chunk-local line indices become global 1-based numbers via a running
    // prefix sum of each span's owned-line count.
    let mut bad: Vec<BadRecord> = Vec::new();
    let mut lines_before: u64 = 0;
    let mut edges: Vec<Edge> = Vec::new();
    for span in spans {
        for mut b in span.bad {
            b.line = cast::add_u64(lines_before, b.line, "quarantine line number")? + 1;
            bad.push(b);
        }
        lines_before = cast::add_u64(lines_before, span.owned_lines, "quarantine line count")?;
        edges.extend(span.edges);
    }
    if cast::len_u64(bad.len()) > max_bad_records {
        let first = bad.first().map_or(0, |b| b.line);
        return Err(GraphError::Corrupt(format!(
            "{}: {} malformed records exceed --max-bad-records {max_bad_records} \
             (first at line {first})",
            text_path.display(),
            bad.len(),
        )));
    }
    let file = EdgeListFile::create(bin_path, stats, edges)?;
    Ok((file, bad))
}

/// Import a SNAP-style text file by parsing `chunk_bytes`-sized spans on
/// `threads` workers and reassembling the parsed chunks in plan order.
///
/// Byte-identical to [`EdgeListFile::import_text`] for every `threads` and
/// `chunk_bytes`; `threads <= 1` delegates to the serial path outright.
pub fn import_text_chunked(
    text_path: &Path,
    bin_path: &Path,
    stats: Arc<IoStats>,
    threads: usize,
    chunk_bytes: u64,
) -> Result<EdgeListFile> {
    if threads <= 1 {
        return EdgeListFile::import_text(text_path, bin_path, stats);
    }
    let total_bytes = std::fs::metadata(text_path).ctx("stat", text_path)?.len();
    let plan = plan_chunks(total_bytes, chunk_bytes);
    if plan.len() <= 1 {
        return EdgeListFile::import_text(text_path, bin_path, stats);
    }

    let chunks = std::thread::scope(|scope| -> Result<Vec<Vec<Edge>>> {
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<Vec<Edge>>)>();
        for worker in 0..threads.min(plan.len()) {
            let done_tx = done_tx.clone();
            let plan = &plan;
            std::thread::Builder::new()
                .name(format!("graphz-parse-{worker}"))
                .spawn_scoped(scope, move || {
                    for (idx, span) in plan.iter().enumerate() {
                        if idx % threads != worker {
                            continue;
                        }
                        let parsed = parse_span(text_path, *span);
                        if done_tx.send((idx, parsed)).is_err() {
                            return;
                        }
                    }
                })?;
        }
        drop(done_tx);

        let mut slots: Vec<Option<Vec<Edge>>> = (0..plan.len()).map(|_| None).collect();
        let mut first_err: Option<(usize, GraphError)> = None;
        for (idx, outcome) in done_rx.iter() {
            match outcome {
                Ok(edges) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        *slot = Some(edges);
                    }
                }
                Err(e) => {
                    // Report the error of the earliest chunk, matching what
                    // the serial parser would have hit first.
                    if first_err.as_ref().is_none_or(|(at, _)| idx < *at) {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let mut ordered = Vec::with_capacity(slots.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(edges) => ordered.push(edges),
                None => {
                    return Err(GraphError::Corrupt(format!(
                        "parse worker lost chunk {idx}"
                    )))
                }
            }
        }
        Ok(ordered)
    })?;

    EdgeListFile::create(bin_path, stats, chunks.into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::ScratchDir;

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    #[test]
    fn plan_covers_the_file_exactly() {
        assert!(plan_chunks(0, 16).is_empty());
        let plan = plan_chunks(100, 32);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0], ChunkSpan { start: 0, end: 32 });
        assert_eq!(plan[3], ChunkSpan { start: 96, end: 100 });
        for w in plan.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Degenerate chunk size still terminates.
        assert_eq!(plan_chunks(3, 0).len(), 3);
    }

    /// Deterministic pseudo-random text graph with comments, blank lines,
    /// and mixed whitespace, shaped to land line breaks on chunk borders.
    fn sample_text(lines: usize) -> String {
        let mut out = String::from("# header comment\n\n");
        let mut x: u64 = 7;
        for i in 0..lines {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = (x >> 33) % 97;
            let dst = (x >> 11) % 97;
            if i % 17 == 0 {
                out.push_str("# interior comment\n");
            }
            if i % 23 == 0 {
                out.push('\n');
            }
            out.push_str(&format!("{src}\t{dst}\n"));
        }
        out
    }

    #[test]
    fn chunked_import_matches_serial_bytes() {
        let dir = ScratchDir::new("chunked").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, sample_text(500)).unwrap();
        let serial_bin = dir.file("serial.bin");
        EdgeListFile::import_text(&txt, &serial_bin, stats()).unwrap();
        let serial = std::fs::read(&serial_bin).unwrap();
        assert!(!serial.is_empty());
        for threads in [2usize, 3, 8] {
            for chunk_bytes in [7u64, 64, 1 << 20] {
                let bin = dir.file(&format!("par-{threads}-{chunk_bytes}.bin"));
                let f =
                    import_text_chunked(&txt, &bin, stats(), threads, chunk_bytes).unwrap();
                assert_eq!(
                    std::fs::read(&bin).unwrap(),
                    serial,
                    "threads={threads} chunk_bytes={chunk_bytes}"
                );
                assert_eq!(f.meta(), EdgeListFile::open(&serial_bin).unwrap().meta());
            }
        }
    }

    #[test]
    fn file_without_trailing_newline() {
        let dir = ScratchDir::new("chunked-tail").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n1 2\n2 3").unwrap();
        let f = import_text_chunked(&txt, &dir.file("g.bin"), stats(), 4, 4).unwrap();
        assert_eq!(f.meta().num_edges, 3);
        let serial = EdgeListFile::import_text(&txt, &dir.file("s.bin"), stats()).unwrap();
        assert_eq!(
            std::fs::read(dir.file("g.bin")).unwrap(),
            std::fs::read(dir.file("s.bin")).unwrap()
        );
        assert_eq!(f.meta(), serial.meta());
    }

    #[test]
    fn garbage_is_a_typed_error_naming_the_byte() {
        let dir = ScratchDir::new("chunked-bad").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\n0 2\n0 3\n1 nope\n2 0\n").unwrap();
        let err = import_text_chunked(&txt, &dir.file("g.bin"), stats(), 2, 4).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn single_chunk_and_single_thread_delegate_to_serial() {
        let dir = ScratchDir::new("chunked-serial").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "5 6\n6 7\n").unwrap();
        let a = import_text_chunked(&txt, &dir.file("a.bin"), stats(), 1, 4).unwrap();
        let b = import_text_chunked(&txt, &dir.file("b.bin"), stats(), 8, 1 << 20).unwrap();
        assert_eq!(a.meta(), b.meta());
        assert_eq!(
            std::fs::read(dir.file("a.bin")).unwrap(),
            std::fs::read(dir.file("b.bin")).unwrap()
        );
    }

    #[test]
    fn quarantine_collects_bad_lines_with_stable_global_numbers() {
        let dir = ScratchDir::new("chunked-quar").unwrap();
        let txt = dir.file("g.txt");
        // Line numbers (1-based): 1 comment, 2 good, 3 bad, 4 good, 5 blank,
        // 6 bad, 7 good.
        std::fs::write(&txt, "# header\n0 1\n1 nope\n1 2\n\n999999999999 0\n2 0\n").unwrap();
        // Reference: the same file with the bad lines removed.
        let serial_bin = dir.file("clean.bin");
        std::fs::write(dir.file("clean.txt"), "# header\n0 1\n1 2\n\n2 0\n").unwrap();
        EdgeListFile::import_text(&dir.file("clean.txt"), &serial_bin, stats()).unwrap();
        let want = std::fs::read(&serial_bin).unwrap();
        for (threads, chunk) in [(1usize, 4u64), (1, 1 << 20), (3, 4), (4, 7)] {
            let bin = dir.file(&format!("q-{threads}-{chunk}.bin"));
            let (f, bad) =
                import_text_quarantined(&txt, &bin, stats(), threads, chunk, 10).unwrap();
            assert_eq!(f.meta().num_edges, 3, "threads={threads} chunk={chunk}");
            assert_eq!(std::fs::read(&bin).unwrap(), want, "threads={threads} chunk={chunk}");
            let lines: Vec<u64> = bad.iter().map(|b| b.line).collect();
            assert_eq!(lines, vec![3, 6], "threads={threads} chunk={chunk}");
            assert_eq!(bad[0].text, "1 nope");
            assert!(bad[0].reason.contains("not a u32"), "{}", bad[0].reason);
            assert!(bad[1].reason.contains("not a u32"), "{}", bad[1].reason);
        }
    }

    #[test]
    fn quarantine_over_budget_is_a_typed_error() {
        let dir = ScratchDir::new("chunked-quar-cap").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\nbad one\nbad two\n1 2\n").unwrap();
        let err = import_text_quarantined(&txt, &dir.file("g.bin"), stats(), 2, 4, 1)
            .unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("max-bad-records"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        // With a budget that fits, the same file imports.
        let (f, bad) =
            import_text_quarantined(&txt, &dir.file("ok.bin"), stats(), 2, 4, 2).unwrap();
        assert_eq!(f.meta().num_edges, 2);
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn crlf_lines_parse_like_the_serial_path() {
        let dir = ScratchDir::new("chunked-crlf").unwrap();
        let txt = dir.file("g.txt");
        std::fs::write(&txt, "0 1\r\n1 2\r\n# c\r\n2 0\r\n").unwrap();
        let par = import_text_chunked(&txt, &dir.file("p.bin"), stats(), 3, 5).unwrap();
        let ser = EdgeListFile::import_text(&txt, &dir.file("s.bin"), stats()).unwrap();
        assert_eq!(par.meta(), ser.meta());
        assert_eq!(
            std::fs::read(dir.file("p.bin")).unwrap(),
            std::fs::read(dir.file("s.bin")).unwrap()
        );
    }
}
