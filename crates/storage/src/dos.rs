//! Degree-Ordered Storage (DOS) — the paper's first contribution (§III).
//!
//! Vertices are sorted by *descending out-degree* and relabeled in that
//! order. Because every vertex with the same degree then occupies a
//! contiguous id range with equal-length adjacency lists, the vertex index
//! needs only one entry per **unique degree**:
//!
//! * `ids_table` — degree → smallest new id with that degree (paper
//!   Table VI),
//! * `id_offset_table` — degree → edge-file offset of that smallest id
//!   (paper Table VII).
//!
//! The adjacency offset of any vertex `x` with degree `d` is then computed,
//! not stored (paper Eq. 1):
//!
//! ```text
//! offset = id_offset_table[d] + (x - ids_table[d]) * d
//! ```
//!
//! Natural graphs have very few unique degrees (§III-D proves
//! `|UD| <= 2*sqrt(|E|)`; see [`unique_degree_bound`]), so this index is
//! orders of magnitude smaller than CSR's per-vertex offsets and always fits
//! in memory — the property Table XI quantifies.
//!
//! Conversion (§III-C) uses only sequential passes and external sorts, so it
//! runs in bounded memory no matter the graph size. The passes run as a
//! *pipeline* of chained lazy sort merges (no intermediate file between a
//! sort and its consumer), and with [`DosConverterBuilder::threads`] > 1
//! each sort's run formation is sharded across producer threads — with
//! byte-identical output for every thread count, because every sort key in
//! the pipeline is a total order over the record bytes (DESIGN.md §6g).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_extsort::{ExternalSorter, SortTimings};
use graphz_io::{
    FaultSurface, IoStats, RecordReader, RecordWriter, ScratchDir, StageManifest, TrackedFile,
};
use graphz_types::prelude::*;

use crate::edgelist::EdgeListFile;
use crate::meta::MetaFile;

/// Upper bound on the number of unique out-degrees (paper §III-D, Claim 1):
/// `|UD| <= 2 * sqrt(|E|)`.
///
/// Computed in pure integer arithmetic (`isqrt` + ceiling correction) so the
/// bound is exact for every `u64` edge count; the former `f64::sqrt` round
/// trip loses integer precision above 2^53 edges.
pub fn unique_degree_bound(num_edges: u64) -> u64 {
    let root = num_edges.isqrt();
    // Ceiling of the true square root: isqrt floors, so bump when inexact.
    // `root * root` cannot overflow (root <= 2^32 - 1 for any u64 input) and
    // `2 * ceil(sqrt(u64))` tops out near 2^33.
    let ceil_root = root + u64::from(root * root < num_edges);
    2 * ceil_root
}

/// One row of the combined `ids_table` / `id_offset_table`: all vertices in
/// `first_id .. next group's first_id` have out-degree `degree`, and the
/// adjacency list of `first_id` starts at edge-record `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeGroup {
    pub degree: Degree,
    pub first_id: VertexId,
    pub offset: u64,
}

impl FixedCodec for DegreeGroup {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        buf[..4].copy_from_slice(&self.degree.to_le_bytes());
        buf[4..8].copy_from_slice(&self.first_id.to_le_bytes());
        buf[8..16].copy_from_slice(&self.offset.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        DegreeGroup {
            degree: u32::from_le_bytes(buf[..4].try_into().unwrap()),
            first_id: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            offset: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        }
    }
}

/// The in-memory DOS vertex index: one [`DegreeGroup`] per unique degree,
/// sorted by ascending `first_id` (equivalently descending `degree`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DosIndex {
    groups: Vec<DegreeGroup>,
    num_vertices: u64,
    num_edges: u64,
}

impl DosIndex {
    pub fn new(groups: Vec<DegreeGroup>, num_vertices: u64, num_edges: u64) -> Self {
        debug_assert!(groups.windows(2).all(|w| w[0].first_id < w[1].first_id));
        debug_assert!(groups.windows(2).all(|w| w[0].degree > w[1].degree));
        DosIndex { groups, num_vertices, num_edges }
    }

    pub fn groups(&self) -> &[DegreeGroup] {
        &self.groups
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of unique out-degrees.
    pub fn unique_degrees(&self) -> u64 {
        cast::len_u64(self.groups.len())
    }

    /// Bytes this index occupies (16 per unique degree) — the "GraphZ" row
    /// of Table XI. Saturating: `|UD| * 16` cannot realistically overflow,
    /// and a size *report* should never fail.
    pub fn index_bytes(&self) -> u64 {
        cast::len_u64(self.groups.len()).saturating_mul(cast::len_u64(DegreeGroup::SIZE))
    }

    #[inline]
    fn group_of(&self, v: VertexId) -> &DegreeGroup {
        debug_assert!(cast::widen_u32(v) < self.num_vertices, "vertex {v} out of range");
        // Binary search on ids_table (paper §III-B): find d with
        // ids_table[d] <= v < ids_table[d + 1].
        let idx = self.groups.partition_point(|g| g.first_id <= v);
        &self.groups[idx - 1]
    }

    /// Out-degree of new-id `v`.
    #[inline]
    pub fn degree_of(&self, v: VertexId) -> Degree {
        self.group_of(v).degree
    }

    /// Paper Eq. 1 over one degree group, in checked arithmetic:
    /// `offset = id_offset_table[d] + (v - ids_table[d]) * d`. Overflow (or a
    /// vertex below its group's first id, which only a corrupt index can
    /// produce) surfaces as [`GraphError::OffsetOverflow`] rather than a
    /// wrapped offset that would silently read the wrong adjacency block.
    #[inline]
    fn eq1_offset(g: &DegreeGroup, v: VertexId) -> Result<u64> {
        let rank = cast::sub_u32(v, g.first_id, "dos eq1: v - first_id")?;
        let span =
            cast::mul_u64(cast::widen_u32(rank), cast::widen_u32(g.degree), "dos eq1: rank * degree")?;
        cast::add_u64(g.offset, span, "dos eq1: group offset + span")
    }

    /// Typed out-of-range check shared by the fallible lookups. A release
    /// build used to fall through `group_of`'s `debug_assert` and compute a
    /// garbage offset for an out-of-range id; now every user-facing path
    /// (CLI, serve protocol) gets [`GraphError::UnknownVertex`] instead.
    /// Constructing the error does not allocate, so the serve read path
    /// stays within the `serve-read-alloc` ipa gate.
    #[inline]
    fn check_range(&self, v: VertexId) -> Result<()> {
        if cast::widen_u32(v) >= self.num_vertices {
            return Err(GraphError::UnknownVertex(v));
        }
        Ok(())
    }

    /// Edge-record offset of `v`'s adjacency list — paper Eq. 1. An id at
    /// or beyond `num_vertices` is [`GraphError::UnknownVertex`].
    #[inline]
    pub fn offset_of(&self, v: VertexId) -> Result<u64> {
        self.check_range(v)?;
        Self::eq1_offset(self.group_of(v), v)
    }

    /// `(degree, offset)` with one search. An id at or beyond
    /// `num_vertices` is [`GraphError::UnknownVertex`].
    #[inline]
    pub fn lookup(&self, v: VertexId) -> Result<(Degree, u64)> {
        self.check_range(v)?;
        let g = self.group_of(v);
        Ok((g.degree, Self::eq1_offset(g, v)?))
    }

    /// Total edges owned by vertices in `from..to` (new-id range).
    pub fn edges_in_range(&self, from: VertexId, to: VertexId) -> Result<u64> {
        if from >= to {
            return Ok(0);
        }
        let end = if cast::widen_u32(to) < self.num_vertices {
            self.offset_of(to)?
        } else {
            self.num_edges
        };
        cast::sub_u64(end, self.offset_of(from)?, "dos edges_in_range: end - start")
    }

    pub fn save(&self, path: &Path, stats: Arc<IoStats>) -> Result<()> {
        // Test/tooling helper: the DOS pipeline writes index.tbl through
        // DosConverter::writer (surface-routed) in the emit stage, so this
        // raw writer is never on a chaos-covered path.
        // flow:allow(fault-surface-bypass) ipa:allow(fault-surface-reach)
        let mut w = RecordWriter::<DegreeGroup>::create(path, stats).ctx("create", path)?;
        w.push_all(self.groups.iter())?;
        w.finish()?;
        Ok(())
    }

    pub fn load(path: &Path, stats: Arc<IoStats>, num_vertices: u64, num_edges: u64) -> Result<Self> {
        let groups = RecordReader::<DegreeGroup>::open(path, stats)?.read_all()?;
        if groups.windows(2).any(|w| w[0].first_id >= w[1].first_id || w[0].degree <= w[1].degree) {
            return Err(GraphError::Corrupt("DOS index groups are not properly ordered".into()));
        }
        if let Some(first) = groups.first() {
            if first.first_id != 0 || first.offset != 0 {
                return Err(GraphError::Corrupt("DOS index must start at id 0, offset 0".into()));
            }
        }
        Ok(DosIndex { groups, num_vertices, num_edges })
    }
}

/// Converts an edge list into a DOS directory (paper §III-C).
///
/// Construct via [`DosConverter::builder`] (the workspace builder
/// convention) or [`DosConverter::new`] for the single-threaded default.
pub struct DosConverter {
    budget: MemoryBudget,
    stats: Arc<IoStats>,
    /// When set, a `weights.bin` file (one `f32` per edge, parallel to
    /// `edges.bin`) is produced from the *original* endpoint ids, so weights
    /// survive the relabeling unchanged.
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
    /// Producer threads per external sort. The produced directory is
    /// byte-identical for every value (DESIGN.md §6g).
    threads: usize,
    /// Fault surface gating every file op of the conversion (default inert).
    surface: FaultSurface,
    /// When set, completed stages found in the scratch root are skipped.
    resume: bool,
    /// Stable scratch root shared with a caller-level pipeline; `None` means
    /// the converter owns (and cleans up) a sibling `<dir>.scratch`.
    scratch_root: Option<PathBuf>,
    /// Optional wall-time sink shared by every stage sorter.
    timings: Option<Arc<SortTimings>>,
}

/// Builder for [`DosConverter`]: `XBuilder` + chainable setters + fallible
/// `build()`.
pub struct DosConverterBuilder {
    budget: Option<MemoryBudget>,
    stats: Option<Arc<IoStats>>,
    weight_fn: Option<fn(VertexId, VertexId) -> f32>,
    threads: usize,
    surface: FaultSurface,
    resume: bool,
    scratch_root: Option<PathBuf>,
    timings: Option<Arc<SortTimings>>,
}

impl DosConverterBuilder {
    /// Total in-memory bytes the conversion's sorts may hold (required).
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shared IO statistics sink (required).
    pub fn stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Also emit per-edge weights computed by `f(original_src, original_dst)`.
    pub fn weights(mut self, f: fn(VertexId, VertexId) -> f32) -> Self {
        self.weight_fn = Some(f);
        self
    }

    /// Producer threads for each external sort (≥ 1; default 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Fault surface gating every file op of the conversion (default: inert).
    /// Chaos tests inject IO faults here; production callers attach a retry
    /// policy and optionally a scratch [`DiskBudget`](graphz_io::DiskBudget).
    pub fn faults(mut self, surface: FaultSurface) -> Self {
        self.surface = surface;
        self
    }

    /// Resume from stage manifests left in the scratch root by an earlier
    /// interrupted conversion (default: off — the scratch root is cleared).
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Use `root` as the stable scratch root instead of the converter-owned
    /// sibling `<dir>.scratch`. The caller then owns its lifecycle (the
    /// ingest pipeline shares one root between import and conversion).
    pub fn scratch_root(mut self, root: &Path) -> Self {
        self.scratch_root = Some(root.to_path_buf());
        self
    }

    /// Attach a shared sort-timing sink: every stage sorter accumulates its
    /// run-formation and eager-merge wall time there (benchmark attribution).
    pub fn timings(mut self, timings: Arc<SortTimings>) -> Self {
        self.timings = Some(timings);
        self
    }

    /// Validate the configuration and produce the converter.
    pub fn build(self) -> Result<DosConverter> {
        let budget = self.budget.ok_or_else(|| {
            GraphError::InvalidConfig("DOS conversion requires a memory budget".into())
        })?;
        let stats = self.stats.ok_or_else(|| {
            GraphError::InvalidConfig("DOS conversion requires a stats sink".into())
        })?;
        if self.threads == 0 {
            return Err(GraphError::InvalidConfig("ingest threads must be >= 1".into()));
        }
        Ok(DosConverter {
            budget,
            stats,
            weight_fn: self.weight_fn,
            threads: self.threads,
            surface: self.surface,
            resume: self.resume,
            scratch_root: self.scratch_root,
            timings: self.timings,
        })
    }
}

/// The stable scratch root for a conversion into `dir`: a sibling directory
/// named `<dir>.scratch`. Stable (no pid or counter in the name) so a
/// restarted process finds the previous attempt's stage manifests.
pub fn scratch_root_for(dir: &Path) -> PathBuf {
    let mut os = dir.as_os_str().to_owned();
    os.push(".scratch");
    PathBuf::from(os)
}

/// Triad record used by the conversion pipeline: `(degree, src, dst)` —
/// paper §III-C's `EDGES` list of `<src, dest, deg>`.
type Triad = (u32, u32, u32);

/// Merge fan-in used in disk-degraded mode: high enough that every
/// realistic run count merges in a single pass, so no pre-merge copy of the
/// stage input is ever written.
const DEGRADED_FAN_IN: usize = 4096;

/// Adapts the by-`(src, dst)` sorted edge stream into `(deg, src, dst)`
/// triads: each source's contiguous run is buffered to learn its length
/// (= out-degree), then re-emitted with the degree attached. This is pass 2
/// of §III-C, running concurrently with pass 1's merge — the upstream
/// [`SortedStream`](graphz_extsort::SortedStream) drains while the
/// downstream sorter's run formation consumes these triads.
struct TriadEmitter<S: Iterator<Item = Result<Edge>>> {
    inner: S,
    queued: std::vec::IntoIter<Triad>,
    pending: Option<Edge>,
    done: bool,
}

impl<S: Iterator<Item = Result<Edge>>> TriadEmitter<S> {
    fn new(inner: S) -> Self {
        TriadEmitter { inner, queued: Vec::new().into_iter(), pending: None, done: false }
    }
}

impl<S: Iterator<Item = Result<Edge>>> Iterator for TriadEmitter<S> {
    type Item = Result<Triad>;

    fn next(&mut self) -> Option<Result<Triad>> {
        loop {
            if let Some(t) = self.queued.next() {
                return Some(Ok(t));
            }
            if self.done {
                return None;
            }
            // Gather one source's whole run; its length is the degree.
            let mut run: Vec<Edge> = Vec::new();
            if let Some(e) = self.pending.take() {
                run.push(e);
            }
            loop {
                match self.inner.next() {
                    Some(Ok(e)) => {
                        if run.last().is_some_and(|p| p.src != e.src) {
                            self.pending = Some(e);
                            break;
                        }
                        run.push(e);
                    }
                    Some(Err(e)) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    None => {
                        self.done = true;
                        break;
                    }
                }
            }
            if run.is_empty() {
                return None;
            }
            let deg = match cast::usize_to_u32(run.len(), "dos out-degree") {
                Ok(d) => d,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            let triads: Vec<Triad> = run.into_iter().map(|e| (deg, e.src, e.dst)).collect();
            self.queued = triads.into_iter();
        }
    }
}

/// Relabels destinations of the dst-sorted half-relabeled stream by
/// co-scanning `old2new.bin` (pass 6 of §III-C), yielding
/// `(new_src, new_dst, old_src, old_dst)` quads straight into the final
/// sort's run formation.
struct RelabelIter<S: Iterator<Item = Result<(u32, u32, u32)>>> {
    inner: S,
    map: RecordReader<u32>,
    map_pos: u64,
    cur_new: Option<u32>,
    failed: bool,
}

impl<S: Iterator<Item = Result<(u32, u32, u32)>>> Iterator for RelabelIter<S> {
    type Item = Result<(u32, u32, u32, u32)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let (new_src, old_dst, old_src) = match self.inner.next()? {
            Ok(rec) => rec,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        while self.map_pos <= cast::widen_u32(old_dst) {
            match self.map.next_record() {
                Ok(v) => {
                    self.cur_new = v;
                    self.map_pos += 1;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        match self.cur_new {
            Some(new_dst) => Some(Ok((new_src, new_dst, old_src, old_dst))),
            None => {
                self.failed = true;
                Some(Err(GraphError::Corrupt(
                    "old2new.bin shorter than the id space".into(),
                )))
            }
        }
    }
}

impl DosConverter {
    /// Start building a converter.
    pub fn builder() -> DosConverterBuilder {
        DosConverterBuilder {
            budget: None,
            stats: None,
            weight_fn: None,
            threads: 1,
            surface: FaultSurface::none(),
            resume: false,
            scratch_root: None,
            timings: None,
        }
    }

    /// Single-threaded converter; shorthand for
    /// `DosConverter::builder().budget(..).stats(..).build()`.
    pub fn new(budget: MemoryBudget, stats: Arc<IoStats>) -> Self {
        DosConverter {
            budget,
            stats,
            weight_fn: None,
            threads: 1,
            surface: FaultSurface::none(),
            resume: false,
            scratch_root: None,
            timings: None,
        }
    }

    /// Also emit per-edge weights computed by `f(original_src, original_dst)`.
    pub fn with_weights(mut self, f: fn(VertexId, VertexId) -> f32) -> Self {
        self.weight_fn = Some(f);
        self
    }

    /// Build one pipeline-stage sorter. Chained stages keep two sorts alive
    /// at once (an upstream merge drains into a downstream run formation),
    /// so every stage works under half the configured budget. `fan_in`
    /// overrides the merge fan-in when the disk budget forced degraded
    /// (single-pass merge) mode.
    fn sorter<T, K, F>(&self, key: F, fan_in: Option<usize>) -> Result<ExternalSorter<T, K, F>>
    where
        T: FixedCodec,
        K: Ord,
        F: Fn(&T) -> K,
    {
        let mut b = ExternalSorter::builder(key)
            .budget(self.budget.split(2))
            .stats(Arc::clone(&self.stats))
            .threads(self.threads)
            .faults(self.surface.clone());
        if let Some(t) = &self.timings {
            b = b.timings(Arc::clone(t));
        }
        if let Some(f) = fan_in {
            b = b.fan_in(f);
        }
        b.build()
    }

    /// Pre-stage disk check (DESIGN.md §6h). A sort stage's scratch
    /// footprint is roughly its input bytes as run files plus, when the run
    /// count exceeds the merge fan-in, one more full copy for a pre-merge
    /// pass. When only the pre-merge copy no longer fits the disk budget,
    /// degrade gracefully: raise the fan-in so the merge runs in a single
    /// pass (more seeks, no extra copy). When even the run files cannot fit,
    /// fail up front with a typed [`GraphError::StorageFull`] instead of
    /// dying mid-stage with scratch half-written.
    fn stage_fan_in(&self, stage: &str, input_bytes: u64) -> Result<Option<usize>> {
        let Some(disk) = self.surface.disk() else {
            return Ok(None);
        };
        let remaining = disk.remaining();
        if input_bytes > remaining {
            return Err(GraphError::StorageFull(format!(
                "DOS stage `{stage}` needs about {input_bytes} scratch bytes but only \
                 {remaining} remain in the disk budget"
            )));
        }
        if input_bytes.saturating_mul(2) > remaining {
            return Ok(Some(DEGRADED_FAN_IN));
        }
        Ok(None)
    }

    /// Open `path` for writing with the converter's stats sink, routed
    /// through its fault surface.
    fn writer(&self, path: &Path) -> Result<graphz_io::SurfaceWriter<graphz_io::TrackedWriter>> {
        Ok(self.surface.wrap(graphz_io::tracked::writer(path, Arc::clone(&self.stats))?))
    }

    /// Run the full conversion, producing `edges.bin`, `index.tbl`,
    /// `new2old.bin`, `old2new.bin`, and `meta.txt` under `dir`.
    ///
    /// The seven passes of §III-C run as a pipeline of chained
    /// [`sort_stream`](ExternalSorter::sort_stream)s grouped into five
    /// durable *stages* — `triads`, `old2new`, `new2old`, `adjacency`,
    /// `emit` — each of which commits a checksummed [`StageManifest`] into
    /// the stable scratch root when it completes (DESIGN.md §6h). A
    /// converter built with [`resume(true)`](DosConverterBuilder::resume)
    /// skips stages whose manifests (and recorded artifacts) verify and
    /// redoes everything from the first incomplete stage; because every
    /// stage is a deterministic function of the previous stage's files, the
    /// resumed directory is byte-identical to a clean run's.
    pub fn convert(&self, input: &EdgeListFile, dir: &Path) -> Result<DosGraph> {
        std::fs::create_dir_all(dir).ctx("create-dir", dir)?;
        let owns_root = self.scratch_root.is_none();
        let root = self.scratch_root.clone().unwrap_or_else(|| scratch_root_for(dir));
        if owns_root && !self.resume {
            match std::fs::remove_dir_all(&root) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        std::fs::create_dir_all(&root).ctx("create-dir", &root)?;
        let meta = input.meta();
        let num_vertices = meta.num_vertices;

        // A stage is "done" when its manifest loads, names that stage, and
        // every artifact it recorded still verifies (length + CRC). Anything
        // else — missing, torn, CRC-failing, damaged artifacts — reads as
        // incomplete, and the stage plus everything after it is redone.
        let manifest_path = |stage: &str| root.join(format!("{stage}.manifest"));
        let stage_done = |live: bool, stage: &str, base: &Path| -> Result<Option<StageManifest>> {
            if !live {
                return Ok(None);
            }
            let Some(m) = StageManifest::load(&manifest_path(stage))? else {
                return Ok(None);
            };
            if m.stage() != stage {
                return Ok(None);
            }
            let base = base.to_path_buf();
            if !m.verify_files(|name| base.join(name))? {
                return Ok(None);
            }
            Ok(Some(m))
        };
        // `live` stays true while completed stages are being skipped; the
        // first incomplete stage flips it, so later manifests (stale from an
        // older attempt) are redone and re-committed rather than trusted.
        let mut live = self.resume;

        // Stage `triads` (passes 1–3, pipelined): sort edges by (src, dst);
        // stream the merge through the triad emitter into the by-degree
        // sort's run formation; then walk the degree-sorted triads assigning
        // new ids, building the per-unique-degree groups, and emitting
        // half-relabeled edges (new src, old dst).
        let half = root.join("half-relabeled.bin");
        let assign = root.join("assign.bin"); // (old_id, new_id) per vertex with deg > 0
        let groups_path = root.join("groups.bin");
        let mut groups: Vec<DegreeGroup>;
        let assigned: u64;
        if let Some(m) = stage_done(live, "triads", &root)? {
            assigned = m.get_u64("assigned").ok_or_else(|| {
                GraphError::Corrupt("triads manifest lacks an `assigned` count".into())
            })?;
            groups = RecordReader::<DegreeGroup>::open(&groups_path, Arc::clone(&self.stats))?
                .read_all()?;
        } else {
            live = false;
            // By-src runs (8 B/edge) and by-deg runs (12 B/edge) coexist.
            let fan_in = self.stage_fan_in("triads", meta.num_edges.saturating_mul(20))?;
            groups = Vec::new();
            let mut next_new: u32 = 0;
            {
                let by_src_sorter = self.sorter(|e: &Edge| (e.src, e.dst), fan_in)?;
                // Ties between equal degrees break by ascending old id — the
                // paper breaks them "randomly"; a deterministic break makes
                // runs reproducible, which §IV-C's ordering guarantee
                // requires anyway.
                let by_deg_sorter =
                    self.sorter(|t: &Triad| (std::cmp::Reverse(t.0), t.1, t.2), fan_in)?;
                let by_src_runs = ScratchDir::new_in(&root, "by-src").ctx("scratch", &root)?;
                let by_deg_runs = ScratchDir::new_in(&root, "by-deg").ctx("scratch", &root)?;
                let by_src = by_src_sorter
                    .sort_stream(input.reader(Arc::clone(&self.stats))?, &by_src_runs)?;
                let mut by_deg =
                    by_deg_sorter.sort_stream(TriadEmitter::new(by_src), &by_deg_runs)?;
                drop(by_src_runs); // pass-1 runs fully drained into pass-2 runs

                // (new src, old dst, old src) — the old source rides along so
                // weights can be derived from original ids at the final pass.
                let mut half_w =
                    RecordWriter::<(u32, u32, u32), _>::from_writer(self.writer(&half)?);
                let mut assign_w =
                    RecordWriter::<(u32, u32), _>::from_writer(self.writer(&assign)?);
                let mut cur_src: Option<u32> = None;
                for (edge_offset, t) in (0u64..).zip(&mut by_deg) {
                    let (deg, src, dst) = t?;
                    if cur_src != Some(src) {
                        cur_src = Some(src);
                        let new_id = next_new;
                        next_new += 1;
                        assign_w.push(&(src, new_id))?;
                        if groups.last().map(|g| g.degree) != Some(deg) {
                            groups.push(DegreeGroup {
                                degree: deg,
                                first_id: new_id,
                                offset: edge_offset,
                            });
                        }
                    }
                    half_w.push(&(next_new - 1, dst, src))?;
                }
                half_w.finish()?;
                assign_w.finish()?;
            }
            assigned = cast::widen_u32(next_new);
            {
                let mut gw = RecordWriter::<DegreeGroup, _>::from_writer(self.writer(&groups_path)?);
                gw.push_all(groups.iter())?;
                gw.finish()?;
            }
            let mut m = StageManifest::new("triads");
            m.set("assigned", assigned);
            m.record_file("half-relabeled.bin", &half).ctx("record", &half)?;
            m.record_file("assign.bin", &assign).ctx("record", &assign)?;
            m.record_file("groups.bin", &groups_path).ctx("record", &groups_path)?;
            m.commit(&manifest_path("triads"), &self.surface)?;
        }

        // Zero-degree fill (paper: "we need to fill in those vertices with
        // 0 degrees") — a pure function of the triads outputs, so it is
        // recomputed on resume rather than persisted.
        if assigned < num_vertices {
            groups.push(DegreeGroup {
                degree: 0,
                first_id: cast::to_u32(assigned, "dos first zero-degree id")?,
                offset: meta.num_edges,
            });
        }

        // Stage `old2new` (pass 4): materialize old2new.bin by draining the
        // assignment sort's merge straight into the zero-degree co-scan.
        let old2new_path = dir.join("old2new.bin");
        if stage_done(live, "old2new", dir)?.is_none() {
            live = false;
            let fan_in = self.stage_fan_in("old2new", assigned.saturating_mul(16))?;
            {
                let by_old_sorter = self.sorter(|p: &(u32, u32)| p.0, fan_in)?;
                let by_old_runs = ScratchDir::new_in(&root, "assign").ctx("scratch", &root)?;
                let mut by_old = by_old_sorter.sort_stream(
                    RecordReader::<(u32, u32)>::open(&assign, Arc::clone(&self.stats))?,
                    &by_old_runs,
                )?;
                let mut w = RecordWriter::<u32, _>::from_writer(self.writer(&old2new_path)?);
                let mut pending = by_old.next_record()?;
                let mut next_zero: u32 = cast::to_u32(assigned, "dos first zero-degree id")?;
                for old in 0..cast::to_u32(num_vertices, "dos vertex count")? {
                    match pending {
                        Some((o, n)) if o == old => {
                            w.push(&n)?;
                            pending = by_old.next_record()?;
                        }
                        _ => {
                            w.push(&next_zero)?;
                            next_zero += 1;
                        }
                    }
                }
                if pending.is_some() {
                    return Err(GraphError::Corrupt(
                        "DOS conversion saw a source id beyond num_vertices".into(),
                    ));
                }
                w.finish()?;
            }
            let mut m = StageManifest::new("old2new");
            m.record_file("old2new.bin", &old2new_path).ctx("record", &old2new_path)?;
            m.commit(&manifest_path("old2new"), &self.surface)?;
        }

        // Stage `new2old` (pass 5): old2new inverted via one more external
        // sort, its merge draining directly into the new2old writer.
        let new2old_path = dir.join("new2old.bin");
        if stage_done(live, "new2old", dir)?.is_none() {
            live = false;
            let fan_in = self.stage_fan_in("new2old", num_vertices.saturating_mul(16))?;
            {
                let by_new_sorter = self.sorter(|p: &(u32, u32)| p.0, fan_in)?;
                let by_new_runs = ScratchDir::new_in(&root, "pairs").ctx("scratch", &root)?;
                let olds = RecordReader::<u32>::open(&old2new_path, Arc::clone(&self.stats))?;
                let pairs = olds.enumerate().map(|(old, new)| -> Result<(u32, u32)> {
                    // Pass 4 already proved num_vertices fits u32.
                    Ok((new?, cast::usize_to_u32(old, "dos old id")?))
                });
                let mut by_new = by_new_sorter.sort_stream(pairs, &by_new_runs)?;
                let mut w = RecordWriter::<u32, _>::from_writer(self.writer(&new2old_path)?);
                while let Some((_, old)) = by_new.next_record()? {
                    w.push(&old)?;
                }
                w.finish()?;
            }
            let mut m = StageManifest::new("new2old");
            m.record_file("new2old.bin", &new2old_path).ctx("record", &new2old_path)?;
            m.commit(&manifest_path("new2old"), &self.surface)?;
        }

        // Stage `adjacency` (passes 6–7, pipelined): sort half-relabeled
        // edges by old dst, relabel destinations by co-scanning old2new.bin
        // sequentially (paper: "with the mapping from oldid to newid, we
        // sequentially relabel dests") straight into the final sort's run
        // formation, and write the adjacency file (destination ids only;
        // offsets are computed by Eq. 1) plus, when requested, the parallel
        // per-edge weight file.
        let edges_path = dir.join("edges.bin");
        if stage_done(live, "adjacency", dir)?.is_none() {
            live = false;
            // By-dst runs (12 B/edge) and final-quad runs (16 B/edge) coexist.
            let fan_in = self.stage_fan_in("adjacency", meta.num_edges.saturating_mul(28))?;
            let mut written: u64 = 0;
            {
                let by_dst_sorter = self.sorter(|p: &(u32, u32, u32)| (p.1, p.0, p.2), fan_in)?;
                let final_sorter =
                    self.sorter(|p: &(u32, u32, u32, u32)| (p.0, p.1, p.2, p.3), fan_in)?;
                let by_dst_runs = ScratchDir::new_in(&root, "half-by-dst").ctx("scratch", &root)?;
                let final_runs = ScratchDir::new_in(&root, "final").ctx("scratch", &root)?;
                let by_dst = by_dst_sorter.sort_stream(
                    RecordReader::<(u32, u32, u32)>::open(&half, Arc::clone(&self.stats))?,
                    &by_dst_runs,
                )?;
                let relabel = RelabelIter {
                    inner: by_dst,
                    map: RecordReader::<u32>::open(&old2new_path, Arc::clone(&self.stats))?,
                    map_pos: 0,
                    cur_new: None,
                    failed: false,
                };
                let mut final_sorted = final_sorter.sort_stream(relabel, &final_runs)?;
                drop(by_dst_runs); // pass-6 runs fully drained into pass-7 runs

                let mut w = RecordWriter::<u32, _>::from_writer(self.writer(&edges_path)?);
                let mut weights_w = match self.weight_fn {
                    Some(_) => Some(RecordWriter::<f32, _>::from_writer(
                        self.writer(&dir.join("weights.bin"))?,
                    )),
                    None => None,
                };
                while let Some((_, new_dst, old_src, old_dst)) = final_sorted.next_record()? {
                    w.push(&new_dst)?;
                    if let (Some(ww), Some(f)) = (&mut weights_w, self.weight_fn) {
                        ww.push(&f(old_src, old_dst))?;
                    }
                    written += 1;
                }
                w.finish()?;
                if let Some(ww) = weights_w {
                    ww.finish()?;
                }
            }
            if written != meta.num_edges {
                return Err(GraphError::Corrupt(format!(
                    "DOS conversion wrote {written} edges, expected {}",
                    meta.num_edges
                )));
            }
            let mut m = StageManifest::new("adjacency");
            m.set("written", written);
            m.record_file("edges.bin", &edges_path).ctx("record", &edges_path)?;
            if self.weight_fn.is_some() {
                let weights = dir.join("weights.bin");
                m.record_file("weights.bin", &weights).ctx("record", &weights)?;
            }
            m.commit(&manifest_path("adjacency"), &self.surface)?;
        }

        // Stage `emit`: the in-memory index, metadata, and the integrity
        // sidecar (length + CRC32 of every data file, checked by
        // `verify_dos`). The sidecar is written after the data files, so an
        // interrupted conversion cannot leave a complete-looking sidecar
        // over partial data.
        let index = DosIndex::new(groups, num_vertices, meta.num_edges);
        let dos_meta = GraphMeta {
            num_vertices,
            num_edges: meta.num_edges,
            unique_degrees: index.unique_degrees(),
            max_degree: index.groups().first().map_or(0, |g| cast::widen_u32(g.degree)),
        };
        if stage_done(live, "emit", dir)?.is_none() {
            {
                let mut w =
                    RecordWriter::<DegreeGroup, _>::from_writer(self.writer(&dir.join("index.tbl"))?);
                w.push_all(index.groups().iter())?;
                w.finish()?;
            }
            let mut mf = MetaFile::new();
            mf.set("format", "dos")
                .set("weighted", if self.weight_fn.is_some() { 1 } else { 0 })
                .set_graph_meta(&dos_meta);
            mf.save_with(&dir.join("meta.txt"), &self.surface)?;

            let mut sums = MetaFile::new();
            sums.set("format", "dos-checksums");
            let mut data_files = vec!["edges.bin", "index.tbl", "old2new.bin", "new2old.bin"];
            if self.weight_fn.is_some() {
                data_files.push("weights.bin");
            }
            for name in data_files {
                let reader =
                    graphz_io::tracked::reader(&dir.join(name), Arc::clone(&self.stats))?;
                let (len, crc) = graphz_io::crc32_stream(reader)?;
                sums.set(&format!("file:{name}"), format!("{len},{crc:08x}"));
            }
            sums.save_with(&dir.join("checksums.txt"), &self.surface)?;

            let mut m = StageManifest::new("emit");
            let index_tbl = dir.join("index.tbl");
            m.record_file("index.tbl", &index_tbl).ctx("record", &index_tbl)?;
            let meta_txt = dir.join("meta.txt");
            m.record_file("meta.txt", &meta_txt).ctx("record", &meta_txt)?;
            let checksums = dir.join("checksums.txt");
            m.record_file("checksums.txt", &checksums).ctx("record", &checksums)?;
            m.commit(&manifest_path("emit"), &self.surface)?;
        }

        // Everything durable: the scratch root (intermediate artifacts and
        // stage manifests) has served its purpose.
        if owns_root {
            let _ = std::fs::remove_dir_all(&root);
        }

        Ok(DosGraph {
            dir: dir.to_path_buf(),
            index,
            meta: dos_meta,
            weighted: self.weight_fn.is_some(),
        })
    }
}

/// An opened DOS directory: the in-memory index plus paths to the data files.
#[derive(Debug, Clone)]
pub struct DosGraph {
    dir: PathBuf,
    index: DosIndex,
    meta: GraphMeta,
    weighted: bool,
}

impl DosGraph {
    pub fn open(dir: &Path, stats: Arc<IoStats>) -> Result<Self> {
        let mf = MetaFile::load(&dir.join("meta.txt"))?;
        if mf.get("format") != Some("dos") {
            return Err(GraphError::Corrupt(format!(
                "{} is not a DOS directory (format={:?})",
                dir.display(),
                mf.get("format")
            )));
        }
        let meta = mf.graph_meta()?;
        let weighted = mf.get("weighted") == Some("1");
        let index =
            DosIndex::load(&dir.join("index.tbl"), stats, meta.num_vertices, meta.num_edges)?;
        Ok(DosGraph { dir: dir.to_path_buf(), index, meta, weighted })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn index(&self) -> &DosIndex {
        &self.index
    }

    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    pub fn edges_path(&self) -> PathBuf {
        self.dir.join("edges.bin")
    }

    /// Whether the conversion emitted per-edge weights.
    pub fn has_weights(&self) -> bool {
        self.weighted
    }

    /// Path of `weights.bin` (one `f32` per edge, parallel to `edges.bin`),
    /// if the graph is weighted.
    pub fn weights_path(&self) -> Option<PathBuf> {
        self.weighted.then(|| self.dir.join("weights.bin"))
    }

    pub fn new2old_path(&self) -> PathBuf {
        self.dir.join("new2old.bin")
    }

    pub fn old2new_path(&self) -> PathBuf {
        self.dir.join("old2new.bin")
    }

    /// Open a reusable random-access cursor over `edges.bin` — the shared
    /// point-lookup surface for the serving layer, the CLI topology
    /// commands, and [`DosGraph::adjacency`]. The file handle and scratch
    /// buffer are opened/allocated once here, so each subsequent
    /// [`AdjCursor::read_into`] is one seek plus one sequential read with
    /// no per-query allocation (ipa `serve-read-alloc`).
    pub fn cursor(&self, stats: Arc<IoStats>) -> Result<AdjCursor> {
        let edges_path = self.edges_path();
        let file = TrackedFile::open(&edges_path, stats).ctx("open", &edges_path)?;
        Ok(AdjCursor { file, buf: Vec::new() })
    }

    /// Random-access read of one vertex's adjacency list (new ids). One seek
    /// plus one sequential read — the access pattern DOS is designed for.
    /// One-shot convenience over [`DosGraph::cursor`]; repeated point
    /// lookups should hold a cursor instead of reopening the file per call.
    pub fn adjacency(&self, v: VertexId, stats: Arc<IoStats>) -> Result<Vec<VertexId>> {
        let mut cursor = self.cursor(stats)?;
        let mut out = Vec::new();
        cursor.read_into(&self.index, v, &mut out)?;
        Ok(out)
    }

    /// Random-access read of one vertex's adjacency list together with the
    /// stored per-edge weights. Errors if the graph is unweighted.
    pub fn adjacency_weighted(
        &self,
        v: VertexId,
        stats: Arc<IoStats>,
    ) -> Result<Vec<(VertexId, f32)>> {
        use std::io::{Read, Seek, SeekFrom};
        let weights_path = self.weights_path().ok_or_else(|| {
            GraphError::InvalidConfig("graph has no weights.bin; convert with_weights".into())
        })?;
        let (deg, offset) = self.index.lookup(v)?;
        let byte_offset = cast::mul_u64(offset, 4, "dos adjacency byte offset")?;
        let byte_len = cast::mul_usize(cast::degree_index(deg), 4, "dos adjacency length")?;
        let edges_path = self.edges_path();
        let mut ef =
            TrackedFile::open(&edges_path, Arc::clone(&stats)).ctx("open", &edges_path)?;
        ef.seek(SeekFrom::Start(byte_offset))?;
        let mut ebuf = vec![0u8; byte_len];
        ef.read_exact(&mut ebuf)?;
        let mut wf = TrackedFile::open(&weights_path, stats).ctx("open", &weights_path)?;
        wf.seek(SeekFrom::Start(byte_offset))?;
        let mut wbuf = vec![0u8; byte_len];
        wf.read_exact(&mut wbuf)?;
        let dsts: Vec<u32> = graphz_types::codec::decode_slice(&ebuf);
        let ws: Vec<f32> = graphz_types::codec::decode_slice(&wbuf);
        Ok(dsts.into_iter().zip(ws).collect())
    }

    /// Load the new→old id map (4 bytes per vertex).
    pub fn load_new2old(&self, stats: Arc<IoStats>) -> Result<Vec<VertexId>> {
        RecordReader::<u32>::open(&self.new2old_path(), stats)?.read_all()
    }

    /// Load the old→new id map (4 bytes per vertex).
    pub fn load_old2new(&self, stats: Arc<IoStats>) -> Result<Vec<VertexId>> {
        RecordReader::<u32>::open(&self.old2new_path(), stats)?.read_all()
    }
}

/// A reusable read-only cursor over a DOS `edges.bin`: one open file handle
/// plus one scratch byte buffer, shared by every point lookup issued
/// through it. This is the allocation-disciplined adjacency read primitive
/// the serving layer's `GraphView` is built on — each [`read_into`] call
/// does one Eq. 1 index lookup, one seek, and one sequential read, reusing
/// both the handle and the buffer (checked by the `serve-read-alloc` ipa
/// rule).
///
/// A cursor is single-threaded by construction (`&mut self` on every read);
/// concurrent readers each open their own via [`DosGraph::cursor`], which
/// is cheap (one `open(2)`), instead of sharing one handle behind a lock.
///
/// [`read_into`]: AdjCursor::read_into
pub struct AdjCursor {
    file: TrackedFile,
    buf: Vec<u8>,
}

impl AdjCursor {
    /// Read the adjacency list of new-id `v` into `out` (cleared first),
    /// returning the out-degree. Out-of-range ids are the typed
    /// [`GraphError::UnknownVertex`].
    pub fn read_into(
        &mut self,
        index: &DosIndex,
        v: VertexId,
        out: &mut Vec<VertexId>,
    ) -> Result<Degree> {
        use std::io::{Read, Seek, SeekFrom};
        let (deg, offset) = index.lookup(v)?;
        let byte_offset = cast::mul_u64(offset, 4, "dos adjacency byte offset")?;
        let byte_len = cast::mul_usize(cast::degree_index(deg), 4, "dos adjacency length")?;
        if self.buf.len() < byte_len {
            self.buf.resize(byte_len, 0);
        }
        self.file.seek(SeekFrom::Start(byte_offset))?;
        self.file.read_exact(&mut self.buf[..byte_len])?;
        graphz_types::codec::decode_into(&self.buf[..byte_len], out);
        Ok(deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn stats() -> Arc<IoStats> {
        IoStats::new()
    }

    /// DESIGN.md §6h: the pre-stage disk check degrades to a single-pass
    /// merge when only the pre-merge copy no longer fits, and fails with the
    /// typed `StorageFull` when even the run files cannot fit.
    #[test]
    fn stage_fan_in_degrades_then_fails_as_the_budget_shrinks() {
        use graphz_io::{DiskBudget, FaultSurface};
        let no_budget =
            DosConverter::builder().budget(MemoryBudget::from_kib(1)).stats(stats());
        assert_eq!(no_budget.build().unwrap().stage_fan_in("x", 600).unwrap(), None);

        let conv = DosConverter::builder()
            .budget(MemoryBudget::from_kib(1))
            .stats(stats())
            .faults(FaultSurface::none().with_disk_budget(DiskBudget::new(1000)))
            .build()
            .unwrap();
        // Roomy: input plus a full pre-merge copy both fit.
        assert_eq!(conv.stage_fan_in("x", 400).unwrap(), None);
        // Tight: runs fit but a second copy would not — degrade the merge.
        assert_eq!(conv.stage_fan_in("x", 600).unwrap(), Some(DEGRADED_FAN_IN));
        // Exhausted: not even the run files fit — typed failure up front.
        let err = conv.stage_fan_in("x", 2000).unwrap_err();
        assert!(matches!(err, GraphError::StorageFull(_)), "got {err:?}");
        assert!(err.to_string().contains("stage `x`"), "{err}");
    }

    fn convert(edges: Vec<Edge>) -> (ScratchDir, DosGraph) {
        let dir = ScratchDir::new("dos").unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), edges).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), stats())
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        (dir, dos)
    }

    /// The paper's running example (§III-B, Figure 1 / Tables III–VII): a
    /// 7-vertex graph whose max id exceeds the vertex count. The OCR of the
    /// published tables garbles the concrete ids, so this test pins down the
    /// *construction* under our deterministic tie-break and verifies every
    /// structural property the tables illustrate.
    #[test]
    fn paper_example() {
        // Old ids: 0,1,2,3,5,7,11 (sparse, max id 11 > 7 vertices).
        // Out-degrees: 0 -> {1,2,3,7}: 4;  1 -> {0}: 1;  2 -> {0,7}: 2;
        //              3 -> {2,5}: 2;  7 -> {11}: 1;  5, 11 isolated.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(0, 7),
            Edge::new(1, 0),
            Edge::new(2, 0),
            Edge::new(2, 7),
            Edge::new(3, 2),
            Edge::new(3, 5),
            Edge::new(7, 11),
        ];
        let (_dir, dos) = convert(edges);
        let meta = dos.meta();
        assert_eq!(meta.num_vertices, 12); // dense id space 0..=11
        assert_eq!(meta.num_edges, 10);
        assert_eq!(meta.max_degree, 4);
        // Unique degrees: {4, 2, 1, 0}.
        assert_eq!(meta.unique_degrees, 4);

        let idx = dos.index();
        // ids_table / id_offset_table (Tables VI & VII), deterministic
        // tie-break by ascending old id:
        //   new 0 = old 0 (deg 4), new 1 = old 2 (deg 2), new 2 = old 3
        //   (deg 2), new 3 = old 1 (deg 1), new 4 = old 7 (deg 1), then
        //   zero-degree fill: new 5 = old 4, new 6 = old 5, ... in old order.
        assert_eq!(
            idx.groups(),
            &[
                DegreeGroup { degree: 4, first_id: 0, offset: 0 },
                DegreeGroup { degree: 2, first_id: 1, offset: 4 },
                DegreeGroup { degree: 1, first_id: 3, offset: 8 },
                DegreeGroup { degree: 0, first_id: 5, offset: 10 },
            ]
        );

        // Eq. 1 walkthrough like the paper's "find the offset of vertex 2"
        // narration: vertex 2 has degree 2; first id with degree 2 is 1 at
        // offset 4; offset = 4 + (2 - 1) * 2 = 6.
        assert_eq!(idx.lookup(2).unwrap(), (2, 6));
        assert_eq!(idx.lookup(0).unwrap(), (4, 0));
        assert_eq!(idx.lookup(4).unwrap(), (1, 9));
        assert_eq!(idx.lookup(11).unwrap(), (0, 10));

        let new2old = dos.load_new2old(stats()).unwrap();
        assert_eq!(&new2old[..5], &[0, 2, 3, 1, 7]);
        let old2new = dos.load_old2new(stats()).unwrap();
        assert_eq!(old2new.len(), 12);
        // Bijection check.
        for (new, &old) in new2old.iter().enumerate() {
            assert_eq!(old2new[old as usize] as usize, new);
        }

        // Adjacency of new id 0 (old 0) = {1,2,3,7} relabeled to new ids.
        let adj: HashSet<u32> = dos.adjacency(0, stats()).unwrap().into_iter().collect();
        let expect: HashSet<u32> =
            [1u32, 2, 3, 7].iter().map(|&o| old2new[o as usize]).collect();
        assert_eq!(adj, expect);
    }

    #[test]
    fn relabeling_preserves_graph_structure() {
        let mut edges = Vec::new();
        // A deterministic pseudo-random graph with repeated degrees.
        let mut x: u64 = 12345;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = ((x >> 33) % 50) as u32;
            let dst = ((x >> 17) % 50) as u32;
            edges.push(Edge::new(src, dst));
        }
        let (_dir, dos) = convert(edges.clone());
        let old2new = dos.load_old2new(stats()).unwrap();

        // Expected multiset of relabeled edges.
        let mut expected: HashMap<(u32, u32), u32> = HashMap::new();
        for e in &edges {
            *expected
                .entry((old2new[e.src as usize], old2new[e.dst as usize]))
                .or_default() += 1;
        }
        // Actual: walk every vertex's adjacency via the index.
        let mut actual: HashMap<(u32, u32), u32> = HashMap::new();
        for v in 0..dos.meta().num_vertices as u32 {
            for d in dos.adjacency(v, stats()).unwrap() {
                *actual.entry((v, d)).or_default() += 1;
            }
        }
        assert_eq!(actual, expected);
    }

    #[test]
    fn degrees_are_non_increasing_in_new_order() {
        let edges: Vec<Edge> =
            (0..200u32).flat_map(|i| (0..(i % 7)).map(move |j| Edge::new(i, j))).collect();
        let (_dir, dos) = convert(edges);
        let idx = dos.index();
        let mut prev = u32::MAX;
        for v in 0..dos.meta().num_vertices as u32 {
            let d = idx.degree_of(v);
            assert!(d <= prev, "degree increased at new id {v}");
            prev = d;
        }
    }

    #[test]
    fn offsets_match_cumulative_degrees() {
        let edges: Vec<Edge> =
            (0..100u32).flat_map(|i| (0..(i % 5)).map(move |j| Edge::new(i, j))).collect();
        let (_dir, dos) = convert(edges);
        let idx = dos.index();
        let mut cum: u64 = 0;
        for v in 0..dos.meta().num_vertices as u32 {
            assert_eq!(idx.offset_of(v).unwrap(), cum, "offset mismatch at {v}");
            cum += idx.degree_of(v) as u64;
        }
        assert_eq!(cum, dos.meta().num_edges);
    }

    #[test]
    fn edges_in_range_sums_degrees() {
        let edges: Vec<Edge> =
            (0..50u32).flat_map(|i| (0..(i % 4)).map(move |j| Edge::new(i, j))).collect();
        let (_dir, dos) = convert(edges);
        let idx = dos.index();
        let n = dos.meta().num_vertices as u32;
        assert_eq!(idx.edges_in_range(0, n).unwrap(), dos.meta().num_edges);
        assert_eq!(idx.edges_in_range(5, 5).unwrap(), 0);
        let total: u64 = (3..17u32).map(|v| idx.degree_of(v) as u64).sum();
        assert_eq!(idx.edges_in_range(3, 17).unwrap(), total);
    }

    #[test]
    fn index_is_tiny_compared_to_csr() {
        let edges: Vec<Edge> =
            (0..2000u32).flat_map(|i| (0..(i % 10)).map(move |j| Edge::new(i, j))).collect();
        let (_dir, dos) = convert(edges);
        // CSR would need 8 * (V + 1) bytes; DOS needs 16 per unique degree.
        let csr_bytes = (dos.meta().num_vertices + 1) * 8;
        assert!(dos.index().index_bytes() * 50 < csr_bytes,
            "DOS {} vs CSR {}", dos.index().index_bytes(), csr_bytes);
    }

    #[test]
    fn unique_degree_claim_holds() {
        let edges: Vec<Edge> =
            (0..300u32).flat_map(|i| (0..(i % 20)).map(move |j| Edge::new(i, j))).collect();
        let n_edges = edges.len() as u64;
        let (_dir, dos) = convert(edges);
        assert!(dos.meta().unique_degrees <= unique_degree_bound(n_edges));
    }

    #[test]
    fn reopen_roundtrip() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0), Edge::new(0, 2)];
        let (dir, dos) = convert(edges);
        let reopened = DosGraph::open(&dir.path().join("dos"), stats()).unwrap();
        assert_eq!(reopened.index(), dos.index());
        assert_eq!(reopened.meta(), dos.meta());
    }

    #[test]
    fn corrupt_index_rejected_on_open() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let (dir, _dos) = convert(edges);
        let idx_path = dir.path().join("dos").join("index.tbl");
        // Write garbage groups: unsorted first_ids.
        let bogus = [
            DegreeGroup { degree: 1, first_id: 5, offset: 0 },
            DegreeGroup { degree: 2, first_id: 1, offset: 3 },
        ];
        let bytes: Vec<u8> = bogus.iter().flat_map(|g| g.to_bytes()).collect();
        std::fs::write(&idx_path, bytes).unwrap();
        assert!(matches!(
            DosGraph::open(&dir.path().join("dos"), stats()),
            Err(GraphError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        let (_d1, dos1) = convert(vec![Edge::new(0, 0)]);
        assert_eq!(dos1.meta().num_vertices, 1);
        assert_eq!(dos1.index().lookup(0).unwrap(), (1, 0));

        let (_d2, dos2) = convert(vec![Edge::new(3, 3)]);
        assert_eq!(dos2.meta().num_vertices, 4);
        assert_eq!(dos2.index().degree_of(0), 1); // old 3 becomes new 0
        assert_eq!(dos2.index().degree_of(1), 0);
    }

    #[test]
    fn weighted_conversion_preserves_original_id_weights() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(2, 0),
            Edge::new(1, 2),
            Edge::new(2, 2),
        ];
        let dir = ScratchDir::new("dos-weighted").unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), edges.clone()).unwrap();
        let dos = DosConverter::new(MemoryBudget::from_kib(64), stats())
            .with_weights(graphz_types::derive_weight)
            .convert(&el, &dir.path().join("dos"))
            .unwrap();
        assert!(dos.has_weights());
        assert!(dos.weights_path().unwrap().exists());

        let old2new = dos.load_old2new(stats()).unwrap();
        let new2old = dos.load_new2old(stats()).unwrap();
        // Every edge's stored weight must equal the weight derived from the
        // ORIGINAL endpoints, regardless of relabeling.
        let mut seen = 0;
        for v in 0..dos.meta().num_vertices as u32 {
            for (dst, w) in dos.adjacency_weighted(v, stats()).unwrap() {
                let (os, od) = (new2old[v as usize], new2old[dst as usize]);
                assert_eq!(w, graphz_types::derive_weight(os, od), "edge {os}->{od}");
                seen += 1;
            }
        }
        assert_eq!(seen, edges.len());
        let _ = old2new;

        // Unweighted graphs refuse weighted access.
        let plain = DosConverter::new(MemoryBudget::from_kib(64), stats())
            .convert(&el, &dir.path().join("dos-plain"))
            .unwrap();
        assert!(!plain.has_weights());
        assert!(plain.adjacency_weighted(0, stats()).is_err());
        // Reopen keeps the weighted flag.
        let reopened = DosGraph::open(&dir.path().join("dos"), stats()).unwrap();
        assert!(reopened.has_weights());
    }

    #[test]
    fn unique_degree_bound_formula() {
        assert_eq!(unique_degree_bound(100), 20);
        assert_eq!(unique_degree_bound(0), 0);
        assert!(unique_degree_bound(1_000_000) >= 2000);
        // Non-square counts round the root up: ceil(sqrt(2)) = 2.
        assert_eq!(unique_degree_bound(2), 4);
        assert_eq!(unique_degree_bound(99), 20);
        // Exact at the extreme (no f64 precision loss above 2^53):
        // isqrt(u64::MAX) = 2^32 - 1, ceil = 2^32.
        assert_eq!(unique_degree_bound(u64::MAX), 2 * (1u64 << 32));
    }

    #[test]
    fn converter_builder_validates_configuration() {
        assert!(DosConverter::builder().stats(stats()).build().is_err());
        assert!(DosConverter::builder().budget(MemoryBudget::from_kib(64)).build().is_err());
        assert!(DosConverter::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .threads(0)
            .build()
            .is_err());
        assert!(DosConverter::builder()
            .budget(MemoryBudget::from_kib(64))
            .stats(stats())
            .weights(graphz_types::derive_weight)
            .threads(4)
            .build()
            .is_ok());
    }

    /// Every file a conversion produced, name → bytes.
    fn dir_contents(dir: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
        let mut out = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            out.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            );
        }
        out
    }

    #[test]
    fn parallel_conversion_is_byte_identical_to_serial() {
        // Deterministic pseudo-random graph with duplicate edges, repeated
        // degrees, and a sparse id space (zero-degree tail).
        let mut edges = Vec::new();
        let mut x: u64 = 99;
        for _ in 0..800 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = ((x >> 33) % 60) as u32;
            let dst = ((x >> 13) % 90) as u32;
            edges.push(Edge::new(src, dst));
        }
        let dir = ScratchDir::new("dos-par").unwrap();
        let el = EdgeListFile::create(&dir.file("g.bin"), stats(), edges).unwrap();
        let serial_dir = dir.path().join("serial");
        DosConverter::builder()
            .budget(MemoryBudget::from_kib(4))
            .stats(stats())
            .weights(graphz_types::derive_weight)
            .build()
            .unwrap()
            .convert(&el, &serial_dir)
            .unwrap();
        let serial = dir_contents(&serial_dir);
        assert!(serial.contains_key("edges.bin") && serial.contains_key("checksums.txt"));
        for threads in [2usize, 4] {
            let par_dir = dir.path().join(format!("par-{threads}"));
            DosConverter::builder()
                .budget(MemoryBudget::from_kib(4))
                .stats(stats())
                .weights(graphz_types::derive_weight)
                .threads(threads)
                .build()
                .unwrap()
                .convert(&el, &par_dir)
                .unwrap();
            assert_eq!(dir_contents(&par_dir), serial, "threads={threads}");
        }
    }

    #[test]
    fn eq1_overflow_is_a_typed_error() {
        // A (synthetic) index whose base offset sits at u64::MAX: Eq. 1's
        // `base + rank * degree` must fail loudly, not wrap around to a
        // small offset that would silently read the wrong adjacency block.
        let idx = DosIndex::new(
            vec![DegreeGroup { degree: u32::MAX, first_id: 0, offset: u64::MAX }],
            u64::from(u32::MAX),
            u64::MAX,
        );
        assert_eq!(idx.offset_of(0).unwrap(), u64::MAX); // rank 0: base only
        let e = idx.offset_of(1).unwrap_err();
        assert!(matches!(e, GraphError::OffsetOverflow(_)), "got {e:?}");
        assert!(e.to_string().contains("eq1"), "{e}");
        assert!(matches!(idx.lookup(2), Err(GraphError::OffsetOverflow(_))));
    }
}
