//! Run formation for the external sort: serial, and sharded across N
//! producer threads.
//!
//! The parallel path follows the workspace's deterministic-schedule rule
//! (DESIGN.md §6d, §6g): the *plan* is a pure function of the configuration,
//! never of thread timing. Input records are cut into fixed-capacity chunks
//! in arrival order; chunk `i` is sorted by producer `i % threads` and
//! spilled as `run-{i:06}.bin`. Which OS thread sorts a chunk never affects
//! which records it holds or what the resulting run file contains, so the
//! set of runs is identical for any interleaving. Run *boundaries* do differ
//! between thread counts (each producer works under a split
//! [`MemoryBudget`]), which is harmless for byte-identical output because
//! every sort key used by the ingest pipeline is total over the record bytes
//! — see DESIGN.md §6g for the full argument.
//!
//! Producer threads are plain scoped workers (no locks — chunks arrive over
//! bounded channels, results over an unbounded one), so the lock-order audit
//! has nothing to track here by construction.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;

use graphz_io::{FaultSurface, IoStats, RecordWriter, ScratchDir};
use graphz_types::{FixedCodec, GraphError, Result};

/// The outcome of run formation: spilled run files in spill order, plus an
/// in-memory tail run (already sorted) that never needed to touch disk.
pub(crate) struct RunPlan<T> {
    pub files: Vec<PathBuf>,
    pub tail: Vec<T>,
    pub total: u64,
}

/// Sort `buf` by `key` and spill it as run file `idx`. All bytes flow
/// through the sorter's [`FaultSurface`], so chaos tests reach every run
/// writer and a disk budget sees every spilled byte.
fn spill<T, K, F>(
    key: &F,
    stats: &Arc<IoStats>,
    surface: &FaultSurface,
    scratch: &ScratchDir,
    idx: usize,
    buf: &mut Vec<T>,
) -> Result<PathBuf>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    buf.sort_by_key(|r| key(r));
    let path = scratch.file(&format!("run-{idx:06}.bin"));
    let mut w = RecordWriter::<T, _>::from_writer(
        surface.wrap(graphz_io::tracked::writer(&path, Arc::clone(stats))?),
    );
    w.push_all(buf.iter())?;
    w.finish()?;
    buf.clear();
    Ok(path)
}

/// Single-threaded run formation: spill full chunks, keep the final partial
/// chunk in memory as the tail run.
pub(crate) fn form_runs_serial<T, K, F>(
    key: &F,
    stats: &Arc<IoStats>,
    surface: &FaultSurface,
    scratch: &ScratchDir,
    chunk_records: usize,
    input: impl Iterator<Item = Result<T>>,
) -> Result<RunPlan<T>>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut files = Vec::new();
    let mut buf: Vec<T> = Vec::with_capacity(chunk_records.min(1 << 20));
    let mut total = 0u64;
    for item in input {
        buf.push(item?);
        total += 1;
        if buf.len() >= chunk_records {
            files.push(spill(key, stats, surface, scratch, files.len(), &mut buf)?);
        }
    }
    buf.sort_by_key(|r| key(r));
    Ok(RunPlan { files, tail: buf, total })
}

/// Sharded run formation: the calling thread chunks the input and deals
/// chunk `i` to producer `i % threads`; each producer sorts and spills its
/// chunks independently. Returns run files ordered by chunk index.
///
/// Backpressure: each producer's inbox holds one chunk (plus the one it is
/// sorting), and the dispatcher fills one more, so at most `2·threads + 1`
/// chunks are in flight — the caller sizes `chunk_records` from a split
/// budget accordingly.
pub(crate) fn form_runs_parallel<T, K, F>(
    key: &F,
    stats: &Arc<IoStats>,
    surface: &FaultSurface,
    scratch: &ScratchDir,
    threads: usize,
    chunk_records: usize,
    input: impl Iterator<Item = Result<T>>,
) -> Result<RunPlan<T>>
where
    T: FixedCodec + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<PathBuf>)>();
        let mut inboxes = Vec::with_capacity(threads);
        for producer in 0..threads {
            let (tx, rx) = mpsc::sync_channel::<(usize, Vec<T>)>(1);
            inboxes.push(tx);
            let done_tx = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("graphz-ingest-{producer}"))
                .spawn_scoped(scope, move || {
                    for (idx, mut buf) in rx.iter() {
                        let run = spill(key, stats, surface, scratch, idx, &mut buf);
                        if done_tx.send((idx, run)).is_err() {
                            return;
                        }
                    }
                })?;
        }
        drop(done_tx);

        // Dispatch chunks round-robin in arrival order.
        let mut total = 0u64;
        let mut chunks = 0usize;
        let mut buf: Vec<T> = Vec::with_capacity(chunk_records.min(1 << 20));
        let mut input_err = None;
        for item in input {
            match item {
                Ok(rec) => {
                    buf.push(rec);
                    total += 1;
                    if buf.len() >= chunk_records {
                        let full = std::mem::replace(
                            &mut buf,
                            Vec::with_capacity(chunk_records.min(1 << 20)),
                        );
                        // A closed inbox means that producer died; its error
                        // is waiting in the done channel.
                        if inboxes[chunks % threads].send((chunks, full)).is_err() {
                            chunks += 1;
                            break;
                        }
                        chunks += 1;
                    }
                }
                Err(e) => {
                    input_err = Some(e);
                    break;
                }
            }
        }
        if input_err.is_none() && !buf.is_empty() {
            let tail_chunk = std::mem::take(&mut buf);
            if inboxes[chunks % threads].send((chunks, tail_chunk)).is_ok() {
                chunks += 1;
            }
        }
        drop(inboxes);

        // Collect spilled runs back into chunk order.
        let mut files: Vec<Option<PathBuf>> = (0..chunks).map(|_| None).collect();
        let mut first_err: Option<(usize, GraphError)> = None;
        for (idx, outcome) in done_rx.iter() {
            match outcome {
                Ok(path) => {
                    if let Some(slot) = files.get_mut(idx) {
                        *slot = Some(path);
                    }
                }
                Err(e) => {
                    let earlier = match &first_err {
                        None => true,
                        Some((at, _)) => idx < *at,
                    };
                    if earlier {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
        if let Some(e) = input_err {
            return Err(e);
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let mut ordered = Vec::with_capacity(chunks);
        for (idx, slot) in files.into_iter().enumerate() {
            match slot {
                Some(p) => ordered.push(p),
                None => {
                    return Err(GraphError::Corrupt(format!(
                        "ingest producer lost run for chunk {idx}"
                    )))
                }
            }
        }
        Ok(RunPlan { files: ordered, tail: Vec::new(), total })
    })
}
