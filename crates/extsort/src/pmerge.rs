//! Key-space-partitioned parallel k-way merge.
//!
//! The serial merge drains every run through one loser tree on a single
//! thread, so merge compares stop scaling the moment run formation goes
//! wide. This module splits the *key space* instead of the runs: splitter
//! keys are probed deterministically from the run files, every run is cut
//! at the first record `>= splitter` (a lower bound, so a group of equal
//! keys is never divided across workers), and each worker merges one
//! disjoint key range into a pre-computed region of the output file.
//!
//! Output bytes are identical to the serial merge for any worker count:
//!
//! * ranges partition the key space, and the lower-bound cut confines every
//!   group of equal keys to exactly one range, so concatenating the ranges
//!   in splitter order is the global key order;
//! * within a range each worker runs the same [`SortedStream`] loser tree
//!   over the same runs in the same relative order, so ties resolve by the
//!   same `(key, source index)` rule the serial merge uses.
//!
//! The *plan* (splitters, cuts, output regions) does vary with the worker
//! count, but every plan reproduces the same byte sequence, which is the
//! contract the ingest pipeline's byte-identity tests pin down. Callers gate
//! this path on an inert [`FaultSurface`](graphz_io::FaultSurface): chaos
//! runs must keep the serial merge so the gated op sequence stays
//! deterministic.

use std::collections::BTreeSet;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_io::{FaultSurface, IoStats, RecordReader, RecordWriter, TrackedFile};
use graphz_types::{cast, FixedCodec, GraphError, IoCtx, Result};

use crate::stream::{RunSource, SortedStream};

/// Records below which the parallel merge is declined: the probe seeks and
/// per-worker file handles cost more than single-threaded compares save.
pub const PARALLEL_MERGE_MIN_RECORDS: u64 = 1 << 14;

/// Read/write buffer for each worker's run segments and output region.
const SEGMENT_BUF_BYTES: usize = 64 * 1024;

/// Decode the record at index `idx` of an open run file.
fn probe<T: FixedCodec>(file: &mut TrackedFile, idx: u64) -> Result<T> {
    let size = cast::len_u64(T::SIZE);
    let at = cast::mul_u64(idx, size, "merge probe position")?;
    file.seek(SeekFrom::Start(at))?;
    let mut buf = vec![0u8; T::SIZE];
    file.read_exact(&mut buf)?;
    Ok(T::read_from(&buf))
}

/// Index of the first record in the run whose key is `>= splitter`
/// (binary search over the seekable fixed-size records).
fn lower_bound<T, K, F>(file: &mut TrackedFile, records: u64, splitter: &K, key: &F) -> Result<u64>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    let (mut lo, mut hi) = (0u64, records);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key(&probe::<T>(file, mid)?) < *splitter {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Merge already-sorted `runs` into `output` with `workers` threads over
/// disjoint key ranges. Returns `Ok(false)` — having written nothing — when
/// the merge is too small to be worth parallelising; the caller then takes
/// the serial path.
pub(crate) fn merge_runs_parallel<T, K, F>(
    key: &F,
    stats: &Arc<IoStats>,
    surface: &FaultSurface,
    workers: usize,
    runs: &[PathBuf],
    output: &Path,
) -> Result<bool>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let size = cast::len_u64(T::SIZE);
    let workers = workers.max(2);

    let mut files = Vec::with_capacity(runs.len());
    let mut lens = Vec::with_capacity(runs.len());
    let mut total = 0u64;
    for path in runs {
        let file = TrackedFile::open(path, Arc::clone(stats)).ctx("open", path)?;
        let bytes = file.len()?;
        if bytes % size != 0 {
            return Err(GraphError::Corrupt(format!(
                "run {} is not a whole number of {}-byte records",
                path.display(),
                T::SIZE
            )));
        }
        let records = bytes / size;
        total = cast::add_u64(total, records, "merge record total")?;
        lens.push(records);
        files.push(file);
    }
    if total < PARALLEL_MERGE_MIN_RECORDS {
        return Ok(false);
    }

    // Probe candidate splitter keys at even fractions of every run, then
    // keep the candidates at even fractions of the sorted pool. Sampling
    // all runs (not just the largest) keeps the cuts balanced when the key
    // distribution is skewed across runs.
    let mut candidates: Vec<K> = Vec::with_capacity(runs.len() * (workers - 1));
    for (file, &n) in files.iter_mut().zip(&lens) {
        if n == 0 {
            continue;
        }
        for w in 1..workers {
            let idx = cast::mul_u64(n, cast::len_u64(w), "splitter probe")? / cast::len_u64(workers);
            candidates.push(key(&probe::<T>(file, idx.min(n - 1))?));
        }
    }
    candidates.sort();
    let chosen: BTreeSet<usize> = (1..workers).map(|w| candidates.len() * w / workers).collect();
    let splitters: Vec<K> = candidates
        .into_iter()
        .enumerate()
        .filter_map(|(i, k)| chosen.contains(&i).then_some(k))
        .collect();

    // cuts[r][i] = first record of run i belonging to range r; the final
    // row of run lengths closes the last range. Splitters are sorted, so
    // each row is element-wise >= the previous one.
    let mut cuts: Vec<Vec<u64>> = Vec::with_capacity(splitters.len() + 2);
    cuts.push(vec![0; files.len()]);
    for s in &splitters {
        let mut row = Vec::with_capacity(files.len());
        for (file, &n) in files.iter_mut().zip(&lens) {
            row.push(lower_bound::<T, K, F>(file, n, s, key)?);
        }
        cuts.push(row);
    }
    cuts.push(lens.clone());
    drop(files);

    // Record rank (= output position) where each range starts.
    let ranges = cuts.len() - 1;
    let mut regions = Vec::with_capacity(ranges);
    let mut rank = 0u64;
    for r in 0..ranges {
        let mut n = 0u64;
        for (&at, &next) in cuts[r].iter().zip(cuts[r + 1].iter()) {
            let seg = cast::sub_u64(next, at, "merge segment length")?;
            n = cast::add_u64(n, seg, "merge range length")?;
        }
        regions.push((rank, n));
        rank = cast::add_u64(rank, n, "merge output rank")?;
    }
    debug_assert_eq!(rank, total, "ranges must partition the merge input");

    // Callers take this path only with an inert surface (chaos runs stay
    // serial), so the gates are pass-throughs today — but routing keeps the
    // structural invariant that every output-file operation is gated, and
    // makes any future active-surface use chaos-covered by construction.
    surface.op("pmerge:create-output")?;
    let out = TrackedFile::create(output, Arc::clone(stats)).ctx("create", output)?;
    out.set_len(cast::mul_u64(total, size, "merged output bytes")?)?;
    drop(out);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges);
        for (r, &(start, n)) in regions.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = (&cuts[r], &cuts[r + 1]);
            let stats = Arc::clone(stats);
            let handle = std::thread::Builder::new()
                .name(format!("graphz-merge-{r}"))
                .spawn_scoped(scope, move || {
                    merge_range::<T, K, F>(key, stats, surface, runs, lo, hi, n, start, output)
                })?;
            handles.push(handle);
        }
        for h in handles {
            match h.join() {
                Ok(res) => res?,
                Err(_) => {
                    return Err(GraphError::Corrupt("parallel merge worker panicked".into()))
                }
            }
        }
        Ok(())
    })?;
    Ok(true)
}

/// One worker: loser-tree merge of the `[lo, hi)` segment of every run into
/// the output region starting at record rank `start`.
#[allow(clippy::too_many_arguments)]
fn merge_range<T, K, F>(
    key: &F,
    stats: Arc<IoStats>,
    surface: &FaultSurface,
    runs: &[PathBuf],
    lo: &[u64],
    hi: &[u64],
    records: u64,
    start: u64,
    output: &Path,
) -> Result<()>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    let size = cast::len_u64(T::SIZE);
    let mut sources: Vec<RunSource<T>> = Vec::with_capacity(runs.len());
    // Skipping empty segments keeps only the *relative* source order, which
    // is all the `(key, source index)` tie-break observes.
    for (i, path) in runs.iter().enumerate() {
        let seg = cast::sub_u64(hi[i], lo[i], "merge segment length")?;
        if seg == 0 {
            continue;
        }
        let mut file = TrackedFile::open(path, Arc::clone(&stats)).ctx("open", path)?;
        file.seek(SeekFrom::Start(cast::mul_u64(lo[i], size, "segment start")?))?;
        let limited = BufReader::with_capacity(SEGMENT_BUF_BYTES, file)
            .take(cast::mul_u64(seg, size, "segment bytes")?);
        let boxed: Box<dyn Read + Send> = Box::new(limited);
        sources.push(RunSource::File(RecordReader::from_reader(boxed)));
    }
    let mut merged = SortedStream::new(sources, key, records)?;

    surface.op("pmerge:open-output-region")?;
    let mut out = TrackedFile::open_rw(output, stats).ctx("open-rw", output)?;
    out.seek(SeekFrom::Start(cast::mul_u64(start, size, "output region start")?))?;
    let mut w = RecordWriter::<T, _>::from_writer(
        surface.wrap(std::io::BufWriter::with_capacity(SEGMENT_BUF_BYTES, out)),
    );
    let mut drained = 0u64;
    while let Some(rec) = merged.next_record()? {
        w.push(&rec)?;
        drained += 1;
    }
    w.finish()?;
    if drained != records {
        return Err(GraphError::Corrupt(format!(
            "parallel merge range produced {drained} of {records} records"
        )));
    }
    Ok(())
}
