//! Loser-tree (tournament) selection for k-way merges.
//!
//! A loser tree replays exactly `ceil(log2 k)` comparisons per emitted
//! record — the path from the refilled leaf to the root — where a binary
//! heap pays up to `2·log2 k` (sift-down visits both children per level).
//! For the DOS conversion, whose seven passes are all k-way merges, that
//! halves the comparison bill of the merge phase.
//!
//! The tree stores only source *indices*; the caller owns the per-source
//! head records and supplies a `beats(a, b)` relation. The relation must be
//! a total order over live sources (the merge layer uses `(key, source
//! index)`, so ties are impossible), and exhausted sources must lose to
//! everything.

/// Tournament tree over `len` sources, tracking the loser of each internal
/// match and the overall winner.
#[derive(Debug)]
pub(crate) struct LoserTree {
    /// Internal nodes (index 1..len); `node[0]` is unused. `UNSET` entries
    /// are byes that lose every match.
    node: Vec<usize>,
    len: usize,
    winner: usize,
}

/// Sentinel for "no contestant here yet"; loses to every real source.
const UNSET: usize = usize::MAX;

impl LoserTree {
    /// Build the tree by playing the full bracket bottom-up: leaf `s` sits
    /// at conceptual array position `len + s`, internal node `i` keeps the
    /// loser of its subtree match and forwards the winner. The structure is
    /// a pure function of `len` and the `beats` relation.
    pub(crate) fn new(len: usize, beats: impl Fn(usize, usize) -> bool) -> Self {
        let mut t = LoserTree { node: vec![UNSET; len.max(1)], len, winner: UNSET };
        match len {
            0 => {}
            1 => t.winner = 0,
            _ => {
                let mut forwarded = vec![UNSET; 2 * len];
                for s in 0..len {
                    forwarded[len + s] = s;
                }
                for i in (1..len).rev() {
                    let a = forwarded[2 * i];
                    let b = forwarded[2 * i + 1];
                    let a_wins = b == UNSET || (a != UNSET && beats(a, b));
                    let (win, lose) = if a_wins { (a, b) } else { (b, a) };
                    forwarded[i] = win;
                    t.node[i] = lose;
                }
                t.winner = forwarded[1];
            }
        }
        t
    }

    /// The source currently winning the tournament, or `None` for an empty
    /// tree.
    pub(crate) fn winner(&self) -> Option<usize> {
        if self.winner == UNSET {
            None
        } else {
            Some(self.winner)
        }
    }

    /// Re-run the matches on the path from leaf `source` to the root, after
    /// the caller replaced (or exhausted) that source's head record.
    pub(crate) fn replay(&mut self, source: usize, beats: &impl Fn(usize, usize) -> bool) {
        debug_assert!(source < self.len);
        let mut contender = source;
        let mut at = (source + self.len) / 2;
        while at > 0 {
            let resident = self.node[at];
            // The node keeps the loser; the winner advances toward the root.
            let resident_wins =
                resident != UNSET && (contender == UNSET || beats(resident, contender));
            if resident_wins {
                self.node[at] = contender;
                contender = resident;
            }
            at /= 2;
        }
        self.winner = contender;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain a tree over an explicit list of per-source queues, using
    /// (value, source index) ordering like the merge layer does.
    fn drain(mut queues: Vec<Vec<u64>>) -> Vec<u64> {
        for q in queues.iter_mut() {
            q.reverse(); // pop() from the back == front of the queue
        }
        let mut heads: Vec<Option<u64>> = queues.iter_mut().map(|q| q.pop()).collect();
        let beats = |heads: &Vec<Option<u64>>, a: usize, b: usize| -> bool {
            match (&heads[a], &heads[b]) {
                (Some(x), Some(y)) => (x, a) < (y, b),
                (Some(_), None) => true,
                (None, _) => false,
            }
        };
        let mut tree = {
            let h = &heads;
            LoserTree::new(queues.len(), |a, b| beats(h, a, b))
        };
        let mut out = Vec::new();
        while let Some(w) = tree.winner() {
            let Some(v) = heads[w] else { break };
            out.push(v);
            heads[w] = queues[w].pop();
            let h = &heads;
            tree.replay(w, &|a, b| beats(h, a, b));
        }
        out
    }

    #[test]
    fn merges_sorted_queues() {
        let out = drain(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn handles_empty_and_uneven_queues() {
        let out = drain(vec![vec![], vec![5], vec![1, 2, 3, 4], vec![]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(drain(vec![]).is_empty());
        assert!(drain(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn single_source_passes_through() {
        assert_eq!(drain(vec![vec![2, 2, 3]]), vec![2, 2, 3]);
    }

    #[test]
    fn duplicate_values_break_ties_by_source_index() {
        // Equal values must come out in source-index order: that is the
        // determinism contract the merge layer relies on.
        let out = drain(vec![vec![7, 7], vec![7], vec![7, 7, 7]]);
        assert_eq!(out, vec![7; 6]);
    }

    #[test]
    fn matches_reference_sort_on_random_runs() {
        // Deterministic pseudo-random runs without rand: a small LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for sources in [1usize, 2, 3, 7, 16, 33] {
            let mut queues: Vec<Vec<u64>> = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..sources {
                let n = (next() % 50) as usize;
                let mut q: Vec<u64> = (0..n).map(|_| next() % 100).collect();
                q.sort_unstable();
                expected.extend_from_slice(&q);
                queues.push(q);
            }
            expected.sort_unstable();
            assert_eq!(drain(queues), expected, "sources={sources}");
        }
    }
}
