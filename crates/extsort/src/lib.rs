//! External k-way merge sort over fixed-size records.
//!
//! The DOS conversion pipeline (paper §III-C) is built entirely from external
//! sorts: "we use external k-way merge sort to sort it using deg as 1st key
//! and src as 2nd key", then again by `dest`, then by `src`. The GraphChi
//! baseline's shard construction and X-Stream's partition bucketing reuse the
//! same substrate.
//!
//! The implementation is the classic two-phase algorithm:
//!
//! 1. **Run formation** — read records until the memory budget is full, sort
//!    them in memory, and spill each sorted run to a scratch file.
//! 2. **K-way merge** — stream every run through a min-heap, emitting records
//!    in globally sorted order. If the number of runs exceeds the configured
//!    fan-in, runs are merged in multiple passes.
//!
//! Sorting is stable across equal keys only within a run; engine code that
//! needs total determinism (all of ours) uses keys that are total orders.

#![forbid(unsafe_code)]

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphz_io::{IoStats, RecordReader, RecordWriter, ScratchDir};
use graphz_types::{cast, FixedCodec, MemoryBudget, Result};

/// Maximum number of runs merged at once. 64 open files keeps well under any
/// fd limit while making multi-pass merges rare for our graph sizes.
pub const DEFAULT_FAN_IN: usize = 64;

/// Configuration for an external sort.
pub struct ExternalSorter<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    key: F,
    budget: MemoryBudget,
    fan_in: usize,
    stats: Arc<IoStats>,
    _marker: std::marker::PhantomData<T>,
}

impl<T, K, F> ExternalSorter<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    /// Create a sorter ordering records by `key(record)` ascending.
    pub fn new(key: F, budget: MemoryBudget, stats: Arc<IoStats>) -> Self {
        ExternalSorter { key, budget, fan_in: DEFAULT_FAN_IN, stats, _marker: Default::default() }
    }

    /// Override the merge fan-in (mostly for tests exercising multi-pass
    /// merges).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        self.fan_in = fan_in;
        self
    }

    /// Sort the records in `input` into `output` (both files of `T` records).
    ///
    /// Returns the number of records sorted. `input` and `output` may be the
    /// same path; the final merge writes through a scratch file in that case.
    pub fn sort_file(&self, input: &Path, output: &Path, scratch: &ScratchDir) -> Result<u64> {
        let reader = RecordReader::<T>::open(input, Arc::clone(&self.stats))?;
        self.sort_iter(reader.map(|r| r.unwrap_or_else(|e| panic!("input read failed: {e}"))), output, scratch)
    }

    /// Sort records from an iterator into `output`.
    pub fn sort_iter<I: IntoIterator<Item = T>>(
        &self,
        input: I,
        output: &Path,
        scratch: &ScratchDir,
    ) -> Result<u64> {
        // Clamping (not erroring) is right here: a budget larger than the
        // address space just means "one giant run"; the Vec below still
        // grows incrementally from a small initial capacity.
        let run_capacity = cast::clamp_usize(self.budget.records(T::SIZE));
        let mut runs: Vec<PathBuf> = Vec::new();
        let mut buf: Vec<T> = Vec::with_capacity(run_capacity.min(1 << 20));
        let mut total: u64 = 0;

        for record in input {
            buf.push(record);
            total += 1;
            if buf.len() >= run_capacity {
                runs.push(self.spill_run(&mut buf, scratch, runs.len())?);
            }
        }
        if !buf.is_empty() {
            runs.push(self.spill_run(&mut buf, scratch, runs.len())?);
        }

        match runs.len() {
            0 => {
                // Produce an empty output file.
                RecordWriter::<T>::create(output, Arc::clone(&self.stats))?.finish()?;
            }
            1 => {
                std::fs::rename(&runs[0], output)?;
            }
            _ => {
                self.merge_runs(runs, output, scratch)?;
            }
        }
        Ok(total)
    }

    fn spill_run(&self, buf: &mut Vec<T>, scratch: &ScratchDir, idx: usize) -> Result<PathBuf> {
        buf.sort_by_key(|r| (self.key)(r));
        let path = scratch.file(&format!("run-{idx:06}.bin"));
        let mut w = RecordWriter::<T>::create(&path, Arc::clone(&self.stats))?;
        w.push_all(buf.iter())?;
        w.finish()?;
        buf.clear();
        Ok(path)
    }

    /// Merge `runs` (possibly in multiple passes) into `output`.
    fn merge_runs(&self, mut runs: Vec<PathBuf>, output: &Path, scratch: &ScratchDir) -> Result<()> {
        let mut pass = 0;
        while runs.len() > self.fan_in {
            let mut next: Vec<PathBuf> = Vec::new();
            for (group_idx, group) in runs.chunks(self.fan_in).enumerate() {
                let merged = scratch.file(&format!("merge-{pass}-{group_idx:06}.bin"));
                self.merge_group(group, &merged)?;
                for r in group {
                    let _ = std::fs::remove_file(r);
                }
                next.push(merged);
            }
            runs = next;
            pass += 1;
        }
        // Final merge. If the output overlaps an input run, go via scratch.
        let overlaps = runs.iter().any(|r| r == output);
        if overlaps {
            let tmp = scratch.file("merge-final.bin");
            self.merge_group(&runs, &tmp)?;
            std::fs::rename(tmp, output)?;
        } else {
            self.merge_group(&runs, output)?;
        }
        for r in &runs {
            let _ = std::fs::remove_file(r);
        }
        Ok(())
    }

    fn merge_group(&self, runs: &[PathBuf], output: &Path) -> Result<()> {
        struct HeapEntry<K> {
            key: K,
            run: usize,
            seq: u64,
        }
        impl<K: Ord> PartialEq for HeapEntry<K> {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == CmpOrdering::Equal
            }
        }
        impl<K: Ord> Eq for HeapEntry<K> {}
        impl<K: Ord> PartialOrd for HeapEntry<K> {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }
        impl<K: Ord> Ord for HeapEntry<K> {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                // BinaryHeap is a max-heap; reverse for a min-heap. Ties break
                // by run index then sequence for a deterministic merge order.
                other
                    .key
                    .cmp(&self.key)
                    .then_with(|| other.run.cmp(&self.run))
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }

        let mut readers: Vec<RecordReader<T>> = runs
            .iter()
            .map(|r| RecordReader::<T>::open(r, Arc::clone(&self.stats)))
            .collect::<Result<_>>()?;
        let mut pending: Vec<Option<T>> = Vec::with_capacity(readers.len());
        let mut heap: BinaryHeap<HeapEntry<K>> = BinaryHeap::with_capacity(readers.len());
        let mut seq = 0u64;

        for (i, r) in readers.iter_mut().enumerate() {
            let rec = r.next_record()?;
            if let Some(rec) = &rec {
                heap.push(HeapEntry { key: (self.key)(rec), run: i, seq });
                seq += 1;
            }
            pending.push(rec);
        }

        let mut w = RecordWriter::<T>::create(output, Arc::clone(&self.stats))?;
        while let Some(top) = heap.pop() {
            let run = top.run;
            let rec = pending[run].take().expect("heap entry without pending record");
            w.push(&rec)?;
            if let Some(next) = readers[run].next_record()? {
                heap.push(HeapEntry { key: (self.key)(&next), run, seq });
                seq += 1;
                pending[run] = Some(next);
            }
        }
        w.finish()?;
        Ok(())
    }
}

/// One-call helper: sort the records of `input` into `output` by `key`.
pub fn sort_file_by<T, K, F>(
    input: &Path,
    output: &Path,
    key: F,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<u64>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    let scratch = ScratchDir::new("extsort")?;
    ExternalSorter::new(key, budget, stats).sort_file(input, output, &scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::record::{read_records, write_records};
    use graphz_types::Edge;
    use rand::prelude::*;

    fn sort_roundtrip(values: Vec<u64>, budget: MemoryBudget, fan_in: usize) -> Vec<u64> {
        let dir = ScratchDir::new("xs-test").unwrap();
        let stats = IoStats::new();
        let input = dir.file("in.bin");
        let output = dir.file("out.bin");
        write_records(&input, Arc::clone(&stats), &values).unwrap();
        let sorter =
            ExternalSorter::new(|v: &u64| *v, budget, Arc::clone(&stats)).with_fan_in(fan_in);
        let scratch = ScratchDir::new("xs-scratch").unwrap();
        let n = sorter.sort_file(&input, &output, &scratch).unwrap();
        assert_eq!(n, values.len() as u64);
        read_records(&output, stats).unwrap()
    }

    #[test]
    fn sorts_small_in_single_run() {
        let out = sort_roundtrip(vec![5, 3, 9, 1, 1, 7], MemoryBudget::from_mib(1), 8);
        assert_eq!(out, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn sorts_with_many_runs() {
        let mut rng = StdRng::seed_from_u64(42);
        let values: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..1_000)).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        // Budget of 512 bytes => 64 records per run => ~157 runs.
        let out = sort_roundtrip(values, MemoryBudget(512), 8);
        assert_eq!(out, expected);
    }

    #[test]
    fn multi_pass_merge_with_tiny_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..2_000).map(|_| rng.random()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        // 16 records per run, fan-in 2 => deep multi-pass merge tree.
        let out = sort_roundtrip(values, MemoryBudget(128), 2);
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let out = sort_roundtrip(vec![], MemoryBudget::from_kib(1), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn sorts_edges_by_composite_key() {
        // The DOS first pass sorts by (degree desc, src asc).
        let dir = ScratchDir::new("xs-edge").unwrap();
        let stats = IoStats::new();
        let input = dir.file("in.bin");
        let output = dir.file("out.bin");
        let recs: Vec<(u32, u32)> = vec![(2, 5), (3, 1), (2, 3), (3, 0), (1, 9)];
        write_records(&input, Arc::clone(&stats), &recs).unwrap();
        let scratch = ScratchDir::new("xs-edge-scratch").unwrap();
        ExternalSorter::new(
            |r: &(u32, u32)| (std::cmp::Reverse(r.0), r.1),
            MemoryBudget(16),
            Arc::clone(&stats),
        )
        .sort_file(&input, &output, &scratch)
        .unwrap();
        let out: Vec<(u32, u32)> = read_records(&output, stats).unwrap();
        assert_eq!(out, vec![(3, 0), (3, 1), (2, 3), (2, 5), (1, 9)]);
    }

    #[test]
    fn in_place_sort_same_input_output_path() {
        let dir = ScratchDir::new("xs-inplace").unwrap();
        let stats = IoStats::new();
        let path = dir.file("data.bin");
        write_records(&path, Arc::clone(&stats), &[3u64, 1, 2]).unwrap();
        sort_file_by::<u64, _, _>(&path, &path, |v| *v, MemoryBudget(8), Arc::clone(&stats))
            .unwrap();
        assert_eq!(read_records::<u64>(&path, stats).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn sort_iter_from_generator() {
        let dir = ScratchDir::new("xs-iter").unwrap();
        let stats = IoStats::new();
        let output = dir.file("out.bin");
        let scratch = ScratchDir::new("xs-iter-scratch").unwrap();
        let edges = (0..100u32).rev().map(|i| Edge::new(i, 0));
        ExternalSorter::new(|e: &Edge| e.src, MemoryBudget(64), Arc::clone(&stats))
            .sort_iter(edges, &output, &scratch)
            .unwrap();
        let out: Vec<Edge> = read_records(&output, stats).unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].src <= w[1].src));
    }
}
