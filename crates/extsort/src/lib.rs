//! External k-way merge sort over fixed-size records.
//!
//! The DOS conversion pipeline (paper §III-C) is built entirely from external
//! sorts: "we use external k-way merge sort to sort it using deg as 1st key
//! and src as 2nd key", then again by `dest`, then by `src`. The GraphChi
//! baseline's shard construction and X-Stream's partition bucketing reuse the
//! same substrate.
//!
//! The implementation is the classic two-phase algorithm:
//!
//! 1. **Run formation** — read records until the memory budget is full, sort
//!    them in memory, and spill each sorted run to a scratch file. With
//!    [`ExternalSorterBuilder::threads`] > 1, run formation is sharded: the
//!    input is cut into fixed-capacity chunks (a pure function of the split
//!    budget, never of thread timing) and dealt round-robin to N producer
//!    threads (see [`shard`](crate::shard) internals, DESIGN.md §6g).
//! 2. **K-way merge** — stream every run through a loser tree, emitting
//!    records in globally sorted order. If the number of runs exceeds the
//!    configured fan-in, runs are merged in multiple passes. Multi-threaded
//!    sorters read runs through double-buffered
//!    [`ReadAheadReader`](graphz_io::ReadAheadReader)s so merge compares
//!    overlap run-file IO.
//!
//! The merge can be consumed lazily via [`ExternalSorter::sort_stream`],
//! which is how the DOS converter chains one sort's output into the next
//! sort's run formation without an intermediate file.
//!
//! Sorting is stable across equal keys only within a run; engine code that
//! needs total determinism (all of ours) uses keys that are total orders.

#![forbid(unsafe_code)]

mod losertree;
mod pmerge;
mod shard;
mod stream;

use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphz_io::{FaultSurface, IoStats, ReadAheadReader, RecordReader, RecordWriter, ScratchDir};
use graphz_types::{cast, FixedCodec, GraphError, MemoryBudget, Result};

pub use pmerge::PARALLEL_MERGE_MIN_RECORDS;
pub use stream::SortedStream;
use stream::RunSource;

/// Maximum number of runs merged at once. 64 open files keeps well under any
/// fd limit while making multi-pass merges rare for our graph sizes.
pub const DEFAULT_FAN_IN: usize = 64;

/// Wall-time attribution for external sorts, shared across any number of
/// sorters via `Arc` (the ingest pipeline hands one sink to all five DOS
/// stage sorters). Two buckets of *eager* sorter work:
///
/// * `form` — run formation: reading input, in-memory sorts, spilling runs;
/// * `merge` — eager merge work: pre-merge passes and the file-output final
///   merge of `sort_file`/`sort_iter` (serial drain or parallel key-range
///   merge alike).
///
/// Lazy [`sort_stream`](ExternalSorter::sort_stream) drains happen on the
/// consumer's clock and are deliberately uncounted: per-record timing there
/// would distort the very numbers a benchmark wants. Consumers attribute
/// that remainder as merge+emit time (see `bench_ingest`).
#[derive(Debug, Default)]
pub struct SortTimings {
    form_ns: AtomicU64,
    merge_ns: AtomicU64,
}

impl SortTimings {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn add(counter: &AtomicU64, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        counter.fetch_add(ns, Ordering::Relaxed);
    }

    fn add_form(&self, d: Duration) {
        Self::add(&self.form_ns, d);
    }

    fn add_merge(&self, d: Duration) {
        Self::add(&self.merge_ns, d);
    }

    /// Total wall time spent forming runs.
    pub fn form(&self) -> Duration {
        Duration::from_nanos(self.form_ns.load(Ordering::Relaxed))
    }

    /// Total wall time spent in eager merge work.
    pub fn merge(&self) -> Duration {
        Duration::from_nanos(self.merge_ns.load(Ordering::Relaxed))
    }
}

/// Configuration for an external sort.
///
/// Construct via [`ExternalSorter::builder`] (the workspace builder
/// convention) or [`ExternalSorter::new`] for the single-threaded default.
pub struct ExternalSorter<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    key: F,
    budget: MemoryBudget,
    fan_in: usize,
    threads: usize,
    stats: Arc<IoStats>,
    surface: FaultSurface,
    timings: Option<Arc<SortTimings>>,
    _marker: std::marker::PhantomData<T>,
}

/// Builder for [`ExternalSorter`], following the workspace `XBuilder` +
/// chainable setters + fallible `build()` convention.
pub struct ExternalSorterBuilder<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    key: F,
    budget: Option<MemoryBudget>,
    fan_in: usize,
    threads: usize,
    stats: Option<Arc<IoStats>>,
    surface: FaultSurface,
    timings: Option<Arc<SortTimings>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T, K, F> ExternalSorterBuilder<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    /// In-memory bytes run formation may hold (required). With multiple
    /// threads the budget is split across the producers
    /// ([`MemoryBudget::split`]), so the configured total is respected
    /// regardless of thread count.
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shared IO statistics sink (required).
    pub fn stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Merge fan-in (≥ 2; default [`DEFAULT_FAN_IN`]).
    pub fn fan_in(mut self, fan_in: usize) -> Self {
        self.fan_in = fan_in;
        self
    }

    /// Producer threads for run formation (≥ 1; default 1). Values > 1 also
    /// enable double-buffered run readers in the merge phase. Output is
    /// byte-identical across thread counts whenever equal keys imply equal
    /// record bytes — true of every key in the ingest pipeline (DESIGN.md
    /// §6g).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Fault surface gating every run/merge/output write (default: inert).
    /// Chaos tests use this to inject faults and disk budgets into run
    /// spilling, pre-merge passes, and the final merged output.
    pub fn faults(mut self, surface: FaultSurface) -> Self {
        self.surface = surface;
        self
    }

    /// Optional wall-time attribution sink (see [`SortTimings`]); share one
    /// sink across sorters to accumulate a pipeline-wide total.
    pub fn timings(mut self, timings: Arc<SortTimings>) -> Self {
        self.timings = Some(timings);
        self
    }

    /// Validate the configuration and produce the sorter.
    pub fn build(self) -> Result<ExternalSorter<T, K, F>> {
        let budget = self
            .budget
            .ok_or_else(|| GraphError::InvalidConfig("external sort requires a budget".into()))?;
        let stats = self
            .stats
            .ok_or_else(|| GraphError::InvalidConfig("external sort requires a stats sink".into()))?;
        if self.fan_in < 2 {
            return Err(GraphError::InvalidConfig(format!(
                "merge fan-in must be at least 2, got {}",
                self.fan_in
            )));
        }
        if self.threads == 0 {
            return Err(GraphError::InvalidConfig("sort threads must be >= 1".into()));
        }
        Ok(ExternalSorter {
            key: self.key,
            budget,
            fan_in: self.fan_in,
            threads: self.threads,
            stats,
            surface: self.surface,
            timings: self.timings,
            _marker: Default::default(),
        })
    }
}

impl<T, K, F> ExternalSorter<T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    /// Start building a sorter that orders records by `key(record)`
    /// ascending.
    pub fn builder(key: F) -> ExternalSorterBuilder<T, K, F> {
        ExternalSorterBuilder {
            key,
            budget: None,
            fan_in: DEFAULT_FAN_IN,
            threads: 1,
            stats: None,
            surface: FaultSurface::none(),
            timings: None,
            _marker: Default::default(),
        }
    }

    /// Create a single-threaded sorter ordering records by `key(record)`
    /// ascending. Shorthand for
    /// `ExternalSorter::builder(key).budget(..).stats(..).build()`.
    pub fn new(key: F, budget: MemoryBudget, stats: Arc<IoStats>) -> Self {
        ExternalSorter {
            key,
            budget,
            fan_in: DEFAULT_FAN_IN,
            threads: 1,
            stats,
            surface: FaultSurface::none(),
            timings: None,
            _marker: Default::default(),
        }
    }

    /// Override the merge fan-in (mostly for tests exercising multi-pass
    /// merges).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        self.fan_in = fan_in;
        self
    }

    /// Records per in-memory run chunk. Serial sorters use the whole budget;
    /// sharded run formation splits it across the producers plus the chunks
    /// in flight between dispatcher and producers (`2·threads + 1`, the
    /// worst-case number of live chunks).
    fn chunk_records(&self) -> usize {
        // Clamping (not erroring) is right here: a budget larger than the
        // address space just means "one giant run"; run buffers still grow
        // incrementally from a small initial capacity.
        if self.threads > 1 {
            cast::clamp_usize(self.budget.split(2 * self.threads + 1).records(T::SIZE))
        } else {
            cast::clamp_usize(self.budget.records(T::SIZE))
        }
    }

    /// Sort the records in `input` into `output` (both files of `T` records).
    ///
    /// Returns the number of records sorted. `input` and `output` may be the
    /// same path: run formation fully drains the input before the output is
    /// created.
    pub fn sort_file(&self, input: &Path, output: &Path, scratch: &ScratchDir) -> Result<u64>
    where
        T: Send,
        F: Sync,
    {
        let reader = RecordReader::<T>::open(input, Arc::clone(&self.stats))?;
        self.sort_to_file(reader, output, scratch)
    }

    /// Sort records from an iterator into `output`.
    pub fn sort_iter<I: IntoIterator<Item = T>>(
        &self,
        input: I,
        output: &Path,
        scratch: &ScratchDir,
    ) -> Result<u64>
    where
        T: Send,
        F: Sync,
    {
        self.sort_to_file(input.into_iter().map(Ok), output, scratch)
    }

    /// Shared tail of [`sort_file`](Self::sort_file) and
    /// [`sort_iter`](Self::sort_iter): collapse the input to ≤ fan-in runs,
    /// then merge them into `output`. When the sorter is multi-threaded,
    /// everything is on disk (sharded run formation spills every chunk), the
    /// fault surface is inert, and the merge is large enough, the final
    /// merge takes the key-partitioned parallel path instead of the serial
    /// loser-tree drain — same bytes either way (see [`pmerge`]).
    fn sort_to_file<I>(&self, input: I, output: &Path, scratch: &ScratchDir) -> Result<u64>
    where
        I: IntoIterator<Item = Result<T>>,
        T: Send,
        F: Sync,
    {
        let plan = self.collapse_runs(input, scratch)?;
        let total = plan.total;
        let started = std::time::Instant::now();
        let parallel = self.threads > 1
            && plan.files.len() > 1
            && plan.tail.is_empty()
            && !self.surface.is_active()
            && pmerge::merge_runs_parallel::<T, K, F>(
                &self.key,
                &self.stats,
                &self.surface,
                self.threads,
                &plan.files,
                output,
            )?;
        if !parallel {
            let mut sorted = self.open_merge_stream(plan)?;
            self.write_all(&mut sorted, output)?;
        }
        if let Some(t) = &self.timings {
            t.add_merge(started.elapsed());
        }
        Ok(total)
    }

    /// Sort records from a fallible iterator and return the merged output as
    /// a lazy [`SortedStream`].
    ///
    /// Run formation happens eagerly (the input is fully consumed before
    /// this returns); only the final ≤ fan-in merge is lazy, so downstream
    /// stages drain the merge concurrently with their own work. Run files
    /// live in `scratch` until the scratch directory is dropped.
    pub fn sort_stream<'a, I>(
        &'a self,
        input: I,
        scratch: &ScratchDir,
    ) -> Result<SortedStream<'a, T, K, F>>
    where
        I: IntoIterator<Item = Result<T>>,
        T: Send,
        F: Sync,
    {
        let plan = self.collapse_runs(input, scratch)?;
        self.open_merge_stream(plan)
    }

    /// Run formation plus pre-merge passes: consume the input and leave at
    /// most a final-merge's worth (≤ fan-in) of sorted runs behind.
    fn collapse_runs<I>(&self, input: I, scratch: &ScratchDir) -> Result<shard::RunPlan<T>>
    where
        I: IntoIterator<Item = Result<T>>,
        T: Send,
        F: Sync,
    {
        let chunk_records = self.chunk_records();
        let started = std::time::Instant::now();
        let plan = if self.threads > 1 {
            shard::form_runs_parallel(
                &self.key,
                &self.stats,
                &self.surface,
                scratch,
                self.threads,
                chunk_records,
                input.into_iter(),
            )?
        } else {
            shard::form_runs_serial(
                &self.key,
                &self.stats,
                &self.surface,
                scratch,
                chunk_records,
                input.into_iter(),
            )?
        };
        if let Some(t) = &self.timings {
            t.add_form(started.elapsed());
        }
        let shard::RunPlan { mut files, tail, total } = plan;

        // Pre-merge passes until the remaining file runs (plus the tail run)
        // fit one final merge.
        let started = std::time::Instant::now();
        let max_file_sources = if tail.is_empty() { self.fan_in } else { self.fan_in - 1 };
        let mut pass = 0;
        while files.len() > max_file_sources.max(1) {
            let mut next = Vec::with_capacity(files.len().div_ceil(self.fan_in));
            for (group_idx, group) in files.chunks(self.fan_in).enumerate() {
                if group.len() == 1 {
                    next.push(group[0].clone());
                    continue;
                }
                let merged = scratch.file(&format!("merge-{pass}-{group_idx:06}.bin"));
                self.merge_files(group, &merged)?;
                for r in group {
                    let _ = std::fs::remove_file(r);
                }
                next.push(merged);
            }
            files = next;
            pass += 1;
        }
        if let Some(t) = &self.timings {
            t.add_merge(started.elapsed());
        }
        Ok(shard::RunPlan { files, tail, total })
    }

    /// Open the collapsed runs as a lazy final merge.
    fn open_merge_stream(&self, plan: shard::RunPlan<T>) -> Result<SortedStream<'_, T, K, F>> {
        let shard::RunPlan { files, tail, total } = plan;
        let mut sources = Vec::with_capacity(files.len() + usize::from(!tail.is_empty()));
        for f in &files {
            sources.push(RunSource::File(self.open_run(f)?));
        }
        if !tail.is_empty() {
            sources.push(RunSource::Memory(tail.into_iter()));
        }
        SortedStream::new(sources, &self.key, total)
    }

    /// Open a run file for merging; multi-threaded sorters wrap it in a
    /// double-buffered read-ahead so merge compares overlap run IO. The
    /// open is a gated op, so the read side of the merge is under fault
    /// coverage too.
    fn open_run(&self, path: &Path) -> Result<RecordReader<T, Box<dyn Read + Send>>> {
        self.surface.op("open-run")?;
        let inner = graphz_io::tracked::reader(path, Arc::clone(&self.stats))?;
        if self.threads > 1 {
            let ahead = ReadAheadReader::spawn(inner)?;
            Ok(RecordReader::from_reader(Box::new(ahead)))
        } else {
            Ok(RecordReader::from_reader(Box::new(inner)))
        }
    }

    /// Merge already-sorted run files into `output`. Multi-threaded sorters
    /// with an inert fault surface take the key-partitioned parallel path
    /// for large merges (byte-identical by construction, see [`pmerge`]);
    /// chaos runs stay serial so the gated op sequence is deterministic.
    fn merge_files(&self, runs: &[PathBuf], output: &Path) -> Result<()>
    where
        F: Sync,
    {
        if self.threads > 1
            && runs.len() > 1
            && !self.surface.is_active()
            && pmerge::merge_runs_parallel::<T, K, F>(
                &self.key,
                &self.stats,
                &self.surface,
                self.threads,
                runs,
                output,
            )?
        {
            return Ok(());
        }
        let mut sources = Vec::with_capacity(runs.len());
        for r in runs {
            sources.push(RunSource::File(self.open_run(r)?));
        }
        let mut merged = SortedStream::new(sources, &self.key, 0)?;
        self.write_all(&mut merged, output)
    }

    fn write_all(&self, sorted: &mut SortedStream<'_, T, K, F>, output: &Path) -> Result<()> {
        let mut w = RecordWriter::<T, _>::from_writer(
            self.surface.wrap(graphz_io::tracked::writer(output, Arc::clone(&self.stats))?),
        );
        while let Some(rec) = sorted.next_record()? {
            w.push(&rec)?;
        }
        w.finish()?;
        Ok(())
    }
}

/// One-call helper: sort the records of `input` into `output` by `key`.
#[deprecated(
    since = "0.2.0",
    note = "use ExternalSorter::builder(key).budget(..).stats(..).build()?.sort_file(..)"
)]
pub fn sort_file_by<T, K, F>(
    input: &Path,
    output: &Path,
    key: F,
    budget: MemoryBudget,
    stats: Arc<IoStats>,
) -> Result<u64>
where
    T: FixedCodec + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let scratch = ScratchDir::new("extsort")?;
    ExternalSorter::builder(key).budget(budget).stats(stats).build()?.sort_file(
        input,
        output,
        &scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphz_io::record::{read_records, write_records};
    use graphz_types::Edge;
    use rand::prelude::*;

    fn sort_roundtrip(values: Vec<u64>, budget: MemoryBudget, fan_in: usize) -> Vec<u64> {
        sort_roundtrip_threads(values, budget, fan_in, 1)
    }

    fn sort_roundtrip_threads(
        values: Vec<u64>,
        budget: MemoryBudget,
        fan_in: usize,
        threads: usize,
    ) -> Vec<u64> {
        let dir = ScratchDir::new("xs-test").unwrap();
        let stats = IoStats::new();
        let input = dir.file("in.bin");
        let output = dir.file("out.bin");
        write_records(&input, Arc::clone(&stats), &values).unwrap();
        let sorter = ExternalSorter::builder(|v: &u64| *v)
            .budget(budget)
            .stats(Arc::clone(&stats))
            .fan_in(fan_in)
            .threads(threads)
            .build()
            .unwrap();
        let scratch = ScratchDir::new("xs-scratch").unwrap();
        let n = sorter.sort_file(&input, &output, &scratch).unwrap();
        assert_eq!(n, values.len() as u64);
        read_records(&output, stats).unwrap()
    }

    #[test]
    fn sorts_small_in_single_run() {
        let out = sort_roundtrip(vec![5, 3, 9, 1, 1, 7], MemoryBudget::from_mib(1), 8);
        assert_eq!(out, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn sorts_with_many_runs() {
        let mut rng = StdRng::seed_from_u64(42);
        let values: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..1_000)).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        // Budget of 512 bytes => 64 records per run => ~157 runs.
        let out = sort_roundtrip(values, MemoryBudget(512), 8);
        assert_eq!(out, expected);
    }

    #[test]
    fn multi_pass_merge_with_tiny_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..2_000).map(|_| rng.random()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        // 16 records per run, fan-in 2 => deep multi-pass merge tree.
        let out = sort_roundtrip(values, MemoryBudget(128), 2);
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let out = sort_roundtrip(vec![], MemoryBudget::from_kib(1), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn sorts_edges_by_composite_key() {
        // The DOS first pass sorts by (degree desc, src asc).
        let dir = ScratchDir::new("xs-edge").unwrap();
        let stats = IoStats::new();
        let input = dir.file("in.bin");
        let output = dir.file("out.bin");
        let recs: Vec<(u32, u32)> = vec![(2, 5), (3, 1), (2, 3), (3, 0), (1, 9)];
        write_records(&input, Arc::clone(&stats), &recs).unwrap();
        let scratch = ScratchDir::new("xs-edge-scratch").unwrap();
        ExternalSorter::new(
            |r: &(u32, u32)| (std::cmp::Reverse(r.0), r.1),
            MemoryBudget(16),
            Arc::clone(&stats),
        )
        .sort_file(&input, &output, &scratch)
        .unwrap();
        let out: Vec<(u32, u32)> = read_records(&output, stats).unwrap();
        assert_eq!(out, vec![(3, 0), (3, 1), (2, 3), (2, 5), (1, 9)]);
    }

    #[test]
    fn in_place_sort_same_input_output_path() {
        let dir = ScratchDir::new("xs-inplace").unwrap();
        let stats = IoStats::new();
        let path = dir.file("data.bin");
        write_records(&path, Arc::clone(&stats), &[3u64, 1, 2]).unwrap();
        #[allow(deprecated)]
        sort_file_by::<u64, _, _>(&path, &path, |v| *v, MemoryBudget(8), Arc::clone(&stats))
            .unwrap();
        assert_eq!(read_records::<u64>(&path, stats).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn sort_iter_from_generator() {
        let dir = ScratchDir::new("xs-iter").unwrap();
        let stats = IoStats::new();
        let output = dir.file("out.bin");
        let scratch = ScratchDir::new("xs-iter-scratch").unwrap();
        let edges = (0..100u32).rev().map(|i| Edge::new(i, 0));
        ExternalSorter::new(|e: &Edge| e.src, MemoryBudget(64), Arc::clone(&stats))
            .sort_iter(edges, &output, &scratch)
            .unwrap();
        let out: Vec<Edge> = read_records(&output, stats).unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].src <= w[1].src));
    }

    #[test]
    fn builder_validates_configuration() {
        let stats = IoStats::new();
        assert!(ExternalSorter::<u64, _, _>::builder(|v: &u64| *v)
            .stats(Arc::clone(&stats))
            .build()
            .is_err());
        assert!(ExternalSorter::<u64, _, _>::builder(|v: &u64| *v)
            .budget(MemoryBudget::from_kib(1))
            .build()
            .is_err());
        assert!(ExternalSorter::<u64, _, _>::builder(|v: &u64| *v)
            .budget(MemoryBudget::from_kib(1))
            .stats(Arc::clone(&stats))
            .fan_in(1)
            .build()
            .is_err());
        assert!(ExternalSorter::<u64, _, _>::builder(|v: &u64| *v)
            .budget(MemoryBudget::from_kib(1))
            .stats(Arc::clone(&stats))
            .threads(0)
            .build()
            .is_err());
        assert!(ExternalSorter::<u64, _, _>::builder(|v: &u64| *v)
            .budget(MemoryBudget::from_kib(1))
            .stats(stats)
            .threads(4)
            .build()
            .is_ok());
    }

    #[test]
    fn parallel_sort_matches_serial_bytes() {
        let mut rng = StdRng::seed_from_u64(99);
        // Plenty of duplicate values so tie-handling across different run
        // boundaries is exercised.
        let values: Vec<u64> = (0..30_000).map(|_| rng.random_range(0..500)).collect();
        let serial = sort_roundtrip_threads(values.clone(), MemoryBudget(4096), 8, 1);
        for threads in [2, 3, 8] {
            let par = sort_roundtrip_threads(values.clone(), MemoryBudget(4096), 8, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_multi_pass_merge() {
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (0..5_000).map(|_| rng.random()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        let out = sort_roundtrip_threads(values, MemoryBudget(256), 2, 4);
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_merge_byte_identical_under_heavy_ties() {
        // Above PARALLEL_MERGE_MIN_RECORDS with only a handful of distinct
        // keys: every candidate splitter collides, ranges are wildly uneven,
        // and equal keys span every run — the lower-bound cut must keep each
        // tie group in one range and reproduce the serial tie-break exactly.
        let mut rng = StdRng::seed_from_u64(1234);
        let n = cast::clamp_usize(2 * PARALLEL_MERGE_MIN_RECORDS);
        let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..5)).collect();
        let serial = sort_roundtrip_threads(values.clone(), MemoryBudget(4096), 8, 1);
        for threads in [2, 4] {
            let par = sort_roundtrip_threads(values.clone(), MemoryBudget(4096), 8, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_merge_constant_key_collapses_to_one_range() {
        // All keys equal: every splitter is the same value, all but one
        // range is empty, and the single worker must still reproduce the
        // serial merge (which here is just run concatenation in spill order).
        let n = cast::clamp_usize(2 * PARALLEL_MERGE_MIN_RECORDS);
        let values: Vec<u64> = vec![7; n];
        let serial = sort_roundtrip_threads(values.clone(), MemoryBudget(4096), 8, 1);
        let par = sort_roundtrip_threads(values, MemoryBudget(4096), 8, 4);
        assert_eq!(par, serial);
    }

    #[test]
    fn sort_stream_yields_sorted_lazily() {
        let stats = IoStats::new();
        let scratch = ScratchDir::new("xs-stream").unwrap();
        let sorter =
            ExternalSorter::new(|v: &u64| *v, MemoryBudget(64), Arc::clone(&stats));
        let input = (0..1000u64).rev().map(Ok);
        let mut stream = sorter.sort_stream(input, &scratch).unwrap();
        assert_eq!(stream.total_records(), 1000);
        let mut prev = None;
        let mut count = 0u64;
        while let Some(v) = stream.next_record().unwrap() {
            if let Some(p) = prev {
                assert!(p <= v);
            }
            prev = Some(v);
            count += 1;
        }
        assert_eq!(count, 1000);
    }

    #[test]
    fn sort_stream_propagates_input_errors() {
        let stats = IoStats::new();
        let scratch = ScratchDir::new("xs-stream-err").unwrap();
        let sorter = ExternalSorter::new(|v: &u64| *v, MemoryBudget(64), Arc::clone(&stats));
        let input = (0..100u64)
            .map(Ok)
            .chain(std::iter::once(Err(GraphError::Corrupt("boom".into()))));
        let err = sorter.sort_stream(input, &scratch).err().unwrap();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");

        // Parallel path reports the same input error.
        let sorter = ExternalSorter::builder(|v: &u64| *v)
            .budget(MemoryBudget(64))
            .stats(stats)
            .threads(4)
            .build()
            .unwrap();
        let input = (0..100u64)
            .map(Ok)
            .chain(std::iter::once(Err(GraphError::Corrupt("boom".into()))));
        let err = sorter.sort_stream(input, &scratch).err().unwrap();
        assert!(matches!(err, GraphError::Corrupt(_)), "got {err:?}");
    }
}
