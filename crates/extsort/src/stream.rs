//! Lazy merged output of an external sort.
//!
//! [`SortedStream`] is the pull side of [`ExternalSorter::sort_stream`]
//! (crate root): run formation has already happened eagerly; the stream
//! owns the (≤ fan-in) remaining run sources and merges them record by
//! record through a [`LoserTree`](crate::losertree::LoserTree). Consumers
//! drain it directly into the next pipeline stage — the DOS converter feeds
//! one sort's output straight into the next sort's run formation without an
//! intermediate file, so the merge drains while downstream work proceeds.
//!
//! Merge order is `(key, source index)` ascending. Sources are numbered in
//! spill order with the in-memory tail run last, which reproduces exactly
//! the `(key, run, seq)` order of the historical heap-based merge: a run is
//! internally sorted, so at most one record per run is ever pending and the
//! `seq` component can never decide a comparison.

use std::io::Read;
use std::vec;

use graphz_io::RecordReader;
use graphz_types::{FixedCodec, Result};

/// One merge input: a spilled run file or the in-memory tail run.
pub(crate) enum RunSource<T: FixedCodec> {
    File(RecordReader<T, Box<dyn Read + Send>>),
    Memory(vec::IntoIter<T>),
}

impl<T: FixedCodec> RunSource<T> {
    fn next(&mut self) -> Result<Option<T>> {
        match self {
            RunSource::File(r) => r.next_record(),
            RunSource::Memory(it) => Ok(it.next()),
        }
    }
}

/// Iterator over the globally sorted records of a completed run formation.
///
/// Yields `Result<T>`: scratch-file corruption or IO failure surfaces at
/// the record that hits it, after which the stream is exhausted.
pub struct SortedStream<'s, T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    sources: Vec<RunSource<T>>,
    /// Head record (and its key) of each source; `None` = exhausted.
    heads: Vec<Option<(K, T)>>,
    tree: crate::losertree::LoserTree,
    key: &'s F,
    total: u64,
}

impl<'s, T, K, F> SortedStream<'s, T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    pub(crate) fn new(
        mut sources: Vec<RunSource<T>>,
        key: &'s F,
        total: u64,
    ) -> Result<Self> {
        let mut heads = Vec::with_capacity(sources.len());
        for s in sources.iter_mut() {
            heads.push(s.next()?.map(|r| (key(&r), r)));
        }
        let tree = crate::losertree::LoserTree::new(heads.len(), |a, b| beats(&heads, a, b));
        Ok(SortedStream { sources, heads, tree, key, total })
    }

    /// Total number of records this stream will yield (known up front from
    /// run formation).
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// The next record in global sort order, or `None` when drained.
    pub fn next_record(&mut self) -> Result<Option<T>> {
        let Some(w) = self.tree.winner() else { return Ok(None) };
        let Some((_, rec)) = self.heads[w].take() else { return Ok(None) };
        self.heads[w] = self.sources[w].next()?.map(|r| ((self.key)(&r), r));
        let heads = &self.heads;
        self.tree.replay(w, &|a, b| beats(heads, a, b));
        Ok(Some(rec))
    }
}

/// Strict "source `a` merges before source `b`" relation: `(key, index)`
/// ascending, exhausted sources last.
fn beats<K: Ord, T>(heads: &[Option<(K, T)>], a: usize, b: usize) -> bool {
    match (&heads[a], &heads[b]) {
        (Some((ka, _)), Some((kb, _))) => (ka, a) < (kb, b),
        (Some(_), None) => true,
        (None, _) => false,
    }
}

impl<T, K, F> Iterator for SortedStream<'_, T, K, F>
where
    T: FixedCodec,
    K: Ord,
    F: Fn(&T) -> K,
{
    type Item = Result<T>;

    fn next(&mut self) -> Option<Result<T>> {
        self.next_record().transpose()
    }
}
