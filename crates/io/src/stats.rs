//! Shared atomic IO counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic IO counters shared by every file an engine opens.
///
/// Engines clone the `Arc<IoStats>` into each [`TrackedFile`]; the harness
/// snapshots it before/after a run to charge exactly that run's traffic
/// (paper Fig. 9 counts reads and writes per algorithm per engine).
///
/// [`TrackedFile`]: crate::TrackedFile
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seeks: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_stalls: AtomicU64,
    prefetch_wasted: AtomicU64,
}

impl IoStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub fn record_read(&self, bytes: u64) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_write(&self, bytes: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A non-sequential access: the file position moved somewhere other than
    /// the end of the previous access. On a magnetic disk each of these is a
    /// head movement; the [`DeviceModel`](crate::DeviceModel) charges them.
    #[inline]
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// The partition loader found the prefetched buffer ready.
    #[inline]
    pub fn record_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The partition loader had to wait for (or bypass) the prefetcher.
    #[inline]
    pub fn record_prefetch_stall(&self) {
        self.prefetch_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// A prefetched buffer was discarded without being consumed (e.g. the
    /// run converged before the next partition was needed).
    #[inline]
    pub fn record_prefetch_wasted(&self) {
        self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
        }
    }

    /// Prefetch effectiveness counters, separate from [`IoSnapshot`] because
    /// hit/stall splits depend on thread timing: two runs that do identical
    /// IO may divide it differently between the prefetcher and the loader.
    /// Keeping them out of the deterministic snapshot lets ablation tests
    /// keep asserting `IoSnapshot` equality.
    pub fn prefetch_snapshot(&self) -> PrefetchSnapshot {
        PrefetchSnapshot {
            hits: self.prefetch_hits.load(Ordering::Relaxed),
            stalls: self.prefetch_stalls.load(Ordering::Relaxed),
            wasted: self.prefetch_wasted.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.prefetch_stalls.store(0, Ordering::Relaxed);
        self.prefetch_wasted.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`]; supports subtraction so harnesses can
/// charge intervals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    pub read_ops: u64,
    pub write_ops: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub seeks: u64,
}

impl IoSnapshot {
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }
}

/// A point-in-time copy of the prefetch counters (see
/// [`IoStats::prefetch_snapshot`] for why these live outside [`IoSnapshot`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchSnapshot {
    /// Partition loads satisfied by a ready prefetch buffer.
    pub hits: u64,
    /// Partition loads that waited on (or ran without) the prefetcher.
    pub stalls: u64,
    /// Prefetched buffers discarded without use.
    pub wasted: u64,
}

impl std::ops::Sub for PrefetchSnapshot {
    type Output = PrefetchSnapshot;

    fn sub(self, rhs: PrefetchSnapshot) -> PrefetchSnapshot {
        PrefetchSnapshot {
            hits: self.hits - rhs.hits,
            stalls: self.stalls - rhs.stalls,
            wasted: self.wasted - rhs.wasted,
        }
    }
}

impl std::ops::Add for PrefetchSnapshot {
    type Output = PrefetchSnapshot;

    fn add(self, rhs: PrefetchSnapshot) -> PrefetchSnapshot {
        PrefetchSnapshot {
            hits: self.hits + rhs.hits,
            stalls: self.stalls + rhs.stalls,
            wasted: self.wasted + rhs.wasted,
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops - rhs.read_ops,
            write_ops: self.write_ops - rhs.write_ops,
            bytes_read: self.bytes_read - rhs.bytes_read,
            bytes_written: self.bytes_written - rhs.bytes_written,
            seeks: self.seeks - rhs.seeks,
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops + rhs.read_ops,
            write_ops: self.write_ops + rhs.write_ops,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            seeks: self.seeks + rhs.seeks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(10);
        s.record_seek();
        let snap = s.snapshot();
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.total_bytes(), 160);
        assert_eq!(snap.total_ops(), 3);
    }

    #[test]
    fn snapshot_arithmetic() {
        let s = IoStats::new();
        s.record_read(100);
        let a = s.snapshot();
        s.record_read(100);
        s.record_write(7);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.read_ops, 1);
        assert_eq!(d.bytes_read, 100);
        assert_eq!(d.bytes_written, 7);
        let sum = a + d;
        assert_eq!(sum, b);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write(10);
        s.record_prefetch_hit();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
        assert_eq!(s.prefetch_snapshot(), PrefetchSnapshot::default());
    }

    #[test]
    fn prefetch_counters_are_separate_from_io_snapshot() {
        let s = IoStats::new();
        let io_before = s.snapshot();
        s.record_prefetch_hit();
        s.record_prefetch_hit();
        s.record_prefetch_stall();
        s.record_prefetch_wasted();
        assert_eq!(s.snapshot(), io_before, "prefetch counters must not leak into IoSnapshot");
        let p = s.prefetch_snapshot();
        assert_eq!(p.hits, 2);
        assert_eq!(p.stalls, 1);
        assert_eq!(p.wasted, 1);
        let sum = p + p;
        assert_eq!(sum.hits, 4);
        assert_eq!(sum - p, p);
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        let s = IoStats::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().read_ops, 4000);
    }
}
