//! Hand-rolled CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant).
//!
//! The build environment is offline, so rather than pull in a checksum
//! crate this implements the standard reflected table-driven algorithm:
//! 256-entry table built at first use, bytes folded in LSB-first, initial
//! value and final XOR of `0xFFFF_FFFF`. Output is bit-for-bit what
//! `zlib.crc32` / `crc32fast` would produce, so checksummed files remain
//! verifiable by external tooling.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320; // 0x04C11DB7 reflected

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC32 state; feed bytes with [`update`](Self::update), read the
/// digest with [`finish`](Self::finish).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in bytes {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The digest of everything fed so far. Does not consume the state:
    /// feeding more bytes afterwards continues the same stream.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Length and CRC32 of everything remaining in `r`, streamed in 64 KiB
/// chunks — for checksumming whole files without loading them.
pub fn crc32_stream<R: std::io::Read>(mut r: R) -> std::io::Result<(u64, u32)> {
    let mut crc = Crc32::new();
    let mut len = 0u64;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        crc.update(&buf[..n]);
        len += n as u64;
    }
    Ok((len, crc.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u32..10_000).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), whole);
        // finish() is non-destructive.
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
