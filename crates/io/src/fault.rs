//! Fault injection for testing engine error paths.
//!
//! Out-of-core engines must fail cleanly (not corrupt state or hang) when the
//! backing store misbehaves. [`FaultInjector`] wraps any reader/writer and
//! injects an IO error after a configurable number of bytes, letting
//! integration tests drive every spill/reload path into its error branch.

use std::io::{self, Read, Write};

/// Wraps a reader/writer and fails with [`io::ErrorKind::Other`] once
/// `fail_after_bytes` bytes have passed through.
pub struct FaultInjector<T> {
    inner: T,
    remaining: u64,
    tripped: bool,
}

impl<T> FaultInjector<T> {
    pub fn new(inner: T, fail_after_bytes: u64) -> Self {
        FaultInjector { inner, remaining: fail_after_bytes, tripped: false }
    }

    /// Whether the fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    pub fn into_inner(self) -> T {
        self.inner
    }

    fn budget(&mut self, want: usize) -> io::Result<usize> {
        if self.remaining == 0 {
            self.tripped = true;
            return Err(io::Error::other("injected fault"));
        }
        Ok(want.min(self.remaining as usize))
    }

    fn consume(&mut self, used: usize) {
        self.remaining -= used as u64;
    }
}

impl<T: Read> Read for FaultInjector<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allowed = self.budget(buf.len())?;
        let n = self.inner.read(&mut buf[..allowed])?;
        self.consume(n);
        Ok(n)
    }
}

impl<T: Write> Write for FaultInjector<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allowed = self.budget(buf.len())?;
        let n = self.inner.write(&buf[..allowed])?;
        self.consume(n);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_fails_after_budget() {
        let data = [1u8; 100];
        let mut f = FaultInjector::new(&data[..], 10);
        let mut buf = [0u8; 8];
        assert_eq!(f.read(&mut buf).unwrap(), 8);
        assert_eq!(f.read(&mut buf).unwrap(), 2); // clipped to remaining budget
        let err = f.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(f.tripped());
    }

    #[test]
    fn write_fails_after_budget() {
        let mut out = Vec::new();
        {
            let mut f = FaultInjector::new(&mut out, 5);
            assert_eq!(f.write(&[9u8; 3]).unwrap(), 3);
            assert_eq!(f.write(&[9u8; 3]).unwrap(), 2);
            assert!(f.write(&[9u8; 1]).is_err());
        }
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn zero_len_ops_never_trip() {
        let mut f = FaultInjector::new(std::io::empty(), 0);
        let mut buf = [];
        assert_eq!(f.read(&mut buf).unwrap(), 0);
        assert!(!f.tripped());
    }
}
